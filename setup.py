"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that editable installs work in offline environments whose setuptools lacks
the ``wheel`` package (``pip install -e . --no-build-isolation`` falls back to
the legacy ``setup.py develop`` path through this shim).
"""

from setuptools import setup

setup()
