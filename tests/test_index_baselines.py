"""Tests for the baseline access methods: B+-tree, hash index, R-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import IndexError_
from repro.index.btree import BPlusTree
from repro.index.hash_index import HashIndex
from repro.index.rtree import Rect, RTree


class TestBPlusTree:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        for value in [5, 3, 8, 1, 9, 7, 2, 6, 4, 0]:
            tree.insert(value, f"v{value}")
        assert tree.search(7) == ["v7"]
        assert tree.search(42) == []
        assert len(tree) == 10
        assert tree.height > 1

    def test_duplicate_keys(self):
        tree = BPlusTree(order=4)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert sorted(tree.search("k")) == [1, 2]

    def test_range_search(self):
        tree = BPlusTree(order=4)
        for value in range(100):
            tree.insert(value, value)
        results = [key for key, _ in tree.range_search(10, 20)]
        assert results == list(range(10, 21))
        open_low = [key for key, _ in tree.range_search(None, 5)]
        assert open_low == list(range(0, 6))
        exclusive = [key for key, _ in tree.range_search(10, 20, include_low=False,
                                                         include_high=False)]
        assert exclusive == list(range(11, 20))

    def test_prefix_search_strings(self):
        tree = BPlusTree(order=4)
        for index in range(50):
            tree.insert(f"JW{index:04d}", index)
        matches = tree.prefix_search("JW000")
        assert len(matches) == 10

    def test_prefix_search_tuples(self):
        tree = BPlusTree(order=4)
        tree.insert((("H", 3), ("E", 2)), "a")
        tree.insert((("H", 3), ("L", 1)), "b")
        tree.insert((("L", 5),), "c")
        assert {v for _, v in tree.prefix_search((("H", 3),))} == {"a", "b"}

    def test_delete(self):
        tree = BPlusTree(order=4)
        for value in range(20):
            tree.insert(value, f"v{value}")
        assert tree.delete(5) == 1
        assert tree.search(5) == []
        assert tree.delete(5) == 0
        tree.insert(6, "extra")
        assert tree.delete(6, "extra") == 1
        assert tree.search(6) == ["v6"]

    def test_items_are_sorted(self):
        tree = BPlusTree(order=4)
        data = random.Random(3).sample(range(1000), 200)
        for value in data:
            tree.insert(value, value)
        assert tree.keys() == sorted(data)

    def test_order_validation(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)

    def test_io_statistics_grow_with_operations(self):
        tree = BPlusTree(order=4)
        for value in range(100):
            tree.insert(value, value)
        assert tree.stats.node_reads > 0
        assert tree.stats.node_writes > 0
        assert tree.stats.node_splits > 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    def test_matches_sorted_reference(self, values):
        tree = BPlusTree(order=4)
        for value in values:
            tree.insert(value, value)
        assert tree.keys() == sorted(values)
        probe = values[0]
        assert tree.search(probe) == [probe] * values.count(probe)


class TestHashIndex:
    def test_insert_search_delete(self):
        index = HashIndex(num_buckets=4)
        for value in range(100):
            index.insert(f"key{value}", value)
        assert index.search("key42") == [42]
        assert index.search("missing") == []
        assert index.delete("key42") == 1
        assert index.search("key42") == []

    def test_grows_under_load(self):
        index = HashIndex(num_buckets=2)
        for value in range(100):
            index.insert(value, value)
        assert index.num_buckets > 2
        assert all(index.search(v) == [v] for v in range(100))

    def test_duplicate_values_and_targeted_delete(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert sorted(index.search("k")) == [1, 2]
        index.delete("k", 1)
        assert index.search("k") == [2]


class TestRTree:
    def test_point_and_range_search(self):
        tree = RTree(max_entries=4)
        points = [(float(x), float(y)) for x in range(10) for y in range(10)]
        for index, (x, y) in enumerate(points):
            tree.insert_point(x, y, index)
        hits = tree.range_search(Rect(2, 2, 4, 4))
        assert len(hits) == 9
        assert len(tree.point_search(5, 5)) == 1
        assert tree.point_search(50, 50) == []

    def test_rectangle_intersection(self):
        tree = RTree(max_entries=4)
        tree.insert(Rect(0, 0, 10, 10), "big")
        tree.insert(Rect(20, 20, 30, 30), "far")
        hits = [value for _, value in tree.range_search(Rect(5, 5, 6, 6))]
        assert hits == ["big"]

    def test_knn_matches_brute_force(self):
        rng = random.Random(17)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(300)]
        tree = RTree(max_entries=8)
        for index, (x, y) in enumerate(points):
            tree.insert_point(x, y, index)
        target = (40.0, 60.0)
        knn = tree.knn(target[0], target[1], 5)
        brute = sorted(
            (((x - target[0]) ** 2 + (y - target[1]) ** 2) ** 0.5, index)
            for index, (x, y) in enumerate(points)
        )[:5]
        assert [value for _, value in knn] == [index for _, index in brute]

    def test_degenerate_rect_rejected(self):
        with pytest.raises(IndexError_):
            Rect(5, 5, 1, 1)

    def test_stats_accumulate(self):
        tree = RTree(max_entries=4)
        for index in range(100):
            tree.insert_point(float(index), float(index), index)
        before = tree.stats.node_reads
        tree.range_search(Rect(0, 0, 10, 10))
        assert tree.stats.node_reads > before
