"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads import build_gene_protein_pipeline, build_gene_tables


def pytest_configure(config):
    # Skip logic lives in the root conftest.py next to --runslow.
    config.addinivalue_line(
        "markers", "slow: long-running test, skipped unless --runslow is given")


@pytest.fixture
def db() -> Database:
    """A fresh in-memory database."""
    return Database()


@pytest.fixture
def gene_db() -> Database:
    """A database loaded with the DB1_Gene / DB2_Gene workload (Figures 2-3)."""
    database = Database()
    info = build_gene_tables(database, num_genes=20, overlap=0.5, seed=5)
    database.gene_info = info  # type: ignore[attr-defined]
    return database


@pytest.fixture
def pipeline_db() -> Database:
    """A database loaded with the Gene/Protein/GeneMatching pipeline (Figure 9)."""
    database = Database()
    ids = build_gene_protein_pipeline(database, num_genes=12, seed=9)
    database.pipeline_ids = ids  # type: ignore[attr-defined]
    return database


@pytest.fixture
def simple_db() -> Database:
    """A small generic table used by DML / authorization tests."""
    database = Database()
    database.execute(
        "CREATE TABLE samples (id INTEGER PRIMARY KEY, name TEXT, score FLOAT, "
        "category TEXT)"
    )
    rows = [
        (1, "alpha", 0.5, "control"),
        (2, "beta", 1.5, "control"),
        (3, "gamma", 2.5, "treated"),
        (4, "delta", 3.5, "treated"),
        (5, "epsilon", 4.5, "treated"),
    ]
    for row in rows:
        database.execute(
            f"INSERT INTO samples VALUES ({row[0]}, '{row[1]}', {row[2]}, '{row[3]}')"
        )
    return database
