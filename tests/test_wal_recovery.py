"""Crash recovery: WAL durability, fault injection, and reopen-and-verify.

Every test opens a file-backed database, commits (or crashes) work, then
opens a *second* Database over the same path — exactly what a process
restart after a crash does — and verifies that committed transactions are
all there and uncommitted ones are all gone.

Crash points (one-shot fault injection, ``repro.storage.wal`` /
``FileDiskManager``):

* ``mid_append`` — the WAL frame is half written: recovery must truncate
  the torn tail, so the crashed transaction is *absent*;
* ``after_append`` — the frame hit the OS file but the commit was never
  acknowledged: replay finds a complete frame, so the transaction is
  *present* (redo-only logs may replay unacknowledged commits — what they
  must never do is lose acknowledged ones);
* ``before_fsync`` — like ``after_append`` but past the durability check;
* ``mid_page_write`` — the *data* file is torn mid page during a flush:
  the WAL is the authority, the page store is rebuilt from it.
"""

from __future__ import annotations

import threading

import pytest

from repro import Database
from repro.storage.wal import (
    CRASH_AFTER_APPEND,
    CRASH_BEFORE_FSYNC,
    CRASH_MID_APPEND,
    InjectedCrash,
)


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "crash.db")


def fresh(db_path, **kwargs) -> Database:
    return Database(db_path, **kwargs)


def setup_committed(db_path):
    """A database with one committed table of two rows; returns it open."""
    db = fresh(db_path)
    conn = db.connect()
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    conn.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
    return db

def ids(db):
    return sorted(r[0] for r in db.connect().execute("SELECT id FROM t").fetchall())


# ---------------------------------------------------------------------------
# Plain durability
# ---------------------------------------------------------------------------
class TestDurability:
    def test_committed_data_survives_reopen(self, db_path):
        db = setup_committed(db_path)
        db.close()
        db2 = fresh(db_path)
        rows = dict(db2.connect().execute("SELECT id, v FROM t").fetchall())
        assert rows == {1: "one", 2: "two"}

    def test_committed_data_survives_without_close(self, db_path):
        # No close(), no flush: the WAL alone must carry the commits.
        setup_committed(db_path)
        assert ids(fresh(db_path)) == [1, 2]

    def test_uncommitted_transaction_is_gone_after_reopen(self, db_path):
        db = setup_committed(db_path)
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (3, 'limbo')")
        # Simulated crash: abandon the instance without COMMIT or close.
        assert ids(fresh(db_path)) == [1, 2]

    def test_explicit_transaction_commit_is_durable(self, db_path):
        db = setup_committed(db_path)
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (3, 'three')")
        conn.execute("UPDATE t SET v = 'uno' WHERE id = 1")
        conn.execute("DELETE FROM t WHERE id = 2")
        conn.commit()
        db2 = fresh(db_path)
        rows = dict(db2.connect().execute("SELECT id, v FROM t").fetchall())
        assert rows == {1: "uno", 3: "three"}

    def test_rolled_back_transaction_leaves_no_trace(self, db_path):
        db = setup_committed(db_path)
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (3, 'doomed')")
        conn.rollback()
        conn.execute("INSERT INTO t VALUES (4, 'four')")
        assert ids(fresh(db_path)) == [1, 2, 4]

    def test_schema_and_indexes_recover(self, db_path):
        db = setup_committed(db_path)
        conn = db.connect()
        conn.execute("CREATE INDEX idx_v ON t (v)")
        conn.execute("INSERT INTO t VALUES (3, 'three')")
        db2 = fresh(db_path)
        assert "idx_v" in db2.indexes.index_names()
        cur = db2.connect().execute("SELECT id FROM t WHERE v = ?", ("three",))
        assert [r[0] for r in cur.fetchall()] == [3]

    def test_annotations_recover(self, db_path):
        db = setup_committed(db_path)
        conn = db.connect()
        conn.execute("CREATE ANNOTATION TABLE note ON t")
        conn.execute("ADD ANNOTATION TO t.note VALUE 'verified' "
                     "ON (SELECT v FROM t WHERE id = 1)")
        db2 = fresh(db_path)
        rows = db2.connect().execute(
            "SELECT id, v FROM t ANNOTATION(note)").fetchall()
        notes = {row[0]: [a.body for anns in row.annotations for a in anns]
                 for row in rows}
        assert any("verified" in body for body in notes[1])
        assert notes[2] == []
        # The recovered annotation table keeps working: new annotations get
        # fresh ids (the id counter is rebuilt from the recovered bodies).
        conn2 = db2.connect()
        conn2.execute("ADD ANNOTATION TO t.note VALUE 'second' "
                      "ON (SELECT v FROM t WHERE id = 2)")
        rows = conn2.execute("SELECT id, v FROM t ANNOTATION(note)").fetchall()
        notes = {row[0]: [a.body for anns in row.annotations for a in anns]
                 for row in rows}
        assert any("second" in body for body in notes[2])

    def test_grants_recover(self, db_path):
        db = setup_committed(db_path)
        conn = db.connect()
        conn.execute("GRANT SELECT ON t TO alice")
        db2 = fresh(db_path)
        assert db2.access.has_privilege("alice", "SELECT", "t")


# ---------------------------------------------------------------------------
# Crash-point fault injection
# ---------------------------------------------------------------------------
class TestCrashPoints:
    def _crash_commit(self, db_path, fail_point):
        """Open, commit one txn, then crash at ``fail_point`` committing a
        second.  Returns nothing; the database instance is abandoned."""
        db = setup_committed(db_path)
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (3, 'crashing')")
        db.wal.fail_point = fail_point
        with pytest.raises(InjectedCrash):
            conn.execute("COMMIT")

    def test_crash_mid_append_loses_only_the_crashed_txn(self, db_path):
        self._crash_commit(db_path, CRASH_MID_APPEND)
        # The frame is torn: recovery truncates it, the txn never committed.
        assert ids(fresh(db_path)) == [1, 2]

    def test_crash_after_append_recovers_the_txn(self, db_path):
        self._crash_commit(db_path, CRASH_AFTER_APPEND)
        # The frame is complete in the OS file: replay applies it.
        assert ids(fresh(db_path)) == [1, 2, 3]

    def test_crash_before_fsync_recovers_the_txn(self, db_path):
        self._crash_commit(db_path, CRASH_BEFORE_FSYNC)
        assert ids(fresh(db_path)) == [1, 2, 3]

    def test_recovered_database_keeps_working(self, db_path):
        self._crash_commit(db_path, CRASH_MID_APPEND)
        db = fresh(db_path)
        conn = db.connect()
        conn.execute("INSERT INTO t VALUES (10, 'post-crash')")
        db.close()
        assert ids(fresh(db_path)) == [1, 2, 10]

    def test_crash_mid_data_page_write_recovers_from_wal(self, db_path):
        db = setup_committed(db_path)
        db.disk.fail_mid_page_write = True
        with pytest.raises(InjectedCrash):
            # commit() without an open txn is the autocommit durability
            # point: it flushes dirty pages — and tears one mid write.
            db.commit()
        # The data file is torn (its size is not a page multiple), but the
        # WAL has every commit: reopen rebuilds the pages.
        db2 = fresh(db_path)
        rows = dict(db2.connect().execute("SELECT id, v FROM t").fetchall())
        assert rows == {1: "one", 2: "two"}

    def test_autocommitted_statements_survive_crash(self, db_path):
        db = setup_committed(db_path)
        conn = db.connect()
        conn.execute("INSERT INTO t VALUES (3, 'auto')")
        db.wal.fail_point = CRASH_MID_APPEND
        with pytest.raises(InjectedCrash):
            conn.execute("INSERT INTO t VALUES (4, 'crashing')")
        assert ids(fresh(db_path)) == [1, 2, 3]


# ---------------------------------------------------------------------------
# Group commit
# ---------------------------------------------------------------------------
class TestGroupCommit:
    def test_concurrent_commits_all_durable(self, db_path):
        db = fresh(db_path)
        db.connect().execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        errors = []

        def writer(base):
            try:
                conn = db.connect()
                for i in range(5):
                    conn.execute("BEGIN")
                    conn.execute("INSERT INTO t VALUES (?, ?)",
                                 (base + i, f"w{base}"))
                    conn.commit()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(base,))
                   for base in (100, 200, 300, 400)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        committed = 20
        # Group commit may batch concurrent fsyncs but never skip
        # durability: at most one fsync per commit, and every row survives.
        assert db.wal.fsync_count <= committed + 1
        expected = sorted(base + i for base in (100, 200, 300, 400)
                          for i in range(5))
        assert ids(fresh(db_path)) == expected

    def test_synchronous_off_skips_fsync(self, db_path):
        from repro.executor.engine import EngineConfig
        db = fresh(db_path, config=EngineConfig(synchronous="off"))
        conn = db.connect()
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        conn.execute("INSERT INTO t VALUES (1, 'one')")
        assert db.wal.fsync_count == 0
        assert db.disk.fsync_count == 0
        # The data is still recoverable in a clean-shutdown world.
        db.close()
        assert ids(fresh(db_path)) == [1]
