"""Tests for schemas, stored tables, and the system catalog."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import SystemCatalog
from repro.catalog.schema import Column, TableSchema
from repro.core.errors import CatalogError, ConstraintViolationError, TypeMismatchError
from repro.types.datatypes import DataType


def gene_schema() -> TableSchema:
    return TableSchema("Gene", [
        Column("GID", DataType.TEXT, primary_key=True),
        Column("GName", DataType.TEXT),
        Column("GSequence", DataType.SEQUENCE),
        Column("Length", DataType.INTEGER, default=0),
    ])


class TestTableSchema:
    def test_column_lookup_is_case_insensitive(self):
        schema = gene_schema()
        assert schema.column("gid").name == "GID"
        assert schema.column_position("gsequence") == 2
        assert "GNAME" in schema

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("T", [Column("a", DataType.TEXT), Column("A", DataType.TEXT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("T", [])

    def test_primary_key_implies_not_null(self):
        assert gene_schema().column("GID").nullable is False

    def test_coerce_row_applies_defaults_and_types(self):
        schema = gene_schema()
        row = schema.coerce_row({"GID": "JW0001", "GName": "mraW",
                                 "GSequence": "ATG"})
        assert row == ("JW0001", "mraW", "ATG", 0)

    def test_coerce_row_unknown_column(self):
        with pytest.raises(CatalogError):
            gene_schema().coerce_row({"GID": "x", "bogus": 1})

    def test_coerce_positional_arity(self):
        with pytest.raises(TypeMismatchError):
            gene_schema().coerce_positional(("only", "three", "values"))

    def test_coerce_reports_offending_column(self):
        with pytest.raises(TypeMismatchError, match="Gene.Length"):
            gene_schema().coerce_row({"GID": "x", "Length": "not a number"})

    def test_serialization_roundtrip(self):
        schema = gene_schema()
        restored = TableSchema.from_dict(schema.to_dict())
        assert restored.column_names == schema.column_names
        assert restored.column("Length").default == 0
        assert restored.primary_key_columns == ["GID"]


class TestTable:
    def _table(self):
        catalog = SystemCatalog()
        return catalog.create_table(gene_schema())

    def test_insert_and_read(self):
        table = self._table()
        tid = table.insert_row({"GID": "JW0080", "GName": "mraW",
                                "GSequence": "ATGATG", "Length": 6})
        assert table.read_row(tid) == ("JW0080", "mraW", "ATGATG", 6)
        assert table.read_cell(tid, "GName") == "mraW"

    def test_primary_key_uniqueness(self):
        table = self._table()
        table.insert_row({"GID": "JW0001", "GName": "a", "GSequence": "A"})
        with pytest.raises(ConstraintViolationError):
            table.insert_row({"GID": "JW0001", "GName": "b", "GSequence": "C"})

    def test_primary_key_lookup(self):
        table = self._table()
        tid = table.insert_row({"GID": "JW0007", "GName": "x", "GSequence": "A"})
        assert table.lookup_primary_key(("JW0007",)) == tid
        assert table.lookup_primary_key(("missing",)) is None

    def test_update_changes_values_and_pk_index(self):
        table = self._table()
        tid = table.insert_row({"GID": "JW0001", "GName": "a", "GSequence": "A"})
        table.update_row(tid, {"GID": "JW0002", "GSequence": "ATG"})
        assert table.lookup_primary_key(("JW0002",)) == tid
        assert table.lookup_primary_key(("JW0001",)) is None
        assert table.read_cell(tid, "GSequence") == "ATG"

    def test_update_into_existing_pk_rejected(self):
        table = self._table()
        table.insert_row({"GID": "JW0001", "GName": "a", "GSequence": "A"})
        tid = table.insert_row({"GID": "JW0002", "GName": "b", "GSequence": "C"})
        with pytest.raises(ConstraintViolationError):
            table.update_row(tid, {"GID": "JW0001"})

    def test_delete_removes_tuple(self):
        table = self._table()
        tid = table.insert_row({"GID": "JW0001", "GName": "a", "GSequence": "A"})
        table.delete_row(tid)
        assert not table.has_tuple(tid)
        with pytest.raises(CatalogError):
            table.read_row(tid)

    def test_tuple_ids_survive_other_deletes(self):
        table = self._table()
        first = table.insert_row({"GID": "JW0001", "GName": "a", "GSequence": "A"})
        second = table.insert_row({"GID": "JW0002", "GName": "b", "GSequence": "C"})
        table.delete_row(first)
        assert table.read_cell(second, "GID") == "JW0002"
        third = table.insert_row({"GID": "JW0003", "GName": "c", "GSequence": "G"})
        assert third > second

    def test_find_tuples(self):
        table = self._table()
        table.insert_row({"GID": "JW0001", "GName": "dup", "GSequence": "A"})
        table.insert_row({"GID": "JW0002", "GName": "dup", "GSequence": "C"})
        table.insert_row({"GID": "JW0003", "GName": "other", "GSequence": "G"})
        assert len(table.find_tuples("GName", "dup")) == 2

    def test_rows_as_dicts(self):
        table = self._table()
        table.insert_row({"GID": "JW0001", "GName": "a", "GSequence": "A"})
        rows = table.rows_as_dicts()
        assert rows[0]["GID"] == "JW0001"


class TestSystemCatalog:
    def test_create_and_drop(self):
        catalog = SystemCatalog()
        catalog.create_table(gene_schema())
        assert catalog.has_table("gene")
        assert catalog.table_names() == ["Gene"]
        catalog.drop_table("GENE")
        assert not catalog.has_table("Gene")

    def test_duplicate_table_rejected(self):
        catalog = SystemCatalog()
        catalog.create_table(gene_schema())
        with pytest.raises(CatalogError):
            catalog.create_table(gene_schema())

    def test_unknown_table_raises(self):
        catalog = SystemCatalog()
        with pytest.raises(CatalogError):
            catalog.table("nope")
        with pytest.raises(CatalogError):
            catalog.drop_table("nope")

    def test_resolve_column(self):
        catalog = SystemCatalog()
        catalog.create_table(gene_schema())
        assert catalog.resolve_column("Gene", "gid").name == "GID"

    def test_io_statistics_exposed(self):
        catalog = SystemCatalog()
        table = catalog.create_table(gene_schema())
        table.insert_row({"GID": "JW0001", "GName": "a", "GSequence": "A"})
        assert catalog.io_statistics().pages_allocated >= 1
