"""Prepared statements: binding semantics and the schema-versioned plan cache.

The contract under test (ISSUE 5 acceptance): re-executing a prepared query
reuses the cached plan (``engine.last_plan`` is identity-stable and
``engine.last_plan_cached`` flips true), while any DDL, ANALYZE, statistics
auto-refresh, or config change between executions provably evicts it — the
next execution re-plans (fresh ``last_plan`` object, access paths reflecting
the new catalog state).
"""

from __future__ import annotations

import math

import pytest

import repro
from repro import Database
from repro.core.errors import PlanningError, ProgrammingError
from repro.planner.plan import plan_access_paths
from repro.sql.parser import parse_prepared, parse_statement


def make_db(rows: int = 64) -> Database:
    db = Database()
    connection = db.connect()
    cur = connection.cursor()
    cur.execute("CREATE TABLE events (eid INTEGER PRIMARY KEY, kind TEXT, "
                "v FLOAT)")
    cur.executemany("INSERT INTO events VALUES (?, ?, ?)",
                    [(i, f"k{i % 5}", i * 0.5) for i in range(rows)])
    db.analyze("events")
    return db


POINT_QUERY = "SELECT eid, kind FROM events WHERE eid = ?"


# ---------------------------------------------------------------------------
# Binding semantics
# ---------------------------------------------------------------------------
class TestBinding:
    def test_rebinding_changes_results_not_the_plan(self):
        db = make_db()
        cur = db.connect().cursor()
        assert cur.execute(POINT_QUERY, (3,)).fetchone().values == (3, "k3")
        plan = db.engine.last_plan
        assert cur.execute(POINT_QUERY, (4,)).fetchone().values == (4, "k4")
        assert db.engine.last_plan is plan
        assert db.engine.last_plan_cached

    def test_parameters_in_every_clause_position(self):
        db = make_db()
        cur = db.connect().cursor()
        cur.execute(
            "SELECT kind, COUNT(*), SUM(v + ?) FROM events "
            "WHERE v >= ? AND kind <> ? GROUP BY kind HAVING COUNT(*) > ? "
            "ORDER BY kind",
            (1.0, 0.0, "k4", 2))
        rows = [tuple(row) for row in cur.fetchall()]
        assert [row[0] for row in rows] == ["k0", "k1", "k2", "k3"]

    def test_parameter_as_like_pattern_and_in_list(self):
        db = make_db(10)
        cur = db.connect().cursor()
        cur.execute("SELECT eid FROM events WHERE kind LIKE ? "
                    "AND eid IN (?, ?, ?) ORDER BY eid", ("k%", 1, 2, 7))
        assert [row[0] for row in cur.fetchall()] == [1, 2, 7]

    def test_unbound_placeholder_fails_clearly_at_engine_level(self):
        db = make_db(4)
        statement = parse_statement("SELECT * FROM events WHERE eid = ?")
        with pytest.raises(PlanningError) as excinfo:
            db.engine.execute(statement)
        assert "unbound parameter" in str(excinfo.value)

    def test_prepare_rejects_parameters_in_unsupported_statements(self):
        db = make_db(4)
        with pytest.raises(ProgrammingError) as excinfo:
            db.engine.prepare(
                "ADD ANNOTATION TO events.note VALUE 'x' "
                "ON (SELECT eid FROM events WHERE eid = ?)")
        assert "not supported" in str(excinfo.value)

    def test_parse_prepared_counts_placeholders(self):
        statement, count = parse_prepared(
            "SELECT * FROM t WHERE a = ? AND b BETWEEN ? AND ?")
        assert count == 3

    def test_injection_shaped_value_stays_data(self):
        db = make_db(4)
        cur = db.connect().cursor()
        payload = "k0' OR '1'='1"
        cur.execute("SELECT eid FROM events WHERE kind = ?", (payload,))
        assert cur.fetchall() == []          # no row has that literal kind
        assert len(db.table("events")) == 4  # and nothing else happened


# ---------------------------------------------------------------------------
# Index lookups with bind-time keys
# ---------------------------------------------------------------------------
class TestParameterizedIndexLookups:
    def make_indexed_db(self, rows: int = 64) -> Database:
        db = make_db(rows)
        db.connect().cursor().execute(
            "CREATE INDEX ix_events_eid ON events (eid) USING btree")
        return db

    def test_point_query_takes_index_lookup(self):
        db = self.make_indexed_db()
        cur = db.connect().cursor()
        assert cur.execute(POINT_QUERY, (9,)).fetchone().values == (9, "k4")
        assert plan_access_paths(db.engine.last_plan) == ["index_lookup"]
        # Cached re-execution keeps the access path and returns fresh rows.
        assert cur.execute(POINT_QUERY, (10,)).fetchone().values == (10, "k0")
        assert db.engine.last_plan_cached

    def test_null_key_returns_no_rows(self):
        db = self.make_indexed_db()
        cur = db.connect().cursor()
        assert cur.execute(POINT_QUERY, (None,)).fetchall() == []

    def test_nan_key_falls_back_to_scan_and_matches_nan_rows(self):
        db = Database()
        cur = db.connect().cursor()
        cur.execute("CREATE TABLE m (id INTEGER PRIMARY KEY, x FLOAT)")
        cur.executemany("INSERT INTO m VALUES (?, ?)",
                        [(1, 1.0), (2, float("nan")), (3, 3.0)])
        cur.execute("CREATE INDEX ix_m_x ON m (x) USING btree")
        # NaN rows are not in the B-tree; the bind-time NaN key must fall
        # back to a sequential scan, which finds the NaN row (the engine's
        # comparison buckets NaN with NaN).
        cur.execute("SELECT id FROM m WHERE x = ?", (float("nan"),))
        assert [row[0] for row in cur.fetchall()] == [2]

    def test_type_mismatched_key_is_safe(self):
        db = self.make_indexed_db()
        cur = db.connect().cursor()
        cur.execute(POINT_QUERY, ("not-an-integer",))
        assert cur.fetchall() == []          # no crash, no rows


# ---------------------------------------------------------------------------
# Plan cache: hits, invalidation, eviction
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_hit_and_miss_counters(self):
        db = make_db()
        stats = db.engine.plan_cache.stats
        cur = db.connect().cursor()
        cur.execute(POINT_QUERY, (1,)).fetchall()
        cur.execute(POINT_QUERY, (2,)).fetchall()
        cur.execute(POINT_QUERY, (3,)).fetchall()
        assert stats.misses == 1
        assert stats.hits == 2

    def test_create_index_evicts_and_replans(self):
        db = make_db()
        cur = db.connect().cursor()
        cur.execute(POINT_QUERY, (1,)).fetchall()
        seq_plan = db.engine.last_plan
        assert plan_access_paths(seq_plan) == ["seq"]
        cur.execute("CREATE INDEX ix_events_eid ON events (eid) USING btree")
        cur.execute(POINT_QUERY, (1,)).fetchall()
        assert db.engine.last_plan is not seq_plan
        assert not db.engine.last_plan_cached or False  # re-planned this run
        assert plan_access_paths(db.engine.last_plan) == ["index_lookup"]
        assert db.engine.plan_cache.stats.invalidations >= 1

    def test_drop_index_evicts_the_indexed_plan(self):
        db = make_db()
        cur = db.connect().cursor()
        cur.execute("CREATE INDEX ix_events_eid ON events (eid) USING btree")
        cur.execute(POINT_QUERY, (1,)).fetchall()
        indexed_plan = db.engine.last_plan
        assert plan_access_paths(indexed_plan) == ["index_lookup"]
        cur.execute("DROP INDEX ix_events_eid")
        cur.execute(POINT_QUERY, (1,)).fetchall()
        assert db.engine.last_plan is not indexed_plan
        assert plan_access_paths(db.engine.last_plan) == ["seq"]

    def test_analyze_evicts(self):
        db = make_db()
        cur = db.connect().cursor()
        cur.execute(POINT_QUERY, (1,)).fetchall()
        plan = db.engine.last_plan
        db.analyze("events")
        cur.execute(POINT_QUERY, (1,)).fetchall()
        assert db.engine.last_plan is not plan
        assert db.engine.plan_cache.stats.invalidations >= 1

    def test_statistics_auto_refresh_evicts(self):
        # Enough DML since the last ANALYZE must not leave a stale plan
        # cached forever: the cache hit pokes statistics staleness, the
        # auto-refresh re-analyzes, and the plan is rebuilt.
        db = make_db(16)
        cur = db.connect().cursor()
        cur.execute(POINT_QUERY, (1,)).fetchall()
        plan = db.engine.last_plan
        cur.executemany("INSERT INTO events VALUES (?, ?, ?)",
                        [(1000 + i, "bulk", 0.0) for i in range(200)])
        cur.execute(POINT_QUERY, (1,)).fetchall()
        assert db.engine.last_plan is not plan

    def test_config_change_plans_separately_per_fingerprint(self):
        db = Database()
        cur = db.connect().cursor()
        cur.execute("CREATE TABLE a (x INTEGER PRIMARY KEY)")
        cur.execute("CREATE TABLE b (x INTEGER PRIMARY KEY)")
        for i in range(8):
            cur.execute("INSERT INTO a VALUES (?)", (i,))
            cur.execute("INSERT INTO b VALUES (?)", (i,))
        join = "SELECT a.x FROM a, b WHERE a.x = b.x AND a.x = ?"
        cur.execute(join, (1,)).fetchall()
        auto_plan = db.engine.last_plan
        db.config.join_strategy = "nested_loop"
        cur.execute(join, (1,)).fetchall()
        forced_plan = db.engine.last_plan
        assert forced_plan is not auto_plan
        # Flipping back rehits the original fingerprint's entry.
        db.config.join_strategy = "auto"
        cur.execute(join, (1,)).fetchall()
        assert db.engine.last_plan is auto_plan
        assert db.engine.last_plan_cached

    def test_lru_eviction_respects_capacity(self):
        db = make_db(8)
        db.config.plan_cache_size = 2
        cur = db.connect().cursor()
        cur.execute("SELECT eid FROM events WHERE eid = ?", (1,)).fetchall()
        cur.execute("SELECT kind FROM events WHERE eid = ?", (1,)).fetchall()
        cur.execute("SELECT v FROM events WHERE eid = ?", (1,)).fetchall()
        assert len(db.engine.plan_cache) == 2
        assert db.engine.plan_cache.stats.evictions == 1

    def test_plan_cache_can_be_disabled(self):
        db = make_db(8)
        db.config.plan_cache_size = 0
        cur = db.connect().cursor()
        cur.execute(POINT_QUERY, (1,)).fetchall()
        cur.execute(POINT_QUERY, (2,)).fetchall()
        assert not db.engine.last_plan_cached
        assert len(db.engine.plan_cache) == 0

    def test_compound_queries_cache_each_block(self):
        db = make_db(16)
        stats = db.engine.plan_cache.stats
        cur = db.connect().cursor()
        union = ("SELECT eid FROM events WHERE eid = ? "
                 "UNION SELECT eid FROM events WHERE eid = ?")
        rows = cur.execute(union, (1, 2)).fetchall()
        assert sorted(row[0] for row in rows) == [1, 2]
        first_misses = stats.misses
        assert first_misses == 2             # one per SELECT block
        rows = cur.execute(union, (3, 4)).fetchall()
        assert sorted(row[0] for row in rows) == [3, 4]
        assert stats.misses == first_misses  # both blocks hit
        assert stats.hits >= 2

    def test_explain_renders_generic_plan_with_placeholders(self):
        db = make_db(8)
        db.connect().cursor().execute(
            "CREATE INDEX ix_events_eid ON events (eid) USING btree")
        summary = db.explain("SELECT eid FROM events WHERE eid = ?")
        assert "?1" in summary.message
        assert "IndexScan" in summary.message

    def test_cached_plan_sees_fresh_rows(self):
        db = make_db(8)
        cur = db.connect().cursor()
        assert cur.execute(POINT_QUERY, (100,)).fetchall() == []
        cur.execute("INSERT INTO events VALUES (?, ?, ?)", (100, "new", 1.0))
        rows = cur.execute(POINT_QUERY, (100,)).fetchall()
        assert [tuple(row) for row in rows] == [(100, "new")]

    def test_null_insert_invalidates_cached_ordered_index_scan(self):
        # A cached ordered key-order scan rests on a *data*-dependent proof
        # (no NULL/NaN keys missing from the index).  One NULL insert —
        # far below the auto-ANALYZE threshold, no DDL — must still force
        # a re-plan, or the cached scan silently drops the new row.
        db = Database()
        cur = db.connect().cursor()
        cur.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
        cur.executemany("INSERT INTO t VALUES (?, ?)",
                        [(i, float(i)) for i in range(20)])
        cur.execute("CREATE INDEX ix_t_v ON t (v) USING btree")
        db.analyze("t")
        sql = "SELECT id, v FROM t ORDER BY v"
        assert len(cur.execute(sql).fetchall()) == 20
        assert plan_access_paths(db.engine.last_plan) == ["index_range"]
        cur.execute("INSERT INTO t VALUES (?, ?)", (99, None))
        rows = cur.execute(sql).fetchall()
        assert len(rows) == 21                      # NULL row not dropped
        assert 99 in {row[0] for row in rows}
        assert not db.engine.last_plan_cached       # proof broke: re-planned

    def test_nan_insert_invalidates_cached_lower_bound_range(self):
        db = Database()
        cur = db.connect().cursor()
        cur.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
        cur.executemany("INSERT INTO t VALUES (?, ?)",
                        [(i, float(i)) for i in range(400)])
        cur.execute("CREATE INDEX ix_t_v ON t (v) USING btree")
        db.analyze("t")
        sql = "SELECT id FROM t WHERE v > 390"      # lower-bound-only range
        assert len(cur.execute(sql).fetchall()) == 9
        assert plan_access_paths(db.engine.last_plan) == ["index_range"]
        # NaN orders above every number, so it satisfies v > 390 — but it
        # is not in the B-tree.  The cached range scan must be evicted.
        cur.execute("INSERT INTO t VALUES (?, ?)", (999, float("nan")))
        rows = cur.execute(sql).fetchall()
        assert 999 in {row[0] for row in rows}
        assert len(rows) == 10

    def test_from_less_select_binds_parameters(self):
        db = Database()
        cur = db.connect().cursor()
        assert cur.execute("SELECT ?", (42,)).fetchone().values == (42,)
        assert cur.execute("SELECT ? + 1", (41,)).fetchone().values == (42,)
        # And the second execution (cached block) rebinds correctly.
        assert cur.execute("SELECT ?", ("ping",)).fetchone().values == ("ping",)

    def test_from_less_select_resets_cached_flag(self):
        db = make_db(8)
        cur = db.connect().cursor()
        cur.execute(POINT_QUERY, (1,)).fetchall()
        cur.execute(POINT_QUERY, (1,)).fetchall()
        assert db.engine.last_plan_cached
        cur.execute("SELECT ?", (1,)).fetchone()
        assert not db.engine.last_plan_cached  # no plan involved

    def test_explain_parameterized_through_cursor(self):
        db = make_db(16)
        cur = db.connect().cursor()
        cur.execute("CREATE INDEX ix_events_eid ON events (eid) USING btree")
        # Generic-plan EXPLAIN works with or without bound values; the plan
        # comes back as rows of a "plan" column with ?N markers intact.
        for params in ((), (5,)):
            cur.execute("EXPLAIN SELECT kind FROM events WHERE eid = ?", params)
            assert [entry[0] for entry in cur.description] == ["plan"]
            text = "\n".join(row[0] for row in cur.fetchall())
            assert "IndexScan" in text and "?1" in text


# ---------------------------------------------------------------------------
# Costing with unknown bound values
# ---------------------------------------------------------------------------
class TestGenericPlanCosting:
    def test_pk_equality_on_parameter_estimates_one_row(self):
        db = make_db(64)
        db.connect().cursor().execute(POINT_QUERY, (1,)).fetchall()
        assert db.engine.last_plan.estimated_rows <= 1.0

    def test_range_on_parameter_uses_default_selectivity(self):
        from repro.catalog.statistics import DEFAULT_SELECTIVITY
        db = make_db(60)
        db.connect().cursor().execute(
            "SELECT eid FROM events WHERE v > ?", (1.0,)).fetchall()
        estimated = db.engine.last_plan.estimated_rows
        assert estimated == pytest.approx(60 * DEFAULT_SELECTIVITY)
