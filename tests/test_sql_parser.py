"""Tests for the tokenizer and the SQL / A-SQL parser."""

from __future__ import annotations

import pytest

from repro.core.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_script, parse_statement
from repro.sql.tokens import TokenType, tokenize


class TestTokenizer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT gid FROM Gene")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.KEYWORD, TokenType.IDENTIFIER, TokenType.KEYWORD,
            TokenType.IDENTIFIER,
        ]

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s a gene'")
        assert tokens[1].value == "it's a gene"

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e-4")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "3e-4"]

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n + 2")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1", "+", "2"]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_asql_keywords_recognised(self):
        tokens = tokenize("ADD ANNOTATION AWHERE AHAVING FILTER PROMOTE")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT #")


class TestDdlParsing:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE Gene (GID TEXT PRIMARY KEY, GName VARCHAR(20) NOT NULL, "
            "Length INTEGER DEFAULT 0)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].nullable is False
        assert stmt.columns[2].default == 0

    def test_drop_table(self):
        assert isinstance(parse_statement("DROP TABLE Gene"), ast.DropTable)

    def test_create_index_with_method(self):
        stmt = parse_statement("CREATE INDEX idx ON Gene (GID) USING hash")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.method == "hash"
        assert stmt.columns == ["GID"]

    def test_default_requires_literal(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("CREATE TABLE T (a INTEGER DEFAULT a+1)")


class TestDmlParsing:
    def test_insert_multiple_rows(self):
        stmt = parse_statement(
            "INSERT INTO Gene (GID, GName) VALUES ('a', 'b'), ('c', 'd')"
        )
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2
        assert stmt.columns == ["GID", "GName"]

    def test_update_with_where(self):
        stmt = parse_statement("UPDATE Gene SET GName = 'x', Length = 3 WHERE GID = 'a'")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2
        assert isinstance(stmt.where, ast.BinaryOp)

    def test_delete(self):
        stmt = parse_statement("DELETE FROM Gene WHERE Length > 10")
        assert isinstance(stmt, ast.Delete)


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT GID, GName FROM Gene WHERE Length > 5")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert stmt.from_tables[0].name == "Gene"

    def test_select_star_and_alias(self):
        stmt = parse_statement("SELECT G.* FROM Gene AS G")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.from_tables[0].alias == "G"

    def test_join(self):
        stmt = parse_statement(
            "SELECT g.GID FROM Gene g JOIN Protein p ON g.GID = p.GID"
        )
        assert len(stmt.joins) == 1
        assert stmt.joins[0].join_type == "INNER"

    def test_left_join(self):
        stmt = parse_statement(
            "SELECT g.GID FROM Gene g LEFT JOIN Protein p ON g.GID = p.GID"
        )
        assert stmt.joins[0].join_type == "LEFT"

    def test_group_by_having_order_limit(self):
        stmt = parse_statement(
            "SELECT category, COUNT(*) FROM samples GROUP BY category "
            "HAVING COUNT(*) > 1 ORDER BY category DESC LIMIT 10 OFFSET 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 10 and stmt.offset == 2

    def test_limit_zero_is_allowed(self):
        stmt = parse_statement("SELECT GID FROM Gene LIMIT 0")
        assert stmt.limit == 0

    @pytest.mark.parametrize("clause", [
        "LIMIT 2.5",
        "OFFSET 1.5",
        "LIMIT 3e-4",
        "LIMIT -1",
        "OFFSET -2",
        "LIMIT -2.5",
    ])
    def test_limit_offset_reject_non_integer_and_negative(self, clause):
        # Regression: these used to silently truncate through int(float(...)),
        # turning LIMIT 2.5 into LIMIT 2 (and choking on the '-' token with a
        # generic message for negatives).
        with pytest.raises(SqlSyntaxError):
            parse_statement(f"SELECT GID FROM Gene {clause}")

    def test_limit_requires_a_number(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT GID FROM Gene LIMIT lots")

    def test_set_operations_left_associative(self):
        stmt = parse_statement(
            "SELECT GID FROM A INTERSECT SELECT GID FROM B UNION SELECT GID FROM C"
        )
        assert isinstance(stmt, ast.SetOperation)
        assert stmt.op == "UNION"
        assert isinstance(stmt.left, ast.SetOperation)
        assert stmt.left.op == "INTERSECT"

    def test_expressions(self):
        expr = parse_expression("a + b * 2 >= 10 AND name LIKE 'JW%'")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "AND"

    def test_between_in_isnull(self):
        expr = parse_expression("x BETWEEN 1 AND 3 OR y IN (1, 2) OR z IS NOT NULL")
        assert isinstance(expr, ast.BinaryOp)

    def test_scalar_subquery_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT (SELECT 1) FROM Gene")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT 1 FROM Gene banana extra")


class TestAsqlParsing:
    def test_create_and_drop_annotation_table(self):
        create = parse_statement("CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene")
        assert isinstance(create, ast.CreateAnnotationTable)
        assert create.annotation_table == "GAnnotation"
        assert create.on_table == "DB2_Gene"
        drop = parse_statement("DROP ANNOTATION TABLE GAnnotation ON DB2_Gene")
        assert isinstance(drop, ast.DropAnnotationTable)

    def test_add_annotation_figure6_column_granularity(self):
        stmt = parse_statement(
            "ADD ANNOTATION TO DB2_Gene.GAnnotation "
            "VALUE '<Annotation>obtained from GenoBase</Annotation>' "
            "ON (Select G.GSequence From DB2_Gene G)"
        )
        assert isinstance(stmt, ast.AddAnnotation)
        assert stmt.annotation_tables == ["DB2_Gene.GAnnotation"]
        assert "GenoBase" in stmt.body
        assert isinstance(stmt.target, ast.Select)

    def test_add_annotation_on_insert(self):
        stmt = parse_statement(
            "ADD ANNOTATION TO Gene.GAnnotation VALUE 'new gene' "
            "ON (INSERT INTO Gene VALUES ('JW1', 'x', 'ATG'))"
        )
        assert isinstance(stmt.target, ast.Insert)

    def test_archive_with_time_range(self):
        stmt = parse_statement(
            "ARCHIVE ANNOTATION FROM Gene.GAnnotation "
            "BETWEEN '2007-01-01' AND '2007-06-30' "
            "ON (SELECT G.GID FROM Gene G)"
        )
        assert isinstance(stmt, ast.ArchiveAnnotation)
        assert stmt.time_from == "2007-01-01"
        assert stmt.time_to == "2007-06-30"

    def test_restore(self):
        stmt = parse_statement(
            "RESTORE ANNOTATION FROM Gene.GAnnotation ON (SELECT * FROM Gene)"
        )
        assert isinstance(stmt, ast.RestoreAnnotation)

    def test_select_with_annotation_operators_figure7(self):
        stmt = parse_statement(
            "SELECT DISTINCT GID PROMOTE (GSequence, GName), GName "
            "FROM DB1_Gene ANNOTATION(GAnnotation, Provenance) "
            "WHERE GID LIKE 'JW%' "
            "AWHERE annotation.value LIKE '%RegulonDB%' "
            "GROUP BY GID, GName "
            "HAVING COUNT(*) > 0 "
            "AHAVING annotation.curator = 'admin' "
            "FILTER annotation.archived = FALSE"
        )
        assert stmt.distinct
        assert [c.name for c in stmt.items[0].promote] == ["GSequence", "GName"]
        assert stmt.from_tables[0].annotation_tables == ["GAnnotation", "Provenance"]
        assert stmt.awhere is not None
        assert stmt.ahaving is not None
        assert stmt.filter is not None

    def test_grant_revoke(self):
        grant = parse_statement("GRANT SELECT, INSERT ON Gene TO lab_members")
        assert isinstance(grant, ast.Grant)
        assert grant.privileges == ["SELECT", "INSERT"]
        revoke = parse_statement("REVOKE INSERT ON Gene FROM lab_members")
        assert isinstance(revoke, ast.Revoke)

    def test_start_stop_content_approval_figure11(self):
        start = parse_statement(
            "START CONTENT APPROVAL ON Gene COLUMNS GSequence APPROVED BY lab_admin"
        )
        assert isinstance(start, ast.StartContentApproval)
        assert start.columns == ["GSequence"]
        assert start.approver == "lab_admin"
        stop = parse_statement("STOP CONTENT APPROVAL ON Gene")
        assert isinstance(stop, ast.StopContentApproval)

    def test_script_parsing(self):
        statements = parse_script(
            "CREATE TABLE T (a INTEGER); INSERT INTO T VALUES (1); SELECT * FROM T;"
        )
        assert len(statements) == 3


class TestParameterPlaceholders:
    def test_qmark_tokenizes_as_punctuation(self):
        tokens = tokenize("SELECT * FROM t WHERE a = ?")
        assert tokens[-2].type is TokenType.PUNCTUATION
        assert tokens[-2].value == "?"

    def test_question_mark_inside_string_is_text(self):
        tokens = tokenize("SELECT 'what?'")
        assert tokens[1].type is TokenType.STRING
        assert tokens[1].value == "what?"

    def test_placeholders_number_left_to_right(self):
        from repro.sql.parser import parse_prepared
        statement, count = parse_prepared(
            "SELECT a + ? FROM t WHERE b = ? AND c BETWEEN ? AND ?")
        assert count == 4
        assert isinstance(statement.items[0].expr.right, ast.Parameter)
        assert statement.items[0].expr.right.index == 0
        where = statement.where
        assert where.left.right.index == 1          # b = ?2
        assert where.right.low.index == 2           # BETWEEN ?3
        assert where.right.high.index == 3          # AND ?4

    def test_placeholders_in_dml(self):
        from repro.sql.parser import parse_prepared
        insert, count = parse_prepared("INSERT INTO t VALUES (?, ?, 3)")
        assert count == 2
        assert isinstance(insert.rows[0][0], ast.Parameter)
        update, count = parse_prepared("UPDATE t SET a = ? WHERE b = ?")
        assert count == 2
        assert isinstance(update.assignments[0][1], ast.Parameter)

    def test_multi_statement_raises_programming_error(self):
        from repro.core.errors import ProgrammingError
        with pytest.raises(ProgrammingError) as excinfo:
            parse_statement("SELECT 1; SELECT 2")
        assert "execute_script" in str(excinfo.value)

    def test_trailing_semicolons_still_allowed(self):
        statement = parse_statement("SELECT 1;;")
        assert isinstance(statement, ast.Select)

    def test_script_rejects_placeholders(self):
        from repro.core.errors import ProgrammingError
        with pytest.raises(ProgrammingError):
            parse_script("INSERT INTO t VALUES (?);")
