"""End-to-end tests of plain SQL query execution through the engine."""

from __future__ import annotations

import pytest

from repro import Database
from repro.core.errors import ExecutionError, PlanningError


class TestBasicSelect:
    def test_select_star(self, simple_db):
        result = simple_db.query("SELECT * FROM samples")
        assert result.columns == ["id", "name", "score", "category"]
        assert len(result) == 5

    def test_projection_and_where(self, simple_db):
        result = simple_db.query("SELECT name FROM samples WHERE score > 2")
        assert sorted(v[0] for v in result.values()) == ["delta", "epsilon", "gamma"]

    def test_expression_projection_with_alias(self, simple_db):
        result = simple_db.query("SELECT name, score * 2 AS doubled FROM samples WHERE id = 1")
        assert result.columns == ["name", "doubled"]
        assert result.values()[0] == ("alpha", 1.0)

    def test_where_with_like_in_between(self, simple_db):
        like = simple_db.query("SELECT id FROM samples WHERE name LIKE '%a'")
        assert {v[0] for v in like.values()} == {1, 2, 3, 4}
        inlist = simple_db.query("SELECT id FROM samples WHERE id IN (1, 3, 99)")
        assert {v[0] for v in inlist.values()} == {1, 3}
        between = simple_db.query("SELECT id FROM samples WHERE score BETWEEN 1 AND 3")
        assert {v[0] for v in between.values()} == {2, 3}

    def test_is_null_handling(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, NULL)")
        db.execute("INSERT INTO t VALUES (2, 'x')")
        assert db.query("SELECT a FROM t WHERE b IS NULL").values() == [(1,)]
        assert db.query("SELECT a FROM t WHERE b IS NOT NULL").values() == [(2,)]
        # NULL comparisons are unknown, hence filtered out
        assert db.query("SELECT a FROM t WHERE b = 'x' OR b <> 'x'").values() == [(2,)]

    def test_order_by_limit_offset(self, simple_db):
        result = simple_db.query(
            "SELECT name FROM samples ORDER BY score DESC LIMIT 2 OFFSET 1"
        )
        assert [v[0] for v in result.values()] == ["delta", "gamma"]

    def test_distinct(self, simple_db):
        result = simple_db.query("SELECT DISTINCT category FROM samples")
        assert sorted(v[0] for v in result.values()) == ["control", "treated"]

    def test_select_without_from(self, db):
        result = db.query("SELECT 1 + 2 AS three, UPPER('abc') AS up")
        assert result.values() == [(3, "ABC")]

    def test_scalar_functions(self, simple_db):
        result = simple_db.query(
            "SELECT LENGTH(name), SUBSTR(name, 1, 3) FROM samples WHERE id = 2"
        )
        assert result.values() == [(4, "bet")]

    def test_division_by_zero(self, simple_db):
        with pytest.raises(ExecutionError):
            simple_db.query("SELECT score / 0 FROM samples")

    def test_unknown_column_raises(self, simple_db):
        with pytest.raises(PlanningError):
            simple_db.query("SELECT missing FROM samples")


class TestJoins:
    @pytest.fixture
    def join_db(self, db):
        db.execute("CREATE TABLE gene (gid TEXT PRIMARY KEY, name TEXT)")
        db.execute("CREATE TABLE protein (pid TEXT PRIMARY KEY, gid TEXT, func TEXT)")
        db.execute("INSERT INTO gene VALUES ('g1', 'mraW'), ('g2', 'ftsI'), ('g3', 'orphan')")
        db.execute("INSERT INTO protein VALUES ('p1', 'g1', 'methylase'), "
                   "('p2', 'g2', 'wall'), ('p3', 'g2', 'other')")
        return db

    def test_inner_join(self, join_db):
        result = join_db.query(
            "SELECT g.name, p.func FROM gene g JOIN protein p ON g.gid = p.gid"
        )
        assert len(result) == 3
        assert ("ftsI", "wall") in result.values()

    def test_left_join_pads_missing(self, join_db):
        result = join_db.query(
            "SELECT g.name, p.func FROM gene g LEFT JOIN protein p ON g.gid = p.gid"
        )
        assert ("orphan", None) in result.values()
        assert len(result) == 4

    def test_implicit_join_with_where(self, join_db):
        result = join_db.query(
            "SELECT g.name, p.func FROM gene g, protein p "
            "WHERE g.gid = p.gid AND p.func = 'methylase'"
        )
        assert result.values() == [("mraW", "methylase")]

    def test_self_join_with_aliases(self, join_db):
        result = join_db.query(
            "SELECT a.gid, b.gid FROM gene a, gene b WHERE a.gid < b.gid"
        )
        assert len(result) == 3


class TestAggregation:
    def test_global_aggregates(self, simple_db):
        result = simple_db.query(
            "SELECT COUNT(*), SUM(score), MIN(score), MAX(score), AVG(score) FROM samples"
        )
        count, total, low, high, mean = result.values()[0]
        assert count == 5
        assert total == pytest.approx(12.5)
        assert (low, high) == (0.5, 4.5)
        assert mean == pytest.approx(2.5)

    def test_group_by_with_having(self, simple_db):
        result = simple_db.query(
            "SELECT category, COUNT(*) AS n, AVG(score) AS mean FROM samples "
            "GROUP BY category HAVING COUNT(*) >= 3"
        )
        assert result.values() == [("treated", 3, pytest.approx(3.5))]

    def test_count_distinct(self, simple_db):
        result = simple_db.query("SELECT COUNT(DISTINCT category) FROM samples")
        assert result.values() == [(2,)]

    def test_aggregate_ignores_nulls(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (NULL), (3)")
        result = db.query("SELECT COUNT(v), SUM(v), AVG(v) FROM t")
        assert result.values() == [(2, 4, 2.0)]

    def test_group_by_ordering_of_output(self, simple_db):
        result = simple_db.query(
            "SELECT category, COUNT(*) FROM samples GROUP BY category ORDER BY category"
        )
        assert [v[0] for v in result.values()] == ["control", "treated"]

    def test_having_without_group_by_rejected(self, simple_db):
        with pytest.raises(PlanningError):
            simple_db.query("SELECT name FROM samples HAVING name = 'alpha'")


class TestSetOperations:
    @pytest.fixture
    def two_tables(self, db):
        db.execute("CREATE TABLE a (v INTEGER)")
        db.execute("CREATE TABLE b (v INTEGER)")
        db.execute("INSERT INTO a VALUES (1), (2), (3), (3)")
        db.execute("INSERT INTO b VALUES (2), (3), (4)")
        return db

    def test_union_removes_duplicates(self, two_tables):
        result = two_tables.query("SELECT v FROM a UNION SELECT v FROM b")
        assert sorted(v[0] for v in result.values()) == [1, 2, 3, 4]

    def test_union_all_keeps_duplicates(self, two_tables):
        result = two_tables.query("SELECT v FROM a UNION ALL SELECT v FROM b")
        assert len(result) == 7

    def test_intersect(self, two_tables):
        result = two_tables.query("SELECT v FROM a INTERSECT SELECT v FROM b")
        assert sorted(v[0] for v in result.values()) == [2, 3]

    def test_except(self, two_tables):
        result = two_tables.query("SELECT v FROM a EXCEPT SELECT v FROM b")
        assert sorted(v[0] for v in result.values()) == [1]

    def test_arity_mismatch_rejected(self, two_tables):
        with pytest.raises(ExecutionError):
            two_tables.query("SELECT v FROM a UNION SELECT v, v FROM b")
