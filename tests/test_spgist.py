"""Tests for the SP-GiST framework and its trie / kd-tree / quadtree modules."""

from __future__ import annotations

import random
import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import IndexError_
from repro.index.spgist import (
    BoxQuery,
    EqualityQuery,
    KdTreeModule,
    PrefixQuery,
    QuadtreeModule,
    SpGistIndex,
    TrieModule,
)
from repro.workloads import structure_points


def build_trie(strings, leaf_capacity=4):
    index = SpGistIndex(TrieModule(), leaf_capacity=leaf_capacity)
    for position, value in enumerate(strings):
        index.insert(value, position)
    return index


class TestTrie:
    def setup_method(self):
        self.ids = [f"JW{i:04d}" for i in range(300)]
        self.trie = build_trie(self.ids)

    def test_exact_match(self):
        assert self.trie.search_equal("JW0123") == [123]
        assert self.trie.search_equal("JW9999") == []

    def test_prefix_search(self):
        matches = {key for key, _ in self.trie.search_prefix("JW01")}
        assert matches == {f"JW01{i:02d}" for i in range(100)}

    def test_regex_search(self):
        matches = {key for key, _ in self.trie.search_regex(r"JW00[0-2]\d")}
        expected = {s for s in self.ids if re.fullmatch(r"JW00[0-2]\d", s)}
        assert matches == expected

    def test_substring_search(self):
        matches = {key for key, _ in self.trie.search_substring("025")}
        expected = {s for s in self.ids if "025" in s}
        assert matches == expected

    def test_duplicates_and_shared_prefixes(self):
        trie = build_trie(["AAA", "AAA", "AAB", "AA", "A", ""])
        assert sorted(trie.search_equal("AAA")) == [0, 1]
        assert trie.search_equal("") == [5]
        assert len(trie.search_prefix("AA")) == 4

    def test_box_query_unsupported(self):
        with pytest.raises(IndexError_):
            self.trie.search(BoxQuery((0,), (1,)))

    def test_node_accesses_scale_sublinearly_for_exact_match(self):
        # An exact-match probe should touch far fewer nodes than there are
        # indexed entries (a heap scan would touch one record per entry).
        reads_before = self.trie.stats.node_reads
        self.trie.search_equal("JW0042")
        assert self.trie.stats.node_reads - reads_before < len(self.trie) / 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(alphabet="ACGT", min_size=0, max_size=12),
                    min_size=1, max_size=80),
           st.text(alphabet="ACGT", min_size=0, max_size=4))
    def test_prefix_matches_reference(self, strings, prefix):
        trie = build_trie(strings)
        expected = sorted(i for i, s in enumerate(strings) if s.startswith(prefix))
        got = sorted(v for _, v in trie.search_prefix(prefix))
        assert got == expected


class TestPointModules:
    def setup_method(self):
        self.points = structure_points(400, seed=3)
        self.kd = SpGistIndex(KdTreeModule(2), leaf_capacity=8)
        self.quad = SpGistIndex(QuadtreeModule(), leaf_capacity=8)
        for index, point in enumerate(self.points):
            self.kd.insert(point, index)
            self.quad.insert(point, index)

    def _brute_box(self, low, high):
        return sorted(
            index for index, (x, y) in enumerate(self.points)
            if low[0] <= x <= high[0] and low[1] <= y <= high[1]
        )

    def test_equality(self):
        target = self.points[37]
        assert 37 in self.kd.search_equal(target)
        assert 37 in self.quad.search_equal(target)

    def test_box_search_matches_brute_force(self):
        low, high = (20.0, 10.0), (70.0, 80.0)
        expected = self._brute_box(low, high)
        assert sorted(v for _, v in self.kd.search_box(low, high)) == expected
        assert sorted(v for _, v in self.quad.search_box(low, high)) == expected

    def test_empty_box(self):
        assert self.kd.search_box((-10, -10), (-5, -5)) == []

    def test_knn_matches_brute_force(self):
        target = (50.0, 50.0)
        brute = sorted(
            (((x - target[0]) ** 2 + (y - target[1]) ** 2) ** 0.5, index)
            for index, (x, y) in enumerate(self.points)
        )[:5]
        for index_structure in (self.kd, self.quad):
            knn = index_structure.knn(target, 5)
            assert [value for _, _, value in knn] == [index for _, index in brute]

    def test_box_search_prunes_nodes(self):
        reads_before = self.kd.stats.node_reads
        self.kd.search_box((0.0, 0.0), (5.0, 5.0))
        small_box_reads = self.kd.stats.node_reads - reads_before
        reads_before = self.kd.stats.node_reads
        self.kd.search_box((-1000.0, -1000.0), (1000.0, 1000.0))
        full_box_reads = self.kd.stats.node_reads - reads_before
        assert small_box_reads < full_box_reads

    def test_kdtree_dimension_validation(self):
        with pytest.raises(IndexError_):
            KdTreeModule(0)

    def test_leaf_capacity_validation(self):
        with pytest.raises(IndexError_):
            SpGistIndex(TrieModule(), leaf_capacity=1)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                              st.floats(0, 100, allow_nan=False)),
                    min_size=1, max_size=100))
    def test_kd_box_property(self, points):
        index = SpGistIndex(KdTreeModule(2), leaf_capacity=4)
        for position, point in enumerate(points):
            index.insert(point, position)
        low, high = (25.0, 25.0), (75.0, 75.0)
        expected = sorted(i for i, (x, y) in enumerate(points)
                          if 25 <= x <= 75 and 25 <= y <= 75)
        assert sorted(v for _, v in index.search_box(low, high)) == expected


class TestExtensibility:
    def test_custom_module_plugs_in(self):
        """A user-defined module (even-vs-odd integers) works without engine changes."""
        from repro.index.spgist.framework import Query, SpGistModule

        class ParityModule(SpGistModule):
            name = "parity"

            def choose(self, key, level, state):
                return key % 2

            def picksplit(self, keys, level):
                return None

            def consistent(self, state, label, level, query):
                if isinstance(query, EqualityQuery):
                    return label == query.key % 2
                return True

            def leaf_consistent(self, key, query):
                return isinstance(query, EqualityQuery) and key == query.key

        index = SpGistIndex(ParityModule(), leaf_capacity=4)
        for value in range(64):
            index.insert(value, value)
        assert index.search_equal(42) == [42]
        assert index.search_equal(999) == []
