"""Tests for the annotation manager: DDL, adding, archiving, propagation index."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.annotations.manager import AnnotationManager
from repro.annotations.model import CATEGORY_COMMENT, CATEGORY_PROVENANCE
from repro.annotations.storage import SCHEME_NAIVE
from repro.catalog.catalog import SystemCatalog
from repro.catalog.schema import Column, TableSchema
from repro.core.errors import AnnotationError
from repro.types.datatypes import DataType


@pytest.fixture
def setup():
    catalog = SystemCatalog()
    table = catalog.create_table(TableSchema("Gene", [
        Column("GID", DataType.TEXT, primary_key=True),
        Column("GName", DataType.TEXT),
        Column("GSequence", DataType.SEQUENCE),
    ]))
    for index in range(6):
        table.insert_row({"GID": f"JW{index:04d}", "GName": f"g{index}",
                          "GSequence": "ATG" * (index + 1)})
    manager = AnnotationManager(catalog)
    return catalog, table, manager


class TestAnnotationTableDdl:
    def test_create_and_drop(self, setup):
        catalog, _, manager = setup
        manager.create_annotation_table("Gene", "GAnnotation")
        assert manager.has("Gene", "GAnnotation")
        assert catalog.has_table("__ann_gene_gannotation")
        manager.drop_annotation_table("Gene", "GAnnotation")
        assert not manager.has("Gene", "GAnnotation")
        assert not catalog.has_table("__ann_gene_gannotation")

    def test_duplicate_rejected(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "A")
        with pytest.raises(AnnotationError):
            manager.create_annotation_table("Gene", "a")

    def test_unknown_user_table_rejected(self, setup):
        _, _, manager = setup
        with pytest.raises(AnnotationError):
            manager.create_annotation_table("Nope", "A")

    def test_multiple_annotation_tables_per_relation(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "comments")
        manager.create_annotation_table("Gene", "provenance",
                                        category=CATEGORY_PROVENANCE)
        assert [t.name for t in manager.tables_for("Gene")] == ["comments", "provenance"]

    def test_resolve_qualified_and_bare_names(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "GAnnotation")
        assert manager.resolve("Gene.GAnnotation").name == "GAnnotation"
        assert manager.resolve("GAnnotation").name == "GAnnotation"
        with pytest.raises(AnnotationError):
            manager.resolve("Missing")


class TestAddAndPropagate:
    def test_add_cell_granularity(self, setup):
        _, table, manager = setup
        manager.create_annotation_table("Gene", "A")
        cells = {(0, 2)}
        added = manager.add_annotation(["Gene.A"], "methyltransferase", cells,
                                       curator="alice")
        assert len(added) == 1
        index = manager.propagation_index("Gene", ["A"])
        assert {a.curator for a in index.lookup(0, 2)} == {"alice"}
        assert index.lookup(0, 0) == set()

    def test_add_wraps_plain_text_in_xml(self, setup):
        _, _, manager = setup
        table = manager.create_annotation_table("Gene", "A")
        annotation = table.add("plain comment", {(0, 0)})
        assert annotation.body.startswith("<Annotation>")

    def test_add_to_multiple_annotation_tables(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "A")
        manager.create_annotation_table("Gene", "B")
        added = manager.add_annotation(["Gene.A", "Gene.B"], "x", {(1, 1)})
        assert len(added) == 2
        assert {a.annotation_table for a in added} == {"Gene.A", "Gene.B"}

    def test_empty_cell_set_rejected(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "A")
        with pytest.raises(AnnotationError):
            manager.add_annotation(["Gene.A"], "x", set())

    def test_cells_for_granularities(self, setup):
        _, table, manager = setup
        whole_table = manager.cells_for("Gene")
        assert len(whole_table) == len(table) * 3
        one_column = manager.cells_for("Gene", columns=["GSequence"])
        assert len(one_column) == len(table)
        one_tuple = manager.cells_for("Gene", tuple_ids=[2])
        assert len(one_tuple) == 3
        block = manager.cells_for("Gene", tuple_ids=[0, 1], columns=["GID", "GName"])
        assert len(block) == 4

    def test_propagation_index_selects_requested_tables_only(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "A")
        manager.create_annotation_table("Gene", "B")
        manager.add_annotation(["Gene.A"], "from A", {(0, 0)})
        manager.add_annotation(["Gene.B"], "from B", {(0, 0)})
        only_a = manager.propagation_index("Gene", ["A"])
        both = manager.propagation_index("Gene")
        assert len(only_a.lookup(0, 0)) == 1
        assert len(both.lookup(0, 0)) == 2

    def test_propagation_index_category_filter(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "A")
        manager.create_annotation_table("Gene", "P", category=CATEGORY_PROVENANCE)
        manager.add_annotation(["Gene.A"], "comment", {(0, 0)})
        manager.add_annotation(["Gene.P"], "lineage", {(0, 0)},
                               category=CATEGORY_PROVENANCE)
        provenance_only = manager.propagation_index(
            "Gene", categories={CATEGORY_PROVENANCE})
        assert {a.category for a in provenance_only.lookup(0, 0)} == {CATEGORY_PROVENANCE}

    def test_naive_scheme_tables_can_be_created(self, setup):
        _, _, manager = setup
        table = manager.create_annotation_table("Gene", "N", scheme=SCHEME_NAIVE)
        assert table.scheme == SCHEME_NAIVE
        manager.add_annotation(["Gene.N"], "x", {(0, 0), (1, 0)})
        assert table.linkage_record_count() == 2


class TestArchiveRestore:
    def test_archive_hides_from_propagation(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "A")
        manager.add_annotation(["Gene.A"], "old claim", {(0, 0)})
        archived = manager.archive(["Gene.A"], {(0, 0)})
        assert len(archived) == 1
        assert manager.propagation_index("Gene", ["A"]).lookup(0, 0) == set()
        # but still retrievable when archived annotations are requested
        table = manager.get("Gene", "A")
        assert table.annotation_count(include_archived=True) == 1
        assert table.annotations(include_archived=True)[0].archived

    def test_restore_brings_annotation_back(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "A")
        manager.add_annotation(["Gene.A"], "claim", {(0, 0)})
        manager.archive(["Gene.A"], {(0, 0)})
        restored = manager.restore(["Gene.A"], {(0, 0)})
        assert len(restored) == 1
        assert len(manager.propagation_index("Gene", ["A"]).lookup(0, 0)) == 1

    def test_archive_respects_cell_intersection(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "A")
        manager.add_annotation(["Gene.A"], "on tuple 0", {(0, 0)})
        manager.add_annotation(["Gene.A"], "on tuple 5", {(5, 0)})
        archived = manager.archive(["Gene.A"], {(5, 0)})
        assert len(archived) == 1
        assert len(manager.propagation_index("Gene", ["A"]).lookup(0, 0)) == 1

    def test_archive_respects_time_range(self, setup):
        _, _, manager = setup
        table = manager.create_annotation_table("Gene", "A")
        old_time = datetime(2007, 1, 1)
        new_time = datetime(2026, 1, 1)
        table.add("old", {(0, 0)}, created_at=old_time)
        table.add("new", {(0, 0)}, created_at=new_time)
        archived = manager.archive(["Gene.A"], {(0, 0)},
                                   time_from=datetime(2006, 1, 1),
                                   time_to=datetime(2008, 1, 1))
        assert len(archived) == 1
        remaining = manager.propagation_index("Gene", ["A"]).lookup(0, 0)
        assert {a.created_at for a in remaining} == {new_time}

    def test_archive_is_idempotent(self, setup):
        _, _, manager = setup
        manager.create_annotation_table("Gene", "A")
        manager.add_annotation(["Gene.A"], "claim", {(0, 0)})
        manager.archive(["Gene.A"], {(0, 0)})
        assert manager.archive(["Gene.A"], {(0, 0)}) == []
