"""Fault injection against the network front end.

Three failure families, each with a concrete invariant:

* **Client death** — a connection that vanishes mid-stream or mid-transaction
  must leak nothing: its open results are freed, its transaction rolls back,
  and the write lock is released for the next session.
* **Server crash between WAL append and ack** — driven through the WAL's
  one-shot ``fail_point`` hooks.  A commit the client never saw acknowledged
  may be lost or kept (redo-only logs can replay complete frames), but a
  commit that WAS acknowledged must survive every crash point: zero
  acked-commit loss.
* **Admission control** — overload rejections (``server_busy``) and bounded
  lock waits (``lock_timeout``) surface as the documented retryable errors
  and leave the session usable.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

import repro
import repro.client
from repro.core.errors import InterfaceError, OperationalError
from repro.server import DatabaseServer, ServerConfig, protocol, start_server
from repro.storage.wal import WAL_CRASH_POINTS


def ids(conn):
    cur = conn.cursor()
    cur.execute("SELECT id FROM t ORDER BY id")
    return [row[0] for row in cur.fetchall()]


@pytest.fixture
def server():
    handle = start_server()
    yield handle
    handle.shutdown()


@pytest.fixture
def seeded(server):
    conn = repro.client.connect(port=server.port)
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    conn.execute("INSERT INTO t VALUES (1, 'one')")
    yield server, conn
    conn.close()


# ---------------------------------------------------------------------------
# Client disconnects
# ---------------------------------------------------------------------------
class TestClientDeath:
    def kill(self, conn):
        """Abrupt transport death: no ``close`` op, just a dropped socket."""
        conn._sock.close()

    def wait_for_cleanup(self, server, expected_active):
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if server.stats.active_connections == expected_active:
                return
            time.sleep(0.01)
        raise AssertionError(
            f"server still reports {server.stats.active_connections} "
            f"active connections, expected {expected_active}")

    def test_disconnect_mid_stream_frees_the_result(self, seeded):
        server, admin = seeded
        admin.cursor().executemany("INSERT INTO t VALUES (?, ?)",
                                   [(i, "x") for i in range(100, 700)])
        victim = repro.client.connect(port=server.port)
        cur = victim.execute("SELECT id FROM t ORDER BY id")
        assert cur.fetchone() is not None  # stream is live
        self.kill(victim)
        self.wait_for_cleanup(server, expected_active=1)
        # The dead session's result was freed server-side and the database
        # keeps serving: a fresh session can run the same scan to completion.
        fresh = repro.client.connect(port=server.port)
        assert len(ids(fresh)) == 601
        fresh.close()

    def test_disconnect_mid_transaction_rolls_back(self, seeded):
        server, admin = seeded
        victim = repro.client.connect(port=server.port)
        cur = victim.cursor()
        cur.execute("BEGIN")
        cur.execute("INSERT INTO t VALUES (2, 'doomed')")
        cur.execute("SELECT id FROM t ORDER BY id")
        assert [row[0] for row in cur.fetchall()] == [1, 2]  # own write
        self.kill(victim)
        self.wait_for_cleanup(server, expected_active=1)
        # Rollback happened and the write lock is free: the survivor both
        # sees the pre-crash state and can immediately write.
        assert ids(admin) == [1]
        admin.execute("INSERT INTO t VALUES (3, 'after')")
        assert ids(admin) == [1, 3]

    def test_disconnect_between_requests_is_clean(self, seeded):
        server, admin = seeded
        victim = repro.client.connect(port=server.port)
        assert victim.execute("SELECT 1").fetchone()[0] == 1
        self.kill(victim)
        self.wait_for_cleanup(server, expected_active=1)
        assert ids(admin) == [1]

    def test_half_frame_then_disconnect(self, seeded):
        """A client dying mid-frame must not wedge the reader loop."""
        server, admin = seeded
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=5)
        frame = protocol.encode_frame({"op": "hello", "user": "admin"})
        sock.sendall(frame[: len(frame) // 2])
        sock.close()
        self.wait_for_cleanup(server, expected_active=1)
        admin.execute("INSERT INTO t VALUES (9, 'alive')")
        assert ids(admin) == [1, 9]


# ---------------------------------------------------------------------------
# Crashes between WAL append and commit ack
# ---------------------------------------------------------------------------
class TestWalCrash:
    def serve(self, path):
        db = repro.Database(path)
        server = DatabaseServer(db).start_in_thread()
        return db, server

    @pytest.mark.parametrize("crash_point", WAL_CRASH_POINTS)
    def test_acked_commits_survive_every_crash_point(self, tmp_path,
                                                     crash_point):
        path = str(tmp_path / "crash.db")
        db, server = self.serve(path)
        conn = repro.client.connect(port=server.port)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        # Two acked commits: one autocommit, one explicit.
        conn.execute("INSERT INTO t VALUES (1, 'acked')")
        cur = conn.cursor()
        cur.execute("BEGIN")
        cur.execute("INSERT INTO t VALUES (2, 'acked-txn')")
        conn.commit()

        # Arm the crash, then try a commit that will die before its ack.
        db.wal.fail_point = crash_point
        with pytest.raises(OperationalError):
            conn.execute("INSERT INTO t VALUES (3, 'unacked')")
            # The crash may also land on the implicit commit boundary of the
            # execute itself; either way no ack ever arrives.

        assert server.crashed is True
        server.shutdown()  # leaves the crashed database untouched

        recovered = repro.Database(path)
        try:
            survivors = [row[0] for row in recovered.connect().cursor()
                         .execute("SELECT id FROM t ORDER BY id").fetchall()]
            # Zero acked-commit loss, at every crash point.
            assert {1, 2} <= set(survivors)
            # The unacked commit may be replayed (complete frame on disk) or
            # dropped (torn frame) — both are legal; silent corruption is not.
            assert set(survivors) <= {1, 2, 3}
            if crash_point == "mid_append":
                assert survivors == [1, 2]  # torn frame must be discarded
        finally:
            recovered.close()

    def test_crash_during_explicit_commit_loses_nothing_acked(self, tmp_path):
        path = str(tmp_path / "crash2.db")
        db, server = self.serve(path)
        conn = repro.client.connect(port=server.port)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        conn.execute("INSERT INTO t VALUES (1, 'acked')")

        cur = conn.cursor()
        cur.execute("BEGIN")
        cur.execute("INSERT INTO t VALUES (2, 'in-flight')")
        db.wal.fail_point = "mid_append"
        with pytest.raises(OperationalError):
            conn.commit()
        assert server.crashed is True
        server.shutdown()

        recovered = repro.Database(path)
        try:
            survivors = [row[0] for row in recovered.connect().cursor()
                         .execute("SELECT id FROM t ORDER BY id").fetchall()]
            assert survivors == [1]  # acked kept, torn commit discarded
        finally:
            recovered.close()

    def test_crashed_server_stops_answering(self, tmp_path):
        path = str(tmp_path / "crash3.db")
        db, server = self.serve(path)
        conn = repro.client.connect(port=server.port)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.wal.fail_point = "after_append"
        with pytest.raises(OperationalError):
            conn.execute("INSERT INTO t VALUES (1)")
        # The dead connection is dead for good — not an error response.
        # (The transport failure also closes the client side, so either the
        # transport error or the closed-connection guard may fire.)
        with pytest.raises((OperationalError, InterfaceError)):
            conn.execute("SELECT 1")
        server.shutdown()
        repro.Database(path).close()  # recovery still runs cleanly


# ---------------------------------------------------------------------------
# Admission control and bounded lock waits
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_connection_limit_rejection_is_retryable(self):
        server = start_server(config=ServerConfig(max_connections=1))
        try:
            keeper = repro.client.connect(port=server.port)
            with pytest.raises(OperationalError) as excinfo:
                repro.client.connect(port=server.port)
            assert excinfo.value.code == "server_busy"
            assert excinfo.value.retryable is True
            keeper.close()
            # The slot frees on disconnect; the next attempt is admitted.
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    again = repro.client.connect(port=server.port)
                    break
                except OperationalError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.01)
            again.close()
            assert server.stats.connections_rejected >= 1
        finally:
            server.shutdown()

    def test_busy_and_lock_timeout_codes(self):
        """With one execution slot and a short lock budget: a writer stuck
        behind an open transaction times out as ``lock_timeout``, and while
        it occupies the slot any other engine op bounces as ``server_busy``.
        Both are retryable; the blocked session stays usable."""
        server = start_server(config=ServerConfig(
            max_inflight=1, worker_threads=1, lock_timeout_seconds=0.8))
        try:
            holder = repro.client.connect(port=server.port)
            holder.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            holder.cursor().execute("BEGIN")
            holder.cursor().execute("INSERT INTO t VALUES (1)")

            blocked = repro.client.connect(port=server.port)
            outcome = {}

            def blocked_write():
                try:
                    blocked.execute("INSERT INTO t VALUES (2)")
                    outcome["error"] = None
                except OperationalError as exc:
                    outcome["error"] = exc

            thread = threading.Thread(target=blocked_write)
            thread.start()
            time.sleep(0.2)  # the writer now owns the only slot, waiting

            bystander = repro.client.connect(port=server.port)
            with pytest.raises(OperationalError) as excinfo:
                bystander.execute("SELECT 1")
            assert excinfo.value.code == "server_busy"
            assert excinfo.value.retryable is True

            thread.join(timeout=10.0)
            exc = outcome["error"]
            assert exc is not None, "blocked write unexpectedly succeeded"
            assert exc.code == "lock_timeout"
            assert exc.retryable is True

            # The holder was never harmed: its transaction commits and the
            # rejected write succeeds on retry.
            holder.commit()
            blocked.execute("INSERT INTO t VALUES (2)")
            cur = blocked.execute("SELECT id FROM t ORDER BY id")
            assert [row[0] for row in cur.fetchall()] == [1, 2]
            for connection in (holder, blocked, bystander):
                connection.close()
        finally:
            server.shutdown()

    def test_rejection_does_no_work(self):
        server = start_server(config=ServerConfig(
            max_inflight=1, worker_threads=1, lock_timeout_seconds=0.5))
        try:
            holder = repro.client.connect(port=server.port)
            holder.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            holder.cursor().execute("BEGIN")
            holder.cursor().execute("INSERT INTO t VALUES (1)")

            victim = repro.client.connect(port=server.port)
            with pytest.raises(OperationalError) as excinfo:
                victim.execute("INSERT INTO t VALUES (2)")
            assert excinfo.value.code == "lock_timeout"

            holder.commit()
            cur = holder.execute("SELECT id FROM t ORDER BY id")
            # The timed-out insert left no trace.
            assert [row[0] for row in cur.fetchall()] == [1]
            holder.close()
            victim.close()
        finally:
            server.shutdown()
