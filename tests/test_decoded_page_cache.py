"""The buffer-pool-backed decoded-page cache.

Unit tests of the LRU structure itself, consistency tests for every
invalidation path (DML page-dirty, raw-page eviction, DDL drop/recreate,
schema-version bumps), the ``engine.last_cache`` observability window, and a
tracemalloc proof that the cache's memory footprint follows its page budget.
"""

from __future__ import annotations

import tracemalloc

from repro import Database
from repro.storage.buffer_pool import DecodedCacheView, DecodedPageCache


# ---------------------------------------------------------------------------
# DecodedPageCache unit tests
# ---------------------------------------------------------------------------
class TestDecodedPageCache:
    def test_capacity_zero_is_disabled(self):
        cache = DecodedPageCache()
        cache.put("t", 1, 0, True, [(1, (1,))])
        assert cache.get("t", 1, 0, True) is None
        assert len(cache) == 0
        # A disabled cache must not count misses either — reads that can
        # never hit would otherwise poison the hit ratio.
        assert cache.stats.misses == 0

    def test_round_trip_and_counters(self):
        cache = DecodedPageCache(capacity=4)
        rows = [(0, (1, "a"))]
        cache.put("t", 7, 3, True, rows)
        assert cache.get("t", 7, 3, True) is rows
        assert cache.stats.hits == 1
        assert cache.get("t", 8, 3, True) is None
        assert cache.stats.misses == 1

    def test_key_includes_schema_version_and_tuple_id_flag(self):
        cache = DecodedPageCache(capacity=8)
        cache.put("t", 1, 0, True, ["v0"])
        assert cache.get("t", 1, 1, True) is None   # version bump strands it
        assert cache.get("t", 1, 0, False) is None  # different decode shape
        assert cache.get("t", 1, 0, True) == ["v0"]

    def test_lru_eviction_order(self):
        cache = DecodedPageCache(capacity=2)
        cache.put("t", 1, 0, True, ["p1"])
        cache.put("t", 2, 0, True, ["p2"])
        cache.get("t", 1, 0, True)          # p1 is now most recent
        cache.put("t", 3, 0, True, ["p3"])  # evicts p2
        assert cache.get("t", 2, 0, True) is None
        assert cache.get("t", 1, 0, True) == ["p1"]
        assert cache.stats.evictions == 1

    def test_invalidate_page_drops_all_versions(self):
        cache = DecodedPageCache(capacity=8)
        cache.put("t", 1, 0, True, ["old"])
        cache.put("t", 1, 1, True, ["new"])
        cache.put("t", 2, 1, True, ["other"])
        cache.invalidate_page(1)
        assert cache.get("t", 1, 0, True) is None
        assert cache.get("t", 1, 1, True) is None
        assert cache.get("t", 2, 1, True) == ["other"]
        assert cache.stats.invalidations == 2

    def test_invalidate_table(self):
        cache = DecodedPageCache(capacity=8)
        cache.put("a", 1, 0, True, ["a1"])
        cache.put("b", 2, 0, True, ["b2"])
        cache.invalidate_table("a")
        assert cache.get("a", 1, 0, True) is None
        assert cache.get("b", 2, 0, True) == ["b2"]

    def test_set_capacity_shrinks(self):
        cache = DecodedPageCache(capacity=8)
        for page in range(8):
            cache.put("t", page, 0, True, [page])
        cache.set_capacity(3)
        assert len(cache) == 3
        # The survivors are the most recently inserted pages.
        assert cache.get("t", 7, 0, True) == [7]

    def test_view_reports_deltas_only(self):
        cache = DecodedPageCache(capacity=4)
        cache.put("t", 1, 0, True, ["x"])
        cache.get("t", 1, 0, True)
        view = DecodedCacheView(cache.stats)
        assert view.as_dict() == {"hits": 0, "misses": 0, "evictions": 0,
                                  "invalidations": 0}
        cache.get("t", 1, 0, True)
        cache.get("t", 9, 0, True)
        assert view.hits == 1 and view.misses == 1
        assert view.hit_ratio == 0.5


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------
def build_db(rows: int = 4000, pool_size: int = 256) -> Database:
    db = Database(pool_size=pool_size)
    db.execute("CREATE TABLE t (id INTEGER, v FLOAT, s TEXT)")
    for i in range(rows):
        db.execute(f"INSERT INTO t VALUES ({i}, {i * 0.5}, 'name{i % 100}')")
    return db


QUERY = "SELECT id, v FROM t WHERE v >= 50.0"


class TestEngineIntegration:
    def test_disabled_by_default(self):
        db = build_db(rows=500)
        db.query(QUERY)
        db.query(QUERY)
        assert db.engine.last_cache.as_dict() == {
            "hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}
        assert len(db.catalog.pool.decoded) == 0

    def test_warm_rescan_hits_and_matches_uncached_rows(self):
        db = build_db()
        baseline = [tuple(r.values) for r in db.query(QUERY).rows]
        db.config.decoded_page_cache_pages = 256
        first = [tuple(r.values) for r in db.query(QUERY).rows]
        assert db.engine.last_cache.misses > 0
        assert db.engine.last_cache.hits == 0
        second = [tuple(r.values) for r in db.query(QUERY).rows]
        assert first == second == baseline
        assert db.engine.last_cache.misses == 0
        assert db.engine.last_cache.hits > 0
        assert db.engine.last_cache.hit_ratio == 1.0

    def test_dml_invalidates_only_touched_pages(self):
        db = build_db()
        db.config.decoded_page_cache_pages = 256
        db.query(QUERY)
        cached_before = len(db.catalog.pool.decoded)
        # UPDATE dirties the page holding row 0 (and no others).
        db.execute("UPDATE t SET v = -1.0 WHERE id = 0")
        assert len(db.catalog.pool.decoded) < cached_before
        rows = db.query("SELECT v FROM t WHERE id = 0").rows
        assert rows[0].values[0] == -1.0

    def test_insert_update_delete_reflected_through_warm_cache(self):
        db = build_db(rows=1000)
        db.config.decoded_page_cache_pages = 256
        count = lambda: db.query("SELECT COUNT(*) FROM t").rows[0].values[0]
        assert count() == 1000
        db.execute("INSERT INTO t VALUES (5000, 1.0, 'new')")
        assert count() == 1001
        db.execute("DELETE FROM t WHERE id < 10")
        assert count() == 991
        db.execute("UPDATE t SET s = 'renamed' WHERE id = 5000")
        renamed = db.query("SELECT s FROM t WHERE id = 5000").rows
        assert renamed[0].values[0] == "renamed"

    def test_drop_and_recreate_table_never_serves_stale_rows(self):
        db = build_db(rows=300)
        db.config.decoded_page_cache_pages = 256
        db.query("SELECT * FROM t")
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (42)")
        rows = [tuple(r.values) for r in db.query("SELECT * FROM t").rows]
        assert rows == [(42,)]

    def test_schema_version_bump_strands_old_entries(self):
        db = build_db(rows=300)
        db.config.decoded_page_cache_pages = 256
        db.query(QUERY)
        assert len(db.catalog.pool.decoded) > 0
        db.catalog.bump_schema_version()
        db.query(QUERY)
        # The re-scan missed (version is part of the key) and repopulated.
        assert db.engine.last_cache.misses > 0 and db.engine.last_cache.hits == 0
        db.query(QUERY)
        assert db.engine.last_cache.hits > 0

    def test_raw_page_eviction_invalidates_decoded_entries(self):
        # Table larger than the buffer pool: the scan wraps the pool and
        # every raw-page eviction must drop its decoded entry, so the
        # decoded cache never outlives the page bytes it mirrors.
        db = build_db(rows=4000, pool_size=16)
        db.config.decoded_page_cache_pages = 10_000
        baseline = [tuple(r.values) for r in db.query(QUERY).rows]
        assert db.engine.last_cache.invalidations > 0
        decoded = db.catalog.pool.decoded
        frame_ids = set(db.catalog.pool._frames)
        assert {key[1] for key in decoded._entries} <= frame_ids
        assert [tuple(r.values) for r in db.query(QUERY).rows] == baseline

    def test_pool_clear_clears_decoded_cache(self):
        db = build_db(rows=300)
        db.config.decoded_page_cache_pages = 256
        db.query(QUERY)
        assert len(db.catalog.pool.decoded) > 0
        db.catalog.pool.clear()
        assert len(db.catalog.pool.decoded) == 0

    def test_capacity_knob_resyncs_each_query(self):
        db = build_db(rows=1000)
        db.config.decoded_page_cache_pages = 256
        db.query(QUERY)
        assert len(db.catalog.pool.decoded) > 0
        db.config.decoded_page_cache_pages = 0
        db.query(QUERY)
        assert len(db.catalog.pool.decoded) == 0


# ---------------------------------------------------------------------------
# Memory budget proof
# ---------------------------------------------------------------------------
class TestMemoryBudget:
    def test_cache_respects_page_budget(self):
        """tracemalloc proof: a 4-page cache holds a bounded footprint while
        an uncapped cache grows with the table; entry count never exceeds
        the configured budget."""
        db = build_db(rows=4000)
        pages = db.catalog.table("t").num_pages()
        assert pages > 20

        def peak_with(capacity):
            db.config.decoded_page_cache_pages = capacity
            db.catalog.pool.decoded.clear()
            tracemalloc.start()
            db.query(QUERY)
            db.query(QUERY)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        small = peak_with(4)
        assert len(db.catalog.pool.decoded) <= 4
        large = peak_with(10_000)
        assert len(db.catalog.pool.decoded) == pages
        # The uncapped run keeps every decoded page alive; the 4-page run
        # must stay well below it.
        assert small < large * 0.7
