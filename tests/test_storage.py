"""Tests for the storage engine: pages, disk managers, buffer pool, heap files."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PageFullError, StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import FileDiskManager, InMemoryDiskManager, open_disk_manager
from repro.storage.heap_file import HeapFile
from repro.storage.page import DEFAULT_PAGE_SIZE, Page, RecordId
from repro.types.values import serialize_row


class TestPage:
    def test_insert_and_read(self):
        page = Page(0)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_slots_are_stable_after_delete(self):
        page = Page(0)
        first = page.insert(b"one")
        second = page.insert(b"two")
        page.delete(first)
        assert page.read(second) == b"two"
        assert not page.is_live(first)

    def test_read_deleted_slot_raises(self):
        page = Page(0)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.read(slot)

    def test_page_full(self):
        page = Page(0, page_size=256)
        with pytest.raises(PageFullError):
            for _ in range(100):
                page.insert(b"x" * 40)

    def test_record_larger_than_page_raises(self):
        page = Page(0, page_size=256)
        with pytest.raises(StorageError):
            page.insert(b"y" * 300)

    def test_update_in_place(self):
        page = Page(0)
        slot = page.insert(b"short")
        assert page.update(slot, b"longer record") is True
        assert page.read(slot) == b"longer record"

    def test_update_that_does_not_fit_reports_false(self):
        page = Page(0, page_size=128)
        slot = page.insert(b"a" * 60)
        assert page.update(slot, b"b" * 120) is False

    def test_serialization_roundtrip(self):
        page = Page(7, page_size=512)
        slots = [page.insert(bytes([65 + i]) * (i + 1)) for i in range(5)]
        page.delete(slots[2])
        image = page.to_bytes()
        assert len(image) == 512
        restored = Page.from_bytes(image, 512)
        assert restored.page_id == 7
        assert [s for s, _ in restored.records()] == [0, 1, 3, 4]
        assert restored.read(3) == page.read(3)

    def test_bad_page_image_size(self):
        with pytest.raises(StorageError):
            Page.from_bytes(b"123", 4096)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=30))
    def test_roundtrip_property(self, records):
        page = Page(1)
        kept = []
        for record in records:
            try:
                kept.append((page.insert(record), record))
            except PageFullError:
                break
        restored = Page.from_bytes(page.to_bytes())
        for slot, record in kept:
            assert restored.read(slot) == record


class TestRecordId:
    def test_equality_and_hash(self):
        assert RecordId(1, 2) == RecordId(1, 2)
        assert hash(RecordId(1, 2)) == hash(RecordId(1, 2))
        assert RecordId(1, 2) != RecordId(2, 1)

    def test_ordering(self):
        assert RecordId(0, 5) < RecordId(1, 0)


class TestDiskManagers:
    def test_in_memory_allocation_and_io_accounting(self):
        disk = InMemoryDiskManager()
        page_id = disk.allocate_page()
        page = disk.read_page(page_id)
        page.insert(b"payload")
        disk.write_page(page)
        assert disk.stats.page_reads == 1
        assert disk.stats.page_writes == 1
        assert disk.stats.pages_allocated == 1

    def test_reading_unallocated_page_raises(self):
        disk = InMemoryDiskManager()
        with pytest.raises(StorageError):
            disk.read_page(3)

    def test_stats_diff(self):
        disk = InMemoryDiskManager()
        disk.allocate_page()
        before = disk.stats.snapshot()
        disk.read_page(0)
        delta = disk.stats.diff(before)
        assert delta.page_reads == 1 and delta.page_writes == 0

    def test_file_disk_manager_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "db.pages")
        disk = FileDiskManager(path)
        page_id = disk.allocate_page()
        page = disk.read_page(page_id)
        slot = page.insert(serialize_row((1, "x")))
        disk.write_page(page)
        disk.close()

        reopened = FileDiskManager(path)
        assert reopened.num_pages == 1
        assert reopened.read_page(page_id).read(slot) == serialize_row((1, "x"))
        reopened.close()

    def test_open_disk_manager_selects_backend(self, tmp_path):
        assert isinstance(open_disk_manager(None), InMemoryDiskManager)
        assert isinstance(open_disk_manager(":memory:"), InMemoryDiskManager)
        file_backed = open_disk_manager(os.path.join(tmp_path, "f.db"))
        assert isinstance(file_backed, FileDiskManager)
        file_backed.close()


class TestBufferPool:
    def test_hits_do_not_touch_disk(self):
        disk = InMemoryDiskManager()
        pool = BufferPool(disk, capacity=4)
        page = pool.new_page()
        reads_before = disk.stats.page_reads
        for _ in range(10):
            pool.fetch_page(page.page_id)
        assert disk.stats.page_reads == reads_before
        assert pool.stats.hits == 10

    def test_eviction_writes_back_dirty_pages(self):
        disk = InMemoryDiskManager()
        pool = BufferPool(disk, capacity=2)
        first = pool.new_page()
        first.insert(b"dirty data")
        pool.mark_dirty(first)
        # Allocating two more pages evicts the first (LRU) and writes it back.
        pool.new_page()
        pool.new_page()
        assert pool.stats.evictions >= 1
        fresh = disk.read_page(first.page_id)
        assert fresh.read(0) == b"dirty data"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(InMemoryDiskManager(), capacity=0)

    def test_clear_forces_cold_cache(self):
        disk = InMemoryDiskManager()
        pool = BufferPool(disk, capacity=8)
        page = pool.new_page()
        pool.clear()
        reads_before = disk.stats.page_reads
        pool.fetch_page(page.page_id)
        assert disk.stats.page_reads == reads_before + 1


class TestHeapFile:
    def _pool(self) -> BufferPool:
        return BufferPool(InMemoryDiskManager(), capacity=16)

    def test_insert_read_roundtrip(self):
        heap = HeapFile(self._pool())
        tuple_id, record_id = heap.insert(("JW0080", "mraW"))
        stored_id, values = heap.read(record_id)
        assert stored_id == tuple_id == 0
        assert values == ("JW0080", "mraW")

    def test_tuple_ids_are_monotonic(self):
        heap = HeapFile(self._pool())
        ids = [heap.insert((i,))[0] for i in range(10)]
        assert ids == list(range(10))

    def test_scan_skips_deleted(self):
        heap = HeapFile(self._pool())
        keep, keep_rid = heap.insert(("keep",))
        drop, drop_rid = heap.insert(("drop",))
        heap.delete(drop_rid)
        scanned = [(tid, values) for _, tid, values in heap.scan()]
        assert scanned == [(keep, ("keep",))]

    def test_update_moves_grown_record(self):
        pool = BufferPool(InMemoryDiskManager(page_size=256), capacity=16)
        heap = HeapFile(pool)
        tuple_id, record_id = heap.insert(("x" * 50,))
        heap.insert(("y" * 50,))
        new_record_id = heap.update(record_id, ("z" * 150,), tuple_id)
        stored_id, values = heap.read(new_record_id)
        assert stored_id == tuple_id
        assert values == ("z" * 150,)

    def test_grows_across_pages(self):
        pool = BufferPool(InMemoryDiskManager(page_size=256), capacity=16)
        heap = HeapFile(pool)
        for i in range(50):
            heap.insert((f"value-{i:03d}", i))
        assert heap.num_pages() > 1
        assert heap.count() == 50
