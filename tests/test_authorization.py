"""Tests for GRANT/REVOKE and the content-based approval mechanism (Section 6)."""

from __future__ import annotations

import pytest

from repro import Database
from repro.authorization.approval import OperationStatus, OperationType
from repro.authorization.grants import AccessControl
from repro.core.errors import ApprovalError, AuthorizationError


class TestAccessControl:
    def test_grant_and_check(self):
        access = AccessControl()
        access.grant(["SELECT", "INSERT"], "Gene", "alice")
        assert access.has_privilege("alice", "select", "gene")
        assert not access.has_privilege("alice", "DELETE", "Gene")

    def test_all_privilege(self):
        access = AccessControl()
        access.grant(["ALL"], "Gene", "alice")
        assert access.has_privilege("alice", "DELETE", "Gene")

    def test_unknown_privilege_rejected(self):
        access = AccessControl()
        with pytest.raises(AuthorizationError):
            access.grant(["FLY"], "Gene", "alice")

    def test_revoke(self):
        access = AccessControl()
        access.grant(["SELECT"], "Gene", "alice")
        assert access.revoke(["SELECT"], "Gene", "alice") == 1
        assert not access.has_privilege("alice", "SELECT", "Gene")

    def test_groups(self):
        access = AccessControl()
        access.create_group("lab_members", ["alice", "bob"])
        access.grant(["UPDATE"], "Gene", "lab_members")
        assert access.has_privilege("bob", "UPDATE", "Gene")
        access.remove_from_group("lab_members", "bob")
        assert not access.has_privilege("bob", "UPDATE", "Gene")

    def test_public_grants(self):
        access = AccessControl()
        access.grant(["SELECT"], "Gene", "public")
        assert access.has_privilege("random_person", "SELECT", "Gene")

    def test_superuser_bypasses_checks(self):
        access = AccessControl()
        assert access.has_privilege("admin", "DELETE", "anything")
        access.add_superuser("root")
        assert access.has_privilege("root", "DELETE", "anything")

    def test_is_member(self):
        access = AccessControl()
        access.create_group("curators", ["carol"])
        assert access.is_member("carol", "curators")
        assert access.is_member("carol", "carol")
        assert not access.is_member("dave", "curators")

    def test_check_raises(self):
        access = AccessControl()
        with pytest.raises(AuthorizationError):
            access.check("eve", "SELECT", "Gene")


@pytest.fixture
def approval_db(db):
    """A monitored table with a lab-member user, per Figure 11."""
    db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
    db.execute("GRANT SELECT, INSERT, UPDATE, DELETE ON Gene TO lab_member")
    db.execute("START CONTENT APPROVAL ON Gene APPROVED BY lab_admin")
    db.access.add_superuser("lab_admin")
    return db


class TestContentApproval:
    def test_operations_are_logged_with_inverse(self, approval_db):
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        member.execute("UPDATE Gene SET GSequence = 'ATGCCC' WHERE GID = 'JW1'")
        member.execute("DELETE FROM Gene WHERE GID = 'JW1'")
        log = approval_db.approval.log_entries()
        assert [op.op_type for op in log] == [
            OperationType.INSERT, OperationType.UPDATE, OperationType.DELETE,
        ]
        assert all(op.is_pending for op in log)
        assert log[1].inverse.values == {"GSequence": "ATG"}
        assert log[2].inverse.op_type is OperationType.INSERT

    def test_pending_data_remains_visible(self, approval_db):
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        assert len(approval_db.query("SELECT * FROM Gene")) == 1

    def test_approve_keeps_change(self, approval_db):
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        op = approval_db.approval.pending_operations()[0]
        approved = approval_db.approval.approve(op.op_id, "lab_admin")
        assert approved.status is OperationStatus.APPROVED
        assert len(approval_db.query("SELECT * FROM Gene")) == 1

    def test_disapprove_insert_removes_row(self, approval_db):
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        op = approval_db.approval.pending_operations()[0]
        approval_db.approval.disapprove(op.op_id, "lab_admin")
        assert len(approval_db.query("SELECT * FROM Gene")) == 0

    def test_disapprove_update_restores_old_values(self, approval_db):
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        member.execute("UPDATE Gene SET GSequence = 'TTTT' WHERE GID = 'JW1'")
        update_op = approval_db.approval.log_entries()[-1]
        approval_db.approval.disapprove(update_op.op_id, "lab_admin")
        assert approval_db.query("SELECT GSequence FROM Gene").values() == [("ATG",)]

    def test_disapprove_delete_restores_row(self, approval_db):
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        member.execute("DELETE FROM Gene WHERE GID = 'JW1'")
        delete_op = approval_db.approval.log_entries()[-1]
        approval_db.approval.disapprove(delete_op.op_id, "lab_admin")
        assert approval_db.query("SELECT GID FROM Gene").values() == [("JW1",)]

    def test_only_designated_approver_can_review(self, approval_db):
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        op = approval_db.approval.pending_operations()[0]
        with pytest.raises(AuthorizationError):
            approval_db.approval.approve(op.op_id, "lab_member")

    def test_double_review_rejected(self, approval_db):
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        op = approval_db.approval.pending_operations()[0]
        approval_db.approval.approve(op.op_id, "lab_admin")
        with pytest.raises(ApprovalError):
            approval_db.approval.disapprove(op.op_id, "lab_admin")

    def test_column_scoped_monitoring(self, db):
        db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
        db.execute("GRANT ALL ON Gene TO lab_member")
        db.execute("START CONTENT APPROVAL ON Gene COLUMNS GSequence APPROVED BY admin")
        member = db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        member.execute("UPDATE Gene SET GName = 'renamed' WHERE GID = 'JW1'")
        member.execute("UPDATE Gene SET GSequence = 'TTT' WHERE GID = 'JW1'")
        ops = db.approval.log_entries()
        # The GName-only update is not monitored.
        assert len(ops) == 2
        assert {op.op_type for op in ops} == {OperationType.INSERT, OperationType.UPDATE}

    def test_stop_content_approval(self, approval_db):
        approval_db.execute("STOP CONTENT APPROVAL ON Gene")
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW9', 'x', 'ATG')")
        assert approval_db.approval.log_size() == 0

    def test_stop_without_start_raises(self, db):
        db.execute("CREATE TABLE T (a INTEGER)")
        with pytest.raises(ApprovalError):
            db.execute("STOP CONTENT APPROVAL ON T")

    def test_disapproval_triggers_dependency_invalidation(self, pipeline_db):
        db = pipeline_db
        db.execute("GRANT ALL ON Gene TO member")
        db.execute("START CONTENT APPROVAL ON Gene APPROVED BY admin")
        db.execute("UPDATE Gene SET GSequence = 'ATGTTT' WHERE GID = 'JW0001'",
                   user="member")
        op = db.approval.pending_operations()[0]
        _, impact = db.approval.disapprove(op.op_id, "admin")
        # Undoing the update re-runs dependency tracking on the restored value.
        assert impact.total_affected >= 1

    def test_statistics(self, approval_db):
        member = approval_db.session("lab_member")
        member.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG')")
        member.execute("INSERT INTO Gene VALUES ('JW2', 'b', 'ATG')")
        ops = approval_db.approval.pending_operations()
        approval_db.approval.approve(ops[0].op_id, "lab_admin")
        approval_db.approval.disapprove(ops[1].op_id, "lab_admin")
        stats = approval_db.approval.statistics()
        assert stats["APPROVED"] == 1
        assert stats["DISAPPROVED"] == 1
        assert stats["TOTAL"] == 2
