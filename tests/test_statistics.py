"""Unit tests for the statistics manager and the ANALYZE / EXPLAIN surface."""

from __future__ import annotations

import pytest

from repro import Database
from repro.catalog.statistics import StatisticsManager
from repro.core.errors import AuthorizationError
from repro.sql.parser import parse_expression


@pytest.fixture
def stats_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, grp TEXT, "
               "score FLOAT, note TEXT)")
    for i in range(40):
        note = "NULL" if i % 4 == 0 else f"'n{i}'"
        db.execute(f"INSERT INTO items VALUES ({i}, 'g{i % 5}', {float(i)}, {note})")
    return db


class TestAnalyze:
    def test_analyze_computes_row_count_and_column_stats(self, stats_db):
        summary = stats_db.execute("ANALYZE items")
        table = summary.details["tables"]["items"]
        assert table["row_count"] == 40
        assert table["columns"]["id"]["distinct"] == 40
        assert table["columns"]["grp"]["distinct"] == 5
        assert table["columns"]["note"]["null_count"] == 10
        assert table["columns"]["score"]["min"] == 0.0
        assert table["columns"]["score"]["max"] == 39.0

    def test_analyze_all_requires_superuser(self, stats_db):
        stats_db.execute("GRANT SELECT ON items TO carol")
        with pytest.raises(AuthorizationError):
            stats_db.execute("ANALYZE", user="carol")
        # A single table only needs SELECT on that table.
        summary = stats_db.execute("ANALYZE items", user="carol")
        assert summary.rows_affected == 1

    def test_analyze_versions_bump(self, stats_db):
        first = stats_db.execute("ANALYZE items").details["tables"]["items"]
        second = stats_db.execute("ANALYZE items").details["tables"]["items"]
        assert second["version"] == first["version"] + 1

    def test_dml_keeps_row_count_fresh(self, stats_db):
        stats_db.execute("ANALYZE items")
        stats_db.execute("DELETE FROM items WHERE id < 10")
        stats_db.execute("INSERT INTO items VALUES (100, 'g9', 1.0, 'x')")
        stats = stats_db.statistics.stats_for("items")
        assert stats.row_count == 31

    def test_auto_refresh_after_heavy_dml(self, stats_db):
        stats_db.execute("ANALYZE items")
        before = stats_db.statistics.stats_for("items").version
        for i in range(200, 270):
            stats_db.execute(f"INSERT INTO items VALUES ({i}, 'g{i % 5}', 1.0, 'y')")
        refreshed = stats_db.statistics.stats_for("items")
        assert refreshed.version > before
        assert refreshed.row_count == 110

    def test_analyze_tolerates_nan_values(self):
        # NaN must not poison min/max bounds or crash histogram bucketing,
        # and the auto-refresh path (triggered from SELECT planning) must
        # survive NaN-containing FLOAT columns too.
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
        values = [float("nan"), 1.0, 2.0, float("nan"), 3.0]
        for i, value in enumerate(values):
            db.table("t").insert_row({"id": i, "x": value})
        summary = db.execute("ANALYZE t")
        column = summary.details["tables"]["t"]["columns"]["x"]
        assert column["min"] == 1.0
        assert column["max"] == 3.0
        estimate = db.statistics.estimate_scan_rows(
            "t", [parse_expression("x < 2.5")])
        assert 0 < estimate < 5

    def test_analyze_tolerates_infinite_values(self):
        # The tokenizer turns overlarge literals like 1e400 into inf; bounds
        # and histograms must survive that just like NaN.
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
        db.execute("INSERT INTO t VALUES (0, 1e400), (1, 1.0), (2, 2.0)")
        column = db.execute("ANALYZE t").details["tables"]["t"]["columns"]["x"]
        assert column["min"] == 1.0
        assert column["max"] == 2.0

    def test_analyze_all_nan_column(self):
        db = Database()
        db.execute("CREATE TABLE t (x FLOAT)")
        db.table("t").insert_row({"x": float("nan")})
        db.table("t").insert_row({"x": float("nan")})
        column = db.execute("ANALYZE t").details["tables"]["t"]["columns"]["x"]
        assert column["min"] is None and column["max"] is None

    def test_bulk_load_via_table_api_not_stale(self, stats_db):
        # Direct Table.insert_row calls bypass the engine's DML hooks; the
        # row-count estimate must stay live and drift must trigger refresh.
        stats_db.execute("ANALYZE items")
        table = stats_db.table("items")
        for i in range(1000, 1100):
            table.insert_row({"id": i, "grp": "bulk", "score": 1.0, "note": "x"})
        assert stats_db.statistics.row_count_estimate("items") == 140
        refreshed = stats_db.statistics.stats_for("items")
        assert refreshed.row_count == 140
        assert refreshed.column("grp").distinct == 6

    def test_drop_table_drops_statistics(self, stats_db):
        stats_db.execute("ANALYZE items")
        stats_db.execute("DROP TABLE items")
        assert stats_db.statistics.stats_for("items") is None


class TestEstimation:
    def test_row_count_estimate_without_stats_is_live(self, stats_db):
        assert stats_db.statistics.row_count_estimate("items") == 40

    def test_equality_selectivity_uses_ndv(self, stats_db):
        stats_db.execute("ANALYZE items")
        stats = stats_db.statistics
        conjuncts = [parse_expression("grp = 'g1'")]
        estimate = stats.estimate_scan_rows("items", conjuncts)
        assert estimate == pytest.approx(40 / 5)

    def test_primary_key_equality_pins_to_one_row(self, stats_db):
        stats_db.execute("ANALYZE items")
        estimate = stats_db.statistics.estimate_scan_rows(
            "items", [parse_expression("id = 7")])
        assert estimate == 1.0

    def test_qualified_lookup_not_misapplied(self, stats_db):
        # A conjunct pinned to another table's qualifier cannot make this
        # scan look like a single-row primary-key lookup.
        estimate = stats_db.statistics.estimate_scan_rows(
            "items", [parse_expression("other.id = 7")], qualifier="items")
        assert estimate > 1.0

    def test_range_selectivity_interpolates(self, stats_db):
        stats_db.execute("ANALYZE items")
        stats = stats_db.statistics
        half = stats.estimate_scan_rows("items", [parse_expression("score < 19.5")])
        assert 12 <= half <= 28  # roughly half of 40
        high = stats.estimate_scan_rows("items", [parse_expression("score > 35.0")])
        assert high < half

    def test_inclusive_bound_counts_dominant_value(self):
        # 90% of rows share one value: ``x <= 10`` must include that mass.
        db = Database()
        db.execute("CREATE TABLE skew (x INTEGER)")
        for _ in range(90):
            db.table("skew").insert_row({"x": 10})
        for i in range(11, 21):
            db.table("skew").insert_row({"x": i})
        db.execute("ANALYZE skew")
        stats = db.statistics
        inclusive = stats.estimate_scan_rows("skew", [parse_expression("x <= 10")])
        strict = stats.estimate_scan_rows("skew", [parse_expression("x < 10")])
        assert inclusive > strict
        assert inclusive >= 9  # at least one equality quantum of 100/11

    def test_conjuncts_multiply(self, stats_db):
        stats_db.execute("ANALYZE items")
        stats = stats_db.statistics
        one = stats.estimate_scan_rows("items", [parse_expression("grp = 'g1'")])
        both = stats.estimate_scan_rows(
            "items",
            [parse_expression("grp = 'g1'"), parse_expression("score < 19.5")])
        assert both < one

    def test_distinct_estimate_fallback_without_stats(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        for i in range(30):
            db.execute(f"INSERT INTO t VALUES ({i % 3})")
        manager: StatisticsManager = db.statistics
        assert manager.stats_for("t") is None
        # Never analyzed: NDV falls back to rows/10.
        assert manager.distinct_estimate("t", "a") == 3
        db.execute("ANALYZE t")
        assert manager.distinct_estimate("t", "a") == 3  # now exact


class TestExplain:
    def test_explain_does_not_execute(self, stats_db):
        summary = stats_db.explain("SELECT * FROM items WHERE id = 1")
        assert summary.statement == "EXPLAIN"
        assert summary.details["plan"]["node"] == "Scan"
        assert "Scan items" in summary.message

    def test_explain_requires_select_privilege(self, stats_db):
        with pytest.raises(AuthorizationError):
            stats_db.explain("SELECT * FROM items", user="mallory")

    def test_explain_set_operation(self, stats_db):
        summary = stats_db.explain(
            "SELECT id FROM items UNION SELECT id FROM items")
        assert summary.details["plan"]["node"] == "UNION"
        assert summary.message.startswith("UNION")

    def test_explain_statement_via_sql(self, stats_db):
        summary = stats_db.execute("EXPLAIN SELECT id FROM items WHERE id < 3")
        assert summary.statement == "EXPLAIN"
        assert "pushed" in summary.message
