"""Tests for the synthetic biological workload generators."""

from __future__ import annotations

import random

import pytest

from repro import Database
from repro.index.sbc.rle import rle_encode
from repro.workloads import (
    DNA_ALPHABET,
    SECONDARY_STRUCTURE_ALPHABET,
    build_gene_protein_pipeline,
    build_gene_tables,
    dna_corpus,
    dna_sequence,
    gene_identifier,
    mutate_sequence,
    protein_sequence,
    secondary_structure_corpus,
    secondary_structure_sequence,
    structure_points,
)


class TestSequenceGenerators:
    def test_dna_sequence_alphabet_and_length(self):
        rng = random.Random(1)
        seq = dna_sequence(200, rng)
        assert len(seq) == 200
        assert set(seq) <= set(DNA_ALPHABET)

    def test_protein_sequence(self):
        rng = random.Random(1)
        seq = protein_sequence(100, rng)
        assert len(seq) == 100

    def test_secondary_structure_has_long_runs(self):
        rng = random.Random(5)
        seq = secondary_structure_sequence(600, rng, mean_run_length=10)
        assert len(seq) == 600
        assert set(seq) <= set(SECONDARY_STRUCTURE_ALPHABET)
        runs = rle_encode(seq)
        # Long runs: far fewer runs than characters (that is what makes the
        # SBC-tree experiments meaningful).
        assert len(runs) < len(seq) / 4
        # Adjacent runs always switch characters.
        assert all(runs[i][0] != runs[i + 1][0] for i in range(len(runs) - 1))

    def test_secondary_structure_zero_length(self):
        rng = random.Random(5)
        assert secondary_structure_sequence(0, rng) == ""

    def test_corpora_are_reproducible(self):
        assert secondary_structure_corpus(5, 100, seed=3) == \
            secondary_structure_corpus(5, 100, seed=3)
        assert dna_corpus(3, 50, seed=4) == dna_corpus(3, 50, seed=4)

    def test_mutation_changes_requested_positions_only_in_alphabet(self):
        rng = random.Random(9)
        original = dna_sequence(100, rng)
        mutated = mutate_sequence(original, 5, rng)
        assert len(mutated) == len(original)
        assert mutated != original
        assert set(mutated) <= set(DNA_ALPHABET)
        assert mutate_sequence(original, 0, rng) == original

    def test_structure_points_count_and_reproducibility(self):
        points = structure_points(50, seed=2)
        assert len(points) == 50
        assert points == structure_points(50, seed=2)

    def test_gene_identifier_format(self):
        assert gene_identifier(80) == "JW0080"


class TestWorkloadBuilders:
    def test_gene_tables_shape(self):
        db = Database()
        info = build_gene_tables(db, num_genes=16, overlap=0.25, seed=8)
        assert len(info["db1"]) == 16
        assert len(info["db2"]) == 16
        assert len(info["common"]) == 4
        assert set(info["common"]) == set(info["db1"]) & set(info["db2"])
        # Both tables carry annotation tables with annotations.
        for table in ("DB1_Gene", "DB2_Gene"):
            ann_table = db.annotations.get(table, "GAnnotation")
            assert ann_table.annotation_count() >= 1

    def test_gene_protein_pipeline_consistency(self):
        db = Database()
        ids = build_gene_protein_pipeline(db, num_genes=10, seed=4)
        assert len(ids["gene"]) == 10
        assert len(ids["protein"]) == 10
        assert len(ids["genematching"]) == 5
        # Every protein references an existing gene and its sequence is the
        # deterministic derivation of that gene's sequence.
        genes = {gid: seq for gid, _, seq in db.query("SELECT * FROM Gene").values()}
        for pname, gid, pseq, _ in db.query("SELECT * FROM Protein").values():
            assert gid in genes
            assert pseq
        # The dependency rules of Figure 9 are registered.
        assert len(db.tracker.rules) == 3

    def test_pipeline_without_matching_table(self):
        db = Database()
        ids = build_gene_protein_pipeline(db, num_genes=6, with_matching=False)
        assert ids["genematching"] == []
        assert len(db.tracker.rules) == 2
