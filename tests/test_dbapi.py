"""PEP 249 (DB-API 2.0) conformance-style tests for the ``repro`` module.

Modelled on the classic ``dbapi20`` compliance suite: module attributes,
the exception hierarchy, connection/cursor lifecycles, description and
rowcount semantics, fetch behaviour, parameter binding, and the optional
extensions this driver provides (``lastrowid``, ``executescript``,
``Connection.execute`` shortcuts, exception classes on the connection).

The ``conn`` fixture is parameterized over the two ways of reaching the
engine — in-process (``repro.connect``) and over the network
(``repro.client.connect`` against a live :class:`repro.server.DatabaseServer`)
— so every conformance case doubles as a wire-protocol parity check.  Cases
that inherently need the in-process ``Database`` object call
:func:`local_database`, which skips under the network parameterization.
"""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.client
from repro.server import start_server


def _seed(connection):
    cur = connection.cursor()
    cur.execute("CREATE TABLE samples (id INTEGER PRIMARY KEY, name TEXT, "
                "score FLOAT)")
    cur.executemany("INSERT INTO samples VALUES (?, ?, ?)",
                    [(1, "alpha", 0.5), (2, "beta", 1.5), (3, "gamma", 2.5),
                     (4, "delta", 3.5), (5, "epsilon", 4.5)])


@pytest.fixture(params=["inprocess", "server"])
def conn(request):
    if request.param == "inprocess":
        connection = repro.connect()
        _seed(connection)
        yield connection
        connection.close()
        return
    server = start_server()
    connection = repro.client.connect(port=server.port)
    try:
        _seed(connection)
        yield connection
        connection.close()
    finally:
        server.shutdown()


def local_database(conn):
    """The in-process ``Database`` behind ``conn``; skips for the network
    client, whose database lives in the server process."""
    if not hasattr(conn, "database"):
        pytest.skip("requires in-process access to the Database object")
    return conn.database


# ---------------------------------------------------------------------------
# Module interface
# ---------------------------------------------------------------------------
class TestModuleInterface:
    def test_apilevel(self):
        assert repro.apilevel == "2.0"

    def test_threadsafety(self):
        assert repro.threadsafety in (0, 1, 2, 3)

    def test_paramstyle(self):
        assert repro.paramstyle == "qmark"

    def test_connect_returns_connection(self):
        connection = repro.connect()
        assert isinstance(connection, repro.Connection)
        connection.close()

    def test_exception_hierarchy(self):
        # PEP 249 mandates exactly this inheritance lattice.
        assert issubclass(repro.Warning, Exception)
        assert issubclass(repro.Error, Exception)
        assert issubclass(repro.InterfaceError, repro.Error)
        assert issubclass(repro.DatabaseError, repro.Error)
        assert issubclass(repro.DataError, repro.DatabaseError)
        assert issubclass(repro.OperationalError, repro.DatabaseError)
        assert issubclass(repro.IntegrityError, repro.DatabaseError)
        assert issubclass(repro.InternalError, repro.DatabaseError)
        assert issubclass(repro.ProgrammingError, repro.DatabaseError)
        assert issubclass(repro.NotSupportedError, repro.DatabaseError)

    def test_dbapi_errors_are_bdbms_errors(self):
        # Legacy callers catching the library base class keep working.
        assert issubclass(repro.Error, repro.BdbmsError)

    def test_exceptions_available_on_connection(self, conn):
        assert conn.ProgrammingError is repro.ProgrammingError
        assert conn.Error is repro.Error


# ---------------------------------------------------------------------------
# Connection lifecycle
# ---------------------------------------------------------------------------
class TestConnection:
    def test_commit_is_allowed(self, conn):
        conn.commit()  # auto-commit engine: flushes, never raises

    def test_rollback_without_transaction_is_noop(self, conn):
        conn.rollback()  # sqlite3-style: no open transaction, no error

    def test_rollback_undoes_transaction(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE TABLE t_rb (id INTEGER PRIMARY KEY, v TEXT)")
        cur.execute("INSERT INTO t_rb VALUES (1, 'keep')")
        conn.commit()
        cur.execute("BEGIN")
        cur.execute("INSERT INTO t_rb VALUES (2, 'discard')")
        conn.rollback()
        cur.execute("SELECT id FROM t_rb")
        assert [row[0] for row in cur.fetchall()] == [1]

    def test_exit_with_exception_rolls_back(self):
        db = repro.Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t_exc (id INTEGER PRIMARY KEY)")
        with pytest.raises(RuntimeError):
            with conn:
                conn.execute("BEGIN")
                conn.execute("INSERT INTO t_exc VALUES (1)")
                raise RuntimeError("boom")
        check = db.connect()
        assert check.execute("SELECT id FROM t_exc").fetchall() == []

    def test_non_string_sql_raises_interface_error(self, conn):
        with pytest.raises(repro.InterfaceError):
            conn.execute(42)
        with pytest.raises(repro.InterfaceError):
            conn.execute(b"SELECT 1")

    def test_close_is_idempotent(self, conn):
        conn.close()
        conn.close()

    def test_operations_on_closed_connection_raise(self, conn):
        conn.close()
        with pytest.raises(repro.Error):
            conn.cursor()
        with pytest.raises(repro.Error):
            conn.commit()

    def test_closing_connection_closes_cursors(self, conn):
        cur = conn.cursor()
        conn.close()
        with pytest.raises(repro.Error):
            cur.execute("SELECT 1")

    def test_context_manager_closes(self):
        with repro.connect() as connection:
            connection.cursor().execute("SELECT 1")
        assert connection.closed
        with pytest.raises(repro.Error):
            connection.cursor()

    def test_connect_on_disk(self, tmp_path):
        path = str(tmp_path / "genes.db")
        with repro.connect(path) as connection:
            cur = connection.cursor()
            cur.execute("CREATE TABLE g (id INTEGER PRIMARY KEY, name TEXT)")
            cur.execute("INSERT INTO g VALUES (?, ?)", (1, "mraW"))
            row = connection.execute("SELECT name FROM g WHERE id = ?",
                                     (1,)).fetchone()
            assert row.values == ("mraW",)
        # close() flushed the buffer pool into the file.
        import os
        assert os.path.getsize(path) > 0

    def test_database_connect_shares_database(self, conn):
        other = local_database(conn).connect(user="admin")
        row = other.execute("SELECT COUNT(*) FROM samples").fetchone()
        assert row[0] == 5
        other.close()           # non-owning close leaves the database open
        assert conn.execute("SELECT COUNT(*) FROM samples").fetchone()[0] == 5


# ---------------------------------------------------------------------------
# Cursor basics
# ---------------------------------------------------------------------------
class TestCursor:
    def test_execute_returns_cursor(self, conn):
        cur = conn.cursor()
        assert cur.execute("SELECT 1") is cur

    def test_description_for_query(self, conn):
        cur = conn.execute("SELECT id, name FROM samples")
        assert len(cur.description) == 2
        assert all(len(entry) == 7 for entry in cur.description)
        assert [entry[0] for entry in cur.description] == ["id", "name"]

    def test_description_none_for_dml(self, conn):
        cur = conn.execute("INSERT INTO samples VALUES (?, ?, ?)",
                           (10, "zeta", 9.0))
        assert cur.description is None

    def test_rowcount(self, conn):
        cur = conn.cursor()
        assert cur.rowcount == -1
        cur.execute("UPDATE samples SET score = score + 1 WHERE id <= ?", (3,))
        assert cur.rowcount == 3
        cur.execute("SELECT * FROM samples")
        assert cur.rowcount == -1   # lazy stream: length unknown

    def test_lastrowid_after_insert(self, conn):
        cur = conn.execute("INSERT INTO samples VALUES (?, ?, ?)",
                           (11, "eta", 1.0))
        assert cur.lastrowid is not None

    def test_fetchone_exhaustion(self, conn):
        cur = conn.execute("SELECT name FROM samples WHERE id = ?", (1,))
        assert cur.fetchone().values == ("alpha",)
        assert cur.fetchone() is None

    def test_fetchmany_uses_arraysize(self, conn):
        cur = conn.execute("SELECT id FROM samples ORDER BY id")
        assert cur.arraysize == 1
        assert [row[0] for row in cur.fetchmany()] == [1]
        cur.arraysize = 3
        assert [row[0] for row in cur.fetchmany()] == [2, 3, 4]
        assert [row[0] for row in cur.fetchmany(10)] == [5]

    def test_fetchall(self, conn):
        cur = conn.execute("SELECT id FROM samples ORDER BY id")
        assert [row[0] for row in cur.fetchall()] == [1, 2, 3, 4, 5]
        assert cur.fetchall() == []

    def test_fetch_without_result_set_raises(self, conn):
        cur = conn.cursor()
        with pytest.raises(repro.ProgrammingError):
            cur.fetchone()
        cur.execute("INSERT INTO samples VALUES (?, ?, ?)", (12, "t", 0.0))
        with pytest.raises(repro.ProgrammingError):
            cur.fetchall()

    def test_iteration_is_lazy(self, conn):
        cur = conn.execute("SELECT id FROM samples ORDER BY id")
        first = next(iter(cur))
        assert first[0] == 1
        assert [row[0] for row in cur] == [2, 3, 4, 5]

    def test_rows_are_sequences_with_annotations(self, conn):
        row = conn.execute("SELECT id, name FROM samples WHERE id = ?",
                           (2,)).fetchone()
        assert tuple(row) == (2, "beta")
        assert row[1] == "beta"
        assert len(row) == 2
        assert row.values == (2, "beta")
        assert [set()] * 2 == [set(anns) for anns in row.annotations]

    def test_closed_cursor_raises(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(repro.Error):
            cur.execute("SELECT 1")
        cur.close()  # idempotent

    def test_cursor_context_manager(self, conn):
        with conn.cursor() as cur:
            cur.execute("SELECT 1")
        with pytest.raises(repro.Error):
            cur.execute("SELECT 1")

    def test_setinputsizes_and_setoutputsize_are_noops(self, conn):
        cur = conn.cursor()
        cur.setinputsizes([None])
        cur.setoutputsize(100)
        cur.setoutputsize(100, 0)


# ---------------------------------------------------------------------------
# Parameter binding
# ---------------------------------------------------------------------------
class TestParameters:
    def test_qmark_binding_all_clauses(self, conn):
        cur = conn.execute(
            "SELECT name, score + ? FROM samples "
            "WHERE score BETWEEN ? AND ? AND name LIKE ? AND id IN (?, ?, ?) "
            "ORDER BY id",
            (100, 0.0, 3.0, "%a%", 1, 2, 3))
        assert [tuple(row) for row in cur.fetchall()] == [
            ("alpha", 100.5), ("beta", 101.5), ("gamma", 102.5)]

    def test_null_parameter_never_matches_equality(self, conn):
        cur = conn.execute("SELECT * FROM samples WHERE name = ?", (None,))
        assert cur.fetchall() == []

    def test_wrong_parameter_count_fails_eagerly(self, conn):
        with pytest.raises(repro.ProgrammingError) as excinfo:
            conn.execute("SELECT * FROM samples WHERE id = ? AND name = ?",
                         (1,))
        assert "2 parameter(s)" in str(excinfo.value)
        assert "1 value(s)" in str(excinfo.value)

    def test_unsupported_type_names_placeholder(self, conn):
        with pytest.raises(repro.ProgrammingError) as excinfo:
            conn.execute("SELECT * FROM samples WHERE id = ? AND name = ?",
                         (1, ["not", "a", "scalar"]))
        assert "parameter 2" in str(excinfo.value)

    def test_mapping_parameters_rejected(self, conn):
        with pytest.raises(repro.ProgrammingError):
            conn.execute("SELECT * FROM samples WHERE id = ?", {"id": 1})

    def test_literal_question_mark_in_string_is_not_a_placeholder(self, conn):
        cur = conn.execute("SELECT name FROM samples WHERE name = 'a?b'")
        assert cur.fetchall() == []


# ---------------------------------------------------------------------------
# executemany / executescript
# ---------------------------------------------------------------------------
class TestExecuteMany:
    def test_executemany_insert_batches(self, conn):
        cur = conn.cursor()
        cur.executemany("INSERT INTO samples VALUES (?, ?, ?)",
                        [(20 + i, f"bulk{i}", float(i)) for i in range(50)])
        assert cur.rowcount == 50
        count = conn.execute("SELECT COUNT(*) FROM samples").fetchone()[0]
        assert count == 55

    def test_executemany_update(self, conn):
        cur = conn.cursor()
        cur.executemany("UPDATE samples SET score = ? WHERE id = ?",
                        [(10.0, 1), (20.0, 2)])
        assert cur.rowcount == 2
        rows = conn.execute("SELECT score FROM samples WHERE id <= 2 "
                            "ORDER BY id").fetchall()
        assert [row[0] for row in rows] == [10.0, 20.0]

    def test_executemany_rejects_select(self, conn):
        with pytest.raises(repro.ProgrammingError):
            conn.cursor().executemany("SELECT * FROM samples WHERE id = ?",
                                      [(1,), (2,)])

    def test_executemany_empty_sequence(self, conn):
        cur = conn.cursor()
        cur.executemany("INSERT INTO samples VALUES (?, ?, ?)", [])
        assert cur.rowcount == 0

    def test_executemany_validates_each_set(self, conn):
        with pytest.raises(repro.ProgrammingError):
            conn.cursor().executemany("INSERT INTO samples VALUES (?, ?, ?)",
                                      [(30, "ok", 1.0), (31, "bad")])

    def test_executescript(self, conn):
        conn.executescript("""
            INSERT INTO samples VALUES (40, 'forty', 40.0);
            INSERT INTO samples VALUES (41, 'fortyone', 41.0);
        """)
        count = conn.execute("SELECT COUNT(*) FROM samples WHERE id >= ?",
                             (40,)).fetchone()[0]
        assert count == 2


# ---------------------------------------------------------------------------
# Error mapping
# ---------------------------------------------------------------------------
class TestErrorMapping:
    def test_syntax_error_is_programming_error(self, conn):
        with pytest.raises(repro.ProgrammingError):
            conn.execute("SELEKT * FROM samples")

    def test_unknown_table_is_programming_error(self, conn):
        with pytest.raises(repro.ProgrammingError):
            conn.execute("SELECT * FROM no_such_table")

    def test_unknown_column_is_programming_error(self, conn):
        with pytest.raises(repro.ProgrammingError):
            conn.execute("SELECT nope FROM samples")

    def test_duplicate_primary_key_is_integrity_error(self, conn):
        with pytest.raises(repro.IntegrityError):
            conn.execute("INSERT INTO samples VALUES (?, ?, ?)",
                         (1, "dup", 0.0))

    def test_division_by_zero_is_database_error(self, conn):
        with pytest.raises(repro.DatabaseError):
            conn.execute("SELECT 1 / 0").fetchall()

    def test_authorization_error_is_operational(self, conn):
        restricted = local_database(conn).connect(user="guest")
        with pytest.raises(repro.OperationalError):
            restricted.execute("DROP TABLE samples")

    def test_original_error_is_chained(self, conn):
        local_database(conn)  # chaining cannot survive the wire
        from repro.core.errors import SqlSyntaxError
        with pytest.raises(repro.ProgrammingError) as excinfo:
            conn.execute("SELEKT 1")
        assert isinstance(excinfo.value.__cause__, SqlSyntaxError)

    def test_multi_statement_points_at_executescript(self, conn):
        with pytest.raises(repro.ProgrammingError) as excinfo:
            conn.execute("SELECT 1; SELECT 2")
        assert "executescript" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Legacy surface integration
# ---------------------------------------------------------------------------
class TestLegacyShims:
    def test_database_execute_warns_deprecation(self, conn):
        database = local_database(conn)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            database.execute("SELECT 1")
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    def test_database_execute_rejects_placeholders(self, conn):
        with pytest.raises(repro.ProgrammingError):
            local_database(conn).execute("SELECT * FROM samples WHERE id = ?")

    def test_database_execute_rejects_multi_statement(self, conn):
        with pytest.raises(repro.ProgrammingError) as excinfo:
            local_database(conn).execute(
                "INSERT INTO samples VALUES (50, 'a', 0.0); "
                "INSERT INTO samples VALUES (51, 'b', 0.0)")
        assert "execute_script" in str(excinfo.value)
        # And nothing was silently half-executed.
        count = conn.execute("SELECT COUNT(*) FROM samples WHERE id >= ?",
                             (50,)).fetchone()[0]
        assert count == 0

    def test_execute_script_rejects_placeholders(self, conn):
        with pytest.raises(repro.ProgrammingError):
            local_database(conn).execute_script(
                "INSERT INTO samples VALUES (?, 'x', 0.0);")

    def test_session_rides_a_connection(self, conn):
        session = local_database(conn).session("admin")
        assert isinstance(session.connection, repro.Connection)
        row = session.cursor().execute(
            "SELECT name FROM samples WHERE id = ?", (3,)).fetchone()
        assert row.values == ("gamma",)

    def test_a_sql_annotations_flow_through_cursors(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE ANNOTATION TABLE snote ON samples")
        cur.execute("ADD ANNOTATION TO samples.snote VALUE 'checked' "
                    "ON (SELECT s.name FROM samples s WHERE s.id = 2)")
        cur.execute("SELECT name FROM samples ANNOTATION(snote) "
                    "WHERE id = ?", (2,))
        row = cur.fetchone()
        assert row.values == ("beta",)
        assert any("checked" in a.body for a in row.annotations[0])
