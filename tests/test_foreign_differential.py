"""Differential tests for foreign tables: ForeignScan must compose with every
join strategy, execution mode, and batch size.

Attached CSV/JSONL/repro tables join against native tables (and each other);
each query shape runs under every (strategy, mode, batch size) combination and
must return the same row multiset — and, for the repro provider, the same
propagated annotations — as the materialized nested-loop baseline.  A second
axis re-runs the matrix with provider pushdown disabled: the residual
re-check in the ForeignScan operator must make results independent of how
much filtering the provider actually performed.
"""

from __future__ import annotations

import json

import pytest

from repro import Database
from tests.test_join_differential import canonical, run_query

STRATEGIES = ("auto", "hash", "merge")
MODES = ("streaming", "row", "materialized")
BATCH_SIZES = (1, 1024)


def build_foreign_db(tmp_path, pushdown: bool = True) -> Database:
    csv_path = tmp_path / f"orders_{pushdown}.csv"
    with open(csv_path, "w") as handle:
        handle.write("oid,cust,amount\n")
        for i in range(40):
            handle.write(f"{i},C{i % 7},{i * 2.5}\n")

    jsonl_path = tmp_path / f"tags_{pushdown}.jsonl"
    with open(jsonl_path, "w") as handle:
        for i in range(14):
            handle.write(json.dumps({"cust": f"C{i % 7}",
                                     "tag": f"t{i % 3}"}) + "\n")

    remote_path = str(tmp_path / f"remote_{pushdown}.db")
    with Database(remote_path) as remote:
        cur = remote.connect().cursor()
        cur.execute("CREATE TABLE customer (cust TEXT, region TEXT)")
        for i in range(7):
            cur.execute("INSERT INTO customer VALUES (?, ?)",
                        (f"C{i}", "east" if i % 2 else "west"))
        cur.execute("CREATE ANNOTATION TABLE note ON customer")
        cur.execute("ADD ANNOTATION TO customer.note VALUE 'vip' "
                    "ON (SELECT cust FROM customer WHERE region = 'east')")

    db = Database()
    db.execute("CREATE TABLE payment (pid INTEGER PRIMARY KEY, oid INTEGER, "
               "method TEXT)")
    for i in range(25):
        db.execute(f"INSERT INTO payment VALUES ({i}, {i % 40}, 'm{i % 2}')")
    option = "" if pushdown else ", pushdown false"
    db.execute(f"ATTACH '{csv_path}' AS orders (TYPE csv{option})")
    db.execute(f"ATTACH '{jsonl_path}' AS tags (TYPE jsonl{option})")
    db.execute(f"ATTACH '{remote_path}' AS customer (TYPE repro{option})")
    return db


QUERY_SHAPES = {
    "foreign_scan_filtered": (
        "SELECT oid, amount FROM orders WHERE amount > 40 AND cust = 'C3'"
    ),
    "native_foreign_equi_join": (
        "SELECT p.pid, o.amount FROM payment p, orders o "
        "WHERE p.oid = o.oid AND o.amount > 20"
    ),
    "foreign_foreign_join": (
        "SELECT o.oid, t.tag FROM orders o, tags t "
        "WHERE o.cust = t.cust AND o.oid < 10"
    ),
    "three_way_native_csv_repro": (
        "SELECT p.pid, o.cust, c.region FROM payment p, orders o, "
        "customer ANNOTATION(note) c "
        "WHERE p.oid = o.oid AND o.cust = c.cust AND p.method = 'm1'"
    ),
    "foreign_group_by": (
        "SELECT cust, COUNT(*), SUM(amount) FROM orders "
        "WHERE oid >= 5 GROUP BY cust"
    ),
    "foreign_order_limit": (
        "SELECT oid, amount FROM orders WHERE amount < 60 "
        "ORDER BY amount DESC LIMIT 7"
    ),
    "repro_annotated_join": (
        "SELECT c.cust, c.region, o.oid FROM customer ANNOTATION(note) c, "
        "orders o WHERE c.cust = o.cust AND o.oid < 14"
    ),
    "foreign_left_join": (
        "SELECT o.oid, p.pid FROM orders o LEFT JOIN payment p "
        "ON o.oid = p.oid AND p.method = 'm0' WHERE o.oid < 12"
    ),
}


@pytest.fixture(scope="module")
def foreign_db(tmp_path_factory) -> Database:
    return build_foreign_db(tmp_path_factory.mktemp("foreign_diff"))


@pytest.fixture(scope="module")
def nopush_db(tmp_path_factory) -> Database:
    return build_foreign_db(tmp_path_factory.mktemp("foreign_nopush"),
                            pushdown=False)


def materialized_baseline(db, query):
    return canonical(run_query(db, query, "nested_loop", "materialized"))


@pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("mode", MODES)
def test_foreign_matrix_agrees_with_baseline(foreign_db, shape, strategy,
                                             mode):
    query = QUERY_SHAPES[shape]
    baseline = materialized_baseline(foreign_db, query)
    assert canonical(run_query(foreign_db, query, strategy, mode)) == baseline


@pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_foreign_matrix_invariant_under_batch_size(foreign_db, shape,
                                                   batch_size):
    query = QUERY_SHAPES[shape]
    baseline = materialized_baseline(foreign_db, query)
    candidate = canonical(run_query(foreign_db, query, "auto", "streaming",
                                    batch_size))
    assert candidate == baseline


@pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_pushdown_off_matches_pushdown_on(foreign_db, nopush_db, shape,
                                          strategy):
    """Pushdown is advisory: with it disabled the engine-side residual
    re-check must produce the identical result set."""
    query = QUERY_SHAPES[shape]
    expected = materialized_baseline(foreign_db, query)
    assert canonical(run_query(nopush_db, query, strategy,
                               "streaming")) == expected


def test_repro_annotations_match_native_source(tmp_path):
    """Annotation identity: querying an attached repro table must carry the
    same (annotation_table, ann_id) pairs as querying the source natively."""
    remote_path = str(tmp_path / "src.db")
    with Database(remote_path) as remote:
        cur = remote.connect().cursor()
        cur.execute("CREATE TABLE item (iid INTEGER, label TEXT)")
        for i in range(10):
            cur.execute("INSERT INTO item VALUES (?, ?)", (i, f"L{i}"))
        cur.execute("CREATE ANNOTATION TABLE prov ON item")
        cur.execute("ADD ANNOTATION TO item.prov VALUE 'checked' "
                    "ON (SELECT label FROM item WHERE iid < 4)")

    query = "SELECT iid, label FROM item ANNOTATION(prov) WHERE iid < 6"
    with Database(remote_path) as source:
        native = canonical(source.query(query))

    db = Database()
    db.execute(f"ATTACH '{remote_path}' AS item (TYPE repro)")
    foreign = canonical(db.query(query))
    assert foreign == native
    assert any(annotations != ((), ()) for _, annotations in foreign)
    db.close()


def test_foreign_pushdown_actually_reduces_transfer(foreign_db):
    """The matrix is only meaningful if pushdown really happens: a filtered
    scan must transfer far fewer rows out of the provider than a full one."""
    provider = foreign_db.foreign.provider_for(
        foreign_db.foreign.table("orders"))
    counted = []
    original = type(provider).scan_batches

    def counting(self, *args, **kwargs):
        for batch in original(self, *args, **kwargs):
            counted.append(len(batch.values))
            yield batch

    type(provider).scan_batches = counting
    try:
        foreign_db.query("SELECT oid FROM orders WHERE oid = 3")
        filtered = sum(counted)
        counted.clear()
        foreign_db.query("SELECT oid FROM orders")
        full = sum(counted)
    finally:
        type(provider).scan_batches = original
    assert filtered == 1
    assert full == 40
