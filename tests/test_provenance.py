"""Tests for provenance management (Section 4 / Figure 8)."""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.core.errors import ProvenanceError
from repro.provenance.manager import PROVENANCE_SCHEMA, ProvenanceRecord


@pytest.fixture
def loaded(db):
    db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
    db.execute("INSERT INTO Gene VALUES ('JW1', 'a', 'ATG'), ('JW2', 'b', 'CCC'), "
               "('JW3', 'c', 'GGG')")
    return db


class TestProvenanceWrites:
    def test_record_creates_structured_annotation(self, loaded):
        cells = loaded.annotations.cells_for("Gene", tuple_ids=[0])
        annotation = loaded.provenance.record(
            "Gene", cells, source="RegulonDB", operation="copy",
            agent="system", program="loader-1.2",
        )
        PROVENANCE_SCHEMA.validate(annotation.body)
        record = ProvenanceRecord.from_annotation(annotation)
        assert record.source == "RegulonDB"
        assert record.program == "loader-1.2"

    def test_end_users_cannot_write_provenance(self, loaded):
        cells = loaded.annotations.cells_for("Gene", tuple_ids=[0])
        with pytest.raises(ProvenanceError):
            loaded.provenance.record("Gene", cells, source="S", operation="edit",
                                     agent="random_user")

    def test_registered_tools_may_write(self, loaded):
        loaded.provenance.register_tool("integration-tool")
        cells = loaded.annotations.cells_for("Gene", tuple_ids=[1])
        annotation = loaded.provenance.record("Gene", cells, source="GenoBase",
                                              operation="copy",
                                              agent="integration-tool")
        assert annotation.curator == "integration-tool"
        loaded.provenance.unregister_tool("integration-tool")
        with pytest.raises(ProvenanceError):
            loaded.provenance.record("Gene", cells, source="GenoBase",
                                     operation="copy", agent="integration-tool")

    def test_provenance_privilege_grants_write(self, loaded):
        loaded.access.grant(["PROVENANCE"], "Gene", "curator")
        cells = loaded.annotations.cells_for("Gene", tuple_ids=[2])
        annotation = loaded.provenance.record("Gene", cells, source="S3",
                                              operation="overwrite", agent="curator")
        assert annotation.category == "provenance"


class TestProvenanceQueries:
    def _load_figure8_history(self, db):
        """Source S2 loads a column, program P1 updates it, S3 overwrites it."""
        column_cells = db.annotations.cells_for("Gene", columns=["GSequence"])
        db.provenance.record("Gene", column_cells, source="S2", operation="copy",
                             time=datetime(2006, 1, 1))
        cell = db.annotations.cells_for("Gene", tuple_ids=[0], columns=["GSequence"])
        db.provenance.record("Gene", cell, source="P1", operation="update",
                             program="P1", time=datetime(2006, 6, 1))
        db.provenance.record("Gene", column_cells, source="S3", operation="overwrite",
                             time=datetime(2007, 1, 1))

    def test_source_at_time_travel(self, loaded):
        self._load_figure8_history(loaded)
        # What is the source of this value at time T?  (Figure 8)
        at_2006_03 = loaded.provenance.source_at("Gene", 0, "GSequence",
                                                 datetime(2006, 3, 1))
        assert at_2006_03.source == "S2"
        at_2006_09 = loaded.provenance.source_at("Gene", 0, "GSequence",
                                                 datetime(2006, 9, 1))
        assert at_2006_09.source == "P1"
        latest = loaded.provenance.source_at("Gene", 0, "GSequence")
        assert latest.source == "S3"

    def test_history_is_chronological(self, loaded):
        self._load_figure8_history(loaded)
        history = loaded.provenance.history("Gene", 0, "GSequence")
        assert [record.source for record in history] == ["S2", "P1", "S3"]

    def test_cell_without_provenance(self, loaded):
        self._load_figure8_history(loaded)
        assert loaded.provenance.source_at("Gene", 0, "GName") is None
        assert loaded.provenance.history("Gene", 1, "GName") == []

    def test_sources_of_table(self, loaded):
        self._load_figure8_history(loaded)
        counts = loaded.provenance.sources_of_table("Gene")
        assert counts == {"S2": 1, "P1": 1, "S3": 1}

    def test_provenance_propagates_with_queries(self, loaded):
        self._load_figure8_history(loaded)
        result = loaded.query("SELECT GID, GSequence FROM Gene ANNOTATION(provenance)")
        bodies = result.annotation_bodies(0, "GSequence")
        assert any("S3" in body for body in bodies)
        # GID carries no provenance in this history.
        assert result.annotation_bodies(0, "GID") == []

    def test_awhere_over_provenance(self, loaded):
        self._load_figure8_history(loaded)
        result = loaded.query(
            "SELECT GID FROM Gene ANNOTATION(provenance) "
            "AWHERE annotation.value LIKE '%P1%'"
        )
        assert result.values() == [("JW1",)]

    def test_no_provenance_table_is_fine(self, loaded):
        assert loaded.provenance.sources_of_table("Gene") == {}
        assert loaded.provenance.records_for_cell("Gene", 0, "GID") == []
