"""Tests for the streaming (Volcano-style) executor and index access paths.

Covers the three PR-2 planner/executor features end to end:

* streaming iterators — ``Database.stream``, lazy pipelines, LIMIT
  short-circuiting, and the ``execution_mode`` knob;
* residual-conjunct pushdown to the lowest covering plan node;
* index access paths — point ``IndexScan`` leaves and index-nested-loop
  joins selected from the registered B-tree / hash indexes, surfaced through
  EXPLAIN.
"""

from __future__ import annotations

import pytest

from repro import Database, EngineConfig, ResultSet, StreamingResultSet
from repro.core.errors import ExecutionError, PlanningError
from repro.planner.plan import (
    format_expression,
    plan_access_paths,
    plan_strategies,
)
from repro.sql.parser import parse_expression


def build_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE gene (gid TEXT PRIMARY KEY, name TEXT, score FLOAT)")
    db.execute("CREATE TABLE protein (pid INTEGER PRIMARY KEY, gid TEXT, "
               "kind TEXT, score FLOAT)")
    for i in range(20):
        db.execute(f"INSERT INTO gene VALUES ('G{i}', 'gene{i}', {i * 1.5})")
    for i in range(60):
        gid = f"'G{i % 25}'" if i % 7 else "NULL"
        db.execute(f"INSERT INTO protein VALUES ({i}, {gid}, 'k{i % 3}', {i * 0.5})")
    return db


@pytest.fixture()
def db() -> Database:
    return build_db()


@pytest.fixture()
def indexed(db) -> Database:
    db.execute("CREATE INDEX ix_protein_gid ON protein (gid) USING btree")
    db.execute("CREATE INDEX ix_gene_gid ON gene (gid) USING hash")
    return db


# ---------------------------------------------------------------------------
# Streaming surface
# ---------------------------------------------------------------------------
class TestStreamingSurface:
    def test_stream_returns_streaming_result(self, db):
        stream = db.stream("SELECT gid FROM gene WHERE score > 3")
        assert isinstance(stream, StreamingResultSet)
        assert stream.columns == ["gid"]
        rows = list(stream)
        assert len(rows) == 17

    def test_stream_fetchmany_then_fetchall(self, db):
        stream = db.stream("SELECT gid FROM gene ORDER BY gid")
        assert stream.fetchmany(0) == []  # must not consume a row
        head = stream.fetchmany(2)
        assert [row.values[0] for row in head] == ["G0", "G1"]
        rest = stream.fetchall()
        assert isinstance(rest, ResultSet)
        assert len(rest) == 18

    def test_stream_rejects_non_queries(self, db):
        with pytest.raises(ExecutionError):
            db.stream("DELETE FROM gene WHERE score > 3")

    def test_stream_checks_privileges_eagerly(self, db):
        db.execute("GRANT SELECT ON protein TO alice")
        from repro.core.errors import AuthorizationError
        with pytest.raises(AuthorizationError):
            db.stream("SELECT gid FROM gene", user="alice")

    def test_unknown_execution_mode_is_rejected(self, db):
        db.config.execution_mode = "turbo"
        with pytest.raises(PlanningError):
            db.query("SELECT gid FROM gene")

    def test_materialized_mode_agrees_with_streaming(self, db):
        query = ("SELECT kind, COUNT(*) AS n FROM protein WHERE pid < 40 "
                 "GROUP BY kind ORDER BY kind")
        streaming = db.query(query).values()
        db.config.execution_mode = "materialized"
        assert db.query(query).values() == streaming

    def test_set_operations_stream(self, db):
        stream = db.stream(
            "SELECT gid FROM gene INTERSECT SELECT gid FROM protein")
        values = sorted(row.values[0] for row in stream)
        assert values == sorted({f"G{i % 25}" for i in range(60)
                                 if i % 7 and i % 25 < 20})


# ---------------------------------------------------------------------------
# Residual pushdown to the lowest covering node
# ---------------------------------------------------------------------------
class TestResidualPushdown:
    def test_non_equi_conjunct_lands_on_join_node(self, db):
        db.explain("SELECT g.gid, p.pid FROM gene g, protein p "
                   "WHERE g.gid = p.gid AND g.score < p.score")
        plan = db.engine.last_plan
        assert plan.filters, "non-equi conjunct should attach to the join"
        assert [format_expression(c) for c in plan.filters] == \
            ["g.score < p.score"]

    def test_three_way_join_filter_attaches_below_root(self, db):
        db.execute("CREATE TABLE sample (sid INTEGER PRIMARY KEY, pid INTEGER)")
        for i in range(10):
            db.execute(f"INSERT INTO sample VALUES ({i}, {i * 2})")
        # The greedy order joins (protein, sample) first; a p/s comparison
        # must land on that lower join, not on the root above gene.
        query = ("SELECT g.gid FROM gene g, protein p, sample s "
                 "WHERE g.gid = p.gid AND p.pid = s.pid AND p.score < s.sid")
        explained = db.explain(query)
        assert "filter: p.score < s.sid" in explained.message
        from repro.planner.plan import JoinPlan, plan_qualifiers
        plan = db.engine.last_plan
        carriers = []

        def walk(node):
            if isinstance(node, JoinPlan):
                if node.filters:
                    carriers.append(node)
                walk(node.left)
                walk(node.right)
        walk(plan)
        assert len(carriers) == 1
        node = carriers[0]
        # The carrier is the *lowest* covering node: it covers {p, s} but
        # neither of its children does.
        assert plan_qualifiers(node) >= {"p", "s"}
        assert not plan_qualifiers(node.left) >= {"p", "s"}
        assert not plan_qualifiers(node.right) >= {"p", "s"}
        assert plan_qualifiers(plan) > plan_qualifiers(node)
        # And the filtered query agrees with the naive pipeline.
        db.config.join_strategy = "nested_loop"
        baseline = sorted(db.query(query).values())
        db.config.join_strategy = "auto"
        assert sorted(db.query(query).values()) == baseline

    def test_where_over_left_join_still_filters_padded_rows(self, db):
        # The conjunct references the nullable side: it attaches AT the LEFT
        # join (evaluated after padding), never below it.
        query = ("SELECT g.gid, p.pid FROM gene g "
                 "LEFT JOIN protein p ON g.gid = p.gid WHERE p.kind = 'k1'")
        db.config.join_strategy = "nested_loop"
        baseline = sorted(db.query(query).values())
        db.config.join_strategy = "auto"
        assert sorted(db.query(query).values()) == baseline
        plan = db.engine.last_plan
        assert [format_expression(c) for c in plan.filters] == ["p.kind = 'k1'"]
        assert not any(value is None for _, value in db.query(query).values())

    def test_unplaceable_conjunct_stays_in_top_residual(self, db):
        explained = db.explain(
            "SELECT g.gid FROM gene g, protein p WHERE g.gid = p.gid AND 1 = 1")
        assert "Residual filter: 1 conjunct(s)" in explained.message


# ---------------------------------------------------------------------------
# Index access paths
# ---------------------------------------------------------------------------
class TestIndexAccessPaths:
    def test_equality_lookup_uses_index_scan(self, indexed):
        explained = indexed.explain(
            "SELECT pid FROM protein WHERE gid = 'G3' AND kind = 'k1'")
        assert "IndexScan protein using ix_protein_gid (gid = 'G3')" \
            in explained.message
        assert "pushed: gid = 'G3' AND kind = 'k1'" in explained.message
        plan_dict = explained.details["plan"]
        assert plan_dict["node"] == "IndexScan"
        assert plan_dict["access_path"] == "index_lookup"
        assert plan_dict["index"] == "ix_protein_gid"

    def test_index_scan_results_match_seq_scan(self, indexed):
        query = "SELECT pid FROM protein WHERE gid = 'G3'"
        with_index = sorted(indexed.query(query).values())
        assert plan_access_paths(indexed.engine.last_plan) == ["index_lookup"]
        indexed.config.use_indexes = False
        try:
            without_index = sorted(indexed.query(query).values())
            assert plan_access_paths(indexed.engine.last_plan) == ["seq"]
        finally:
            indexed.config.use_indexes = True
        assert with_index == without_index
        assert with_index  # G3 matches at least one protein

    def test_cross_type_equality_never_picks_index(self, indexed):
        # gid is TEXT; an integer literal must not be probed into the B-tree.
        indexed.query("SELECT pid FROM protein WHERE gid = 3")
        assert plan_access_paths(indexed.engine.last_plan) == ["seq"]

    def test_null_equality_never_picks_index(self, indexed):
        result = indexed.query("SELECT pid FROM protein WHERE gid = NULL")
        assert plan_access_paths(indexed.engine.last_plan) == ["seq"]
        assert len(result) == 0

    def test_index_join_selected_and_reported(self, indexed):
        explained = indexed.explain(
            "SELECT g.gid, p.pid FROM gene g, protein p WHERE g.gid = p.gid")
        assert "IndexNestedLoopJoin [INNER] on g.gid = p.gid " \
               "using ix_protein_gid" in explained.message
        plan_dict = explained.details["plan"]
        assert plan_dict["node"] == "IndexNestedLoopJoin"
        assert plan_dict["index"] == "ix_protein_gid"

    def test_index_join_respects_pushed_right_filter(self, indexed):
        query = ("SELECT g.gid, p.pid FROM gene g, protein p "
                 "WHERE g.gid = p.gid AND p.kind = 'k1' AND g.score > 3")
        indexed.config.join_strategy = "nested_loop"
        baseline = sorted(indexed.query(query).values())
        indexed.config.join_strategy = "index_nested_loop"
        try:
            candidate = sorted(indexed.query(query).values())
            assert plan_strategies(indexed.engine.last_plan) == ["index_nested_loop"]
        finally:
            indexed.config.join_strategy = "auto"
        assert candidate == baseline

    def test_use_indexes_false_disables_index_paths(self, indexed):
        indexed.config.use_indexes = False
        try:
            indexed.query(
                "SELECT g.gid, p.pid FROM gene g, protein p WHERE g.gid = p.gid")
            assert "index_nested_loop" not in plan_strategies(indexed.engine.last_plan)
            assert set(plan_access_paths(indexed.engine.last_plan)) == {"seq"}
        finally:
            indexed.config.use_indexes = True

    def test_duplicate_key_column_never_picks_index_join(self, db):
        # Regression: two equi-conjuncts on the SAME right column would match
        # a one-column hash index by set-dedup but probe it with a two-value
        # key, silently returning no matches.  Such edges must not take the
        # index path, and results must agree with the naive pipeline.
        db.execute("INSERT INTO gene VALUES ('GX', 'GX', 1.0)")
        db.execute("INSERT INTO protein VALUES (900, 'GX', 'kx', 1.0)")
        db.execute("CREATE INDEX ix_hash_gid ON protein (gid) USING hash")
        query = ("SELECT g.gid, p.pid FROM gene g, protein p "
                 "WHERE g.gid = p.gid AND g.name = p.gid")
        db.config.join_strategy = "nested_loop"
        baseline = sorted(db.query(query).values())
        assert ("GX", 900) in baseline  # the shape must produce real matches
        for strategy in ("auto", "index_nested_loop"):
            db.config.join_strategy = strategy
            try:
                assert sorted(db.query(query).values()) == baseline
                assert "index_nested_loop" not in \
                    plan_strategies(db.engine.last_plan)
            finally:
                db.config.join_strategy = "auto"

    def test_dropped_index_falls_back_to_hash(self, indexed):
        indexed.execute("DROP INDEX ix_protein_gid")
        indexed.query(
            "SELECT g.gid, p.pid FROM gene g, protein p WHERE g.gid = p.gid")
        assert "index_nested_loop" not in plan_strategies(indexed.engine.last_plan)

    def test_index_join_after_dml_sees_fresh_rows(self, indexed):
        indexed.execute("INSERT INTO protein VALUES (990, 'G1', 'kz', 0.1)")
        indexed.execute("UPDATE protein SET gid = 'G2' WHERE pid = 990")
        indexed.execute("DELETE FROM protein WHERE pid = 8")
        query = "SELECT g.gid, p.pid FROM gene g, protein p WHERE g.gid = p.gid"
        indexed.config.join_strategy = "nested_loop"
        baseline = sorted(indexed.query(query).values())
        indexed.config.join_strategy = "index_nested_loop"
        try:
            assert sorted(indexed.query(query).values()) == baseline
        finally:
            indexed.config.join_strategy = "auto"
        assert ("G2", 990) in baseline
        assert all(pid != 8 for _, pid in baseline)


# ---------------------------------------------------------------------------
# LIMIT short-circuiting
# ---------------------------------------------------------------------------
class TestLimitShortCircuit:
    def test_limit_stops_the_scan(self, db, monkeypatch):
        # Row-at-a-time mode: the batched pipeline reads whole pages, so the
        # row-exact guarantee (and this counting hook on Table.scan) applies
        # to execution_mode="row"; the batched laziness guarantee is covered
        # by tests/test_batch_execution.py at page granularity.
        db.config.execution_mode = "row"
        table = db.table("protein")
        scanned = []
        original_scan = type(table).scan

        def counting_scan(self_table):
            for item in original_scan(self_table):
                scanned.append(item[0])
                yield item

        monkeypatch.setattr(type(table), "scan", counting_scan)
        result = db.query("SELECT pid FROM protein LIMIT 5")
        assert len(result) == 5
        assert 0 < len(scanned) <= 5

    def test_limit_with_filter_scans_only_until_satisfied(self, db, monkeypatch):
        db.config.execution_mode = "row"
        table = db.table("protein")
        scanned = []
        original_scan = type(table).scan

        def counting_scan(self_table):
            for item in original_scan(self_table):
                scanned.append(item[0])
                yield item

        monkeypatch.setattr(type(table), "scan", counting_scan)
        # kind = 'k2' matches every third row: 3 matches need ~9 scanned rows.
        result = db.query("SELECT pid FROM protein WHERE kind = 'k2' LIMIT 3")
        assert len(result) == 3
        assert 0 < len(scanned) < 60

    def test_offset_and_limit_agree_with_materialized(self, db):
        query = "SELECT pid FROM protein ORDER BY pid LIMIT 7 OFFSET 5"
        streaming = db.query(query).values()
        db.config.execution_mode = "materialized"
        assert db.query(query).values() == streaming
        assert streaming == [(i,) for i in range(5, 12)]


# ---------------------------------------------------------------------------
# format_expression (EXPLAIN rendering helper)
# ---------------------------------------------------------------------------
class TestFormatExpression:
    @pytest.mark.parametrize("sql, rendered", [
        ("a = 1", "a = 1"),
        ("g.score > 3.5", "g.score > 3.5"),
        ("name LIKE 'x%'", "name LIKE 'x%'"),
        ("a IS NOT NULL", "a IS NOT NULL"),
        ("a IN (1, 2)", "a IN (1, 2)"),
        ("a BETWEEN 1 AND 2", "a BETWEEN 1 AND 2"),
        ("NOT a = 1", "NOT a = 1"),
        ("a = 1 AND (b = 2 OR c = 3)", "a = 1 AND (b = 2 OR c = 3)"),
        ("LENGTH(name) = 4", "LENGTH(name) = 4"),
        ("v = 'it''s'", "v = 'it''s'"),
    ])
    def test_round_trips_readably(self, sql, rendered):
        assert format_expression(parse_expression(sql)) == rendered
