"""Integration scenarios that combine several bdbms features end-to-end.

Each test tells one of the paper's stories across subsystem boundaries:
annotations + provenance + approval + dependency tracking working together on
the same database instance, the way the E. coli / protein-structure projects
that motivated bdbms would use it.
"""

from __future__ import annotations

import random

import pytest

from repro import Database
from repro.workloads import build_gene_protein_pipeline, dna_sequence


class TestCuratedDatabaseLifecycle:
    """Load -> annotate -> curate -> review -> audit, on one database."""

    def test_full_lifecycle(self):
        db = Database()
        rng = random.Random(99)
        build_gene_protein_pipeline(db, num_genes=10, seed=12, with_matching=False)

        # 1. The integration tool records provenance for the loaded genes.
        db.provenance.register_tool("loader")
        cells = db.annotations.cells_for("Gene")
        db.provenance.record("Gene", cells, source="RegulonDB", operation="copy",
                             agent="loader")

        # 2. Users annotate their data through A-SQL.
        db.execute("CREATE ANNOTATION TABLE Comments ON Gene")
        db.execute(
            "ADD ANNOTATION TO Gene.Comments VALUE 'verified by Sanger resequencing' "
            "ON (SELECT G.GSequence FROM Gene G WHERE G.GID = 'JW0000')"
        )

        # 3. Content approval is switched on; a lab member updates a sequence.
        db.execute("GRANT SELECT, UPDATE ON Gene TO alice")
        db.execute("START CONTENT APPROVAL ON Gene COLUMNS GSequence APPROVED BY admin")
        new_sequence = dna_sequence(60, rng)
        db.execute(
            f"UPDATE Gene SET GSequence = '{new_sequence}' WHERE GID = 'JW0001'",
            user="alice",
        )

        # 4. The dependency tracker reacted: PSequence recomputed, PFunction outdated.
        outdated = db.tracker.outdated_report()
        assert "Protein" in outdated and len(outdated["Protein"]) == 1

        # 5. Query answers expose annotations, provenance, and outdated status.
        result = db.query(
            "SELECT GID, GSequence FROM Gene ANNOTATION(provenance, Comments)"
        )
        first_row_tables = {a.annotation_table for a in result.annotations_of(0)}
        assert "Gene.provenance" in first_row_tables
        assert "Gene.Comments" in first_row_tables
        protein_result = db.query("SELECT PName, PFunction FROM Protein")
        assert any("OUTDATED" in body
                   for i in range(len(protein_result))
                   for body in protein_result.annotation_bodies(i))

        # 6. The admin disapproves the update: the inverse statement restores
        #    the sequence and dependency tracking reconciles the protein.
        op = db.approval.pending_operations()[0]
        db.approval.disapprove(op.op_id, "admin")
        restored = db.query("SELECT GSequence FROM Gene WHERE GID = 'JW0001'").values()[0][0]
        assert restored != new_sequence

        # 7. The wet lab revalidates the outdated function measurement.
        for tuple_id, column in db.tracker.outdated_cells("Protein"):
            db.tracker.revalidate("Protein", tuple_id, column)
        assert db.tracker.outdated_report() == {}

        # 8. Audit: provenance still answers "where did this come from".
        record = db.provenance.source_at("Gene", 0, "GSequence")
        assert record.source == "RegulonDB"


class TestAnnotationSchemesAgreeEndToEnd:
    """The two storage schemes are interchangeable at the query level."""

    @pytest.mark.parametrize("scheme", ["naive", "compact"])
    def test_queries_identical_across_schemes(self, scheme):
        from repro import EngineConfig
        db = Database(config=EngineConfig(default_annotation_scheme=scheme))
        db.execute("CREATE TABLE T (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("CREATE ANNOTATION TABLE notes ON T")
        for index in range(20):
            db.execute(f"INSERT INTO T VALUES ({index}, 'value-{index}')")
        db.execute("ADD ANNOTATION TO T.notes VALUE 'whole column' "
                   "ON (SELECT x.v FROM T x)")
        db.execute("ADD ANNOTATION TO T.notes VALUE 'small block' "
                   "ON (SELECT x.* FROM T x WHERE k BETWEEN 3 AND 6)")
        result = db.query("SELECT k, v FROM T ANNOTATION(notes) ORDER BY k")
        per_row = [len(result.annotations_of(i)) for i in range(len(result))]
        expected = [1 if not 3 <= k <= 6 else 2 for k in range(20)]
        assert per_row == expected


class TestPersistenceAcrossIo:
    """File-backed databases count I/O and survive buffer-pool pressure."""

    def test_large_table_with_small_pool(self, tmp_path):
        from repro.executor.engine import EngineConfig
        db = Database(str(tmp_path / "big.db"), pool_size=4)
        db.execute("CREATE TABLE seqs (id INTEGER PRIMARY KEY, body SEQUENCE)")
        rng = random.Random(1)
        for index in range(200):
            db.execute(f"INSERT INTO seqs VALUES ({index}, '{dna_sequence(80, rng)}')")
        assert db.io_statistics().page_writes > 0
        db.reset_io_statistics()
        db.catalog.pool.clear()
        result = db.query("SELECT COUNT(*) FROM seqs")
        assert result.values() == [(200,)]
        # A cold scan of a multi-page table must read more than one page.
        assert db.io_statistics().page_reads > 1
        db.close()


class TestAnnotateThenDependencyInteraction:
    def test_outdated_annotations_coexist_with_user_annotations(self):
        db = Database()
        build_gene_protein_pipeline(db, num_genes=6, seed=3, with_matching=False)
        db.execute("CREATE ANNOTATION TABLE Notes ON Protein")
        db.execute("ADD ANNOTATION TO Protein.Notes VALUE 'reviewed 2026' "
                   "ON (SELECT P.* FROM Protein P)")
        db.execute("UPDATE Gene SET GSequence = 'ATGATGATG' WHERE GID = 'JW0002'")
        result = db.query("SELECT PName, PFunction FROM Protein ANNOTATION(Notes)")
        # Every row has the user annotation; exactly one also has the system
        # outdated annotation.
        has_outdated = 0
        for index in range(len(result)):
            bodies = result.annotation_bodies(index)
            assert any("reviewed 2026" in body for body in bodies)
            if any("OUTDATED" in body for body in bodies):
                has_outdated += 1
        assert has_outdated == 1
