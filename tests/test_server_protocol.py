"""Wire protocol and server front-end behavior: framing, value encoding,
handshake/auth, result fetching, admission knobs, and error surfaces.

Uses real sockets against a threaded in-process server (the same harness
the quickstart and benchmarks use); pure encode/decode helpers are tested
directly.
"""

from __future__ import annotations

from datetime import datetime

import pytest

import repro.client
from repro.annotations.model import Annotation
from repro.core.errors import (
    IntegrityError,
    OperationalError,
    ProgrammingError,
)
from repro.server import DatabaseServer, ServerConfig, protocol, start_server


@pytest.fixture
def server():
    handle = start_server()
    yield handle
    handle.shutdown()


@pytest.fixture
def conn(server):
    connection = repro.client.connect(port=server.port)
    yield connection
    connection.close()


# ---------------------------------------------------------------------------
# Framing and value encoding (no sockets)
# ---------------------------------------------------------------------------
class TestFraming:
    def test_frame_roundtrip(self):
        message = {"op": "execute", "sql": "SELECT 1", "params": []}
        frame = protocol.encode_frame(message)
        length = protocol.read_length(frame[:4])
        assert length == len(frame) - 4
        assert protocol.decode_payload(frame[4:]) == message

    def test_oversized_length_is_rejected(self):
        frame = protocol.encode_frame({"op": "x"})
        with pytest.raises(protocol.ProtocolError):
            protocol.read_length(frame[:4], limit=1)

    def test_truncated_prefix_is_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.read_length(b"\x00\x00")

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_payload(b"[1, 2, 3]")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_payload(b"\xff\xfe not json")

    def test_value_tags_roundtrip(self):
        stamp = datetime(2024, 5, 17, 12, 30, 45, 123456)
        values = (None, True, 42, 3.5, "text", stamp, b"\x00\xffbin")
        assert protocol.decode_values(
            protocol.encode_values(values)) == values

    def test_unknown_tag_is_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_value({"$nope": 1})

    def test_annotation_roundtrip(self):
        annotation = Annotation(
            ann_id=7, annotation_table="lab.notes", body="<b>checked</b>",
            curator="alice", created_at=datetime(2023, 1, 2, 3, 4, 5),
            archived=True, category="provenance")
        decoded = protocol.decode_annotation(
            protocol.encode_annotation(annotation))
        assert decoded == annotation
        assert decoded.body == annotation.body
        assert decoded.curator == "alice"
        assert decoded.archived is True
        assert decoded.category == "provenance"

    def test_row_roundtrip_with_annotations(self):
        annotation = Annotation(1, "t.n", "note",
                                created_at=datetime(2023, 1, 1))
        values, annotations = protocol.decode_row(
            protocol.encode_row((1, "x"), [{annotation}, set()]))
        assert values == (1, "x")
        assert annotations == [{annotation}, set()]

    def test_row_without_annotations_has_no_vector(self):
        encoded = protocol.encode_row((1, 2), None)
        assert "a" not in encoded
        assert protocol.decode_row(encoded) == ((1, 2), None)


# ---------------------------------------------------------------------------
# Handshake and authentication
# ---------------------------------------------------------------------------
class TestHandshake:
    def test_hello_reports_protocol_and_session(self, conn):
        assert conn.protocol_version == protocol.PROTOCOL_VERSION
        assert isinstance(conn.session_id, int)

    def test_wrong_token_is_rejected(self):
        server = start_server(config=ServerConfig(auth_token="sesame"))
        try:
            with pytest.raises(OperationalError) as excinfo:
                repro.client.connect(port=server.port, token="wrong")
            assert excinfo.value.code == "auth_failed"
            assert excinfo.value.retryable is False
            with pytest.raises(OperationalError):
                repro.client.connect(port=server.port)  # missing token
            good = repro.client.connect(port=server.port, token="sesame")
            assert good.execute("SELECT 1").fetchone()[0] == 1
            good.close()
        finally:
            server.shutdown()

    def test_non_hello_first_frame_is_rejected(self, server):
        import socket
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=5)
        try:
            sock.sendall(protocol.encode_frame({"op": "execute",
                                                "sql": "SELECT 1"}))
            prefix = sock.recv(4)
            length = protocol.read_length(prefix)
            response = protocol.decode_payload(sock.recv(length))
            assert response["ok"] is False
            assert "hello" in response["error"]["message"]
        finally:
            sock.close()

    def test_unknown_op_is_an_error_response(self, conn):
        with pytest.raises(OperationalError) as excinfo:
            conn.request({"op": "teleport"})
        assert "teleport" in str(excinfo.value)

    def test_users_are_enforced_by_the_engine(self, server):
        admin = repro.client.connect(port=server.port, user="admin")
        admin.execute("CREATE TABLE secrets (id INTEGER PRIMARY KEY)")
        guest = repro.client.connect(port=server.port, user="guest")
        with pytest.raises(OperationalError):
            guest.execute("DROP TABLE secrets")
        admin.close()
        guest.close()


# ---------------------------------------------------------------------------
# Results and fetching
# ---------------------------------------------------------------------------
class TestFetch:
    @pytest.fixture
    def seeded(self, conn):
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        conn.cursor().executemany("INSERT INTO t VALUES (?, ?)",
                                  [(i, f"v{i}") for i in range(500)])
        return conn

    def test_fetch_in_batches_preserves_order(self, seeded):
        cur = seeded.execute("SELECT id FROM t ORDER BY id")
        cur.arraysize = 7
        seen = []
        while True:
            batch = cur.fetchmany()
            if not batch:
                break
            seen.extend(row[0] for row in batch)
        assert seen == list(range(500))

    def test_fetchall_after_partial_fetch(self, seeded):
        cur = seeded.execute("SELECT id FROM t ORDER BY id")
        first = cur.fetchmany(10)
        rest = cur.fetchall()
        assert [r[0] for r in first] == list(range(10))
        assert [r[0] for r in rest] == list(range(10, 500))

    def test_result_is_freed_after_drain(self, seeded, server):
        cur = seeded.execute("SELECT id FROM t")
        cur.fetchall()
        # The server auto-freed the result; a raw fetch against the old id
        # must fail rather than replay rows.
        with pytest.raises(OperationalError):
            seeded.request({"op": "fetch", "result_id": 1, "count": 10})

    def test_interleaved_cursors_keep_separate_results(self, seeded):
        cur_a = seeded.execute("SELECT id FROM t WHERE id < 10 ORDER BY id")
        cur_b = seeded.execute("SELECT id FROM t WHERE id >= 490 ORDER BY id")
        assert cur_a.fetchone()[0] == 0
        assert cur_b.fetchone()[0] == 490
        assert [r[0] for r in cur_a.fetchall()] == list(range(1, 10))
        assert [r[0] for r in cur_b.fetchall()] == list(range(491, 500))

    def test_max_open_results_is_enforced(self, server):
        config_server = start_server(
            config=ServerConfig(max_open_results=2))
        try:
            conn = repro.client.connect(port=config_server.port)
            conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            conn.execute("INSERT INTO t VALUES (1), (2), (3)")
            held = [conn.cursor().execute("SELECT id FROM t")
                    for _ in range(2)]
            with pytest.raises(OperationalError) as excinfo:
                conn.cursor().execute("SELECT id FROM t")
            assert excinfo.value.code == "too_many_results"
            held[0].fetchall()  # drains and frees one slot
            conn.cursor().execute("SELECT id FROM t").fetchall()
            conn.close()
        finally:
            config_server.shutdown()

    def test_timestamps_cross_the_wire(self, conn):
        conn.execute("CREATE TABLE ev (id INTEGER PRIMARY KEY, at TIMESTAMP)")
        stamp = datetime(2024, 2, 29, 23, 59, 59)
        conn.execute("INSERT INTO ev VALUES (?, ?)", (1, stamp))
        row = conn.execute("SELECT at FROM ev WHERE id = 1").fetchone()
        assert row[0] == stamp

    def test_stats_op_reports_counters(self, conn, server):
        conn.execute("SELECT 1").fetchall()
        response = conn.request({"op": "stats"})
        stats = response["stats"]
        assert stats["connections_accepted"] >= 1
        assert stats["requests_served"] >= 1
        assert stats["active_connections"] >= 1


# ---------------------------------------------------------------------------
# Error surfaces
# ---------------------------------------------------------------------------
class TestErrors:
    def test_pep249_classes_survive_the_wire(self, conn):
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        conn.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ProgrammingError):
            conn.execute("SELEKT 1")
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT nope FROM t")

    def test_errors_do_not_poison_the_session(self, conn):
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT nope FROM t")
        conn.execute("INSERT INTO t VALUES (1)")
        assert conn.execute("SELECT id FROM t").fetchone()[0] == 1

    def test_transaction_error_in_explicit_txn(self, conn):
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        cur = conn.cursor()
        cur.execute("BEGIN")
        with pytest.raises(OperationalError):
            cur.execute("DROP TABLE t")  # not undoable inside a txn
        conn.rollback()


# ---------------------------------------------------------------------------
# Server lifecycle
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_server_over_borrowed_database(self):
        db = repro.Database()
        db.connect().execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        server = DatabaseServer(db).start_in_thread()
        try:
            conn = repro.client.connect(port=server.port)
            conn.execute("INSERT INTO t VALUES (7)")
            conn.close()
        finally:
            server.shutdown()
        # Borrowed database stays open and reflects the server-side write.
        rows = db.connect().execute("SELECT id FROM t").fetchall()
        assert [r[0] for r in rows] == [7]

    def test_file_backed_server_persists(self, tmp_path):
        path = str(tmp_path / "served.db")
        server = start_server(path=path)
        try:
            conn = repro.client.connect(port=server.port)
            conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            conn.execute("INSERT INTO t VALUES (1)")
            conn.close()
        finally:
            server.shutdown()
        db = repro.Database(path)
        assert [r[0] for r in
                db.connect().execute("SELECT id FROM t").fetchall()] == [1]
        db.close()

    def test_connection_close_is_idempotent(self, server):
        conn = repro.client.connect(port=server.port)
        conn.close()
        conn.close()
        with pytest.raises(repro.client.NetworkConnection.InterfaceError):
            conn.cursor()
