"""Transactions: BEGIN/COMMIT/ROLLBACK semantics, atomicity, and locking.

Durability and crash recovery are exercised separately in
``test_wal_recovery.py``; these tests cover the in-memory transaction
semantics — rollback via before-images (rows, schema, annotations, outdated
bitmaps), statement atomicity, the explicit-transaction statement
restrictions, and the single-writer lock.
"""

from __future__ import annotations

import threading

import pytest

import repro
from repro import Database
from repro.core.errors import IntegrityError, OperationalError, TransactionError


def ids(db, sql="SELECT id FROM t"):
    return sorted(row[0] for row in db.connect().execute(sql).fetchall())


@pytest.fixture
def txn_db() -> Database:
    database = Database()
    conn = database.connect()
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    conn.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
    return database


# ---------------------------------------------------------------------------
# SQL surface
# ---------------------------------------------------------------------------
class TestSqlStatements:
    def test_begin_commit_makes_changes_visible(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (3, 'three')")
        conn.execute("COMMIT")
        assert ids(txn_db) == [1, 2, 3]

    def test_begin_transaction_keyword_is_optional(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN TRANSACTION")
        conn.execute("ROLLBACK TRANSACTION")
        assert not txn_db.in_transaction

    def test_rollback_discards_insert(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (3, 'three')")
        conn.execute("ROLLBACK")
        assert ids(txn_db) == [1, 2]

    def test_rollback_restores_update_and_delete(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        conn.execute("UPDATE t SET v = 'changed' WHERE id = 1")
        conn.execute("DELETE FROM t WHERE id = 2")
        conn.execute("ROLLBACK")
        rows = dict(conn.execute("SELECT id, v FROM t").fetchall())
        assert rows == {1: "one", 2: "two"}

    def test_commit_without_transaction_raises(self, txn_db):
        with pytest.raises(OperationalError):
            txn_db.connect().execute("COMMIT")

    def test_rollback_without_transaction_raises(self, txn_db):
        with pytest.raises(OperationalError):
            txn_db.connect().execute("ROLLBACK")

    def test_nested_begin_raises(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        with pytest.raises(OperationalError):
            conn.execute("BEGIN")
        conn.execute("ROLLBACK")

    def test_transaction_spans_statements_until_commit(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        for i in range(3, 7):
            conn.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        # Uncommitted rows are visible to this (READ UNCOMMITTED) reader...
        assert ids(txn_db) == [1, 2, 3, 4, 5, 6]
        conn.execute("ROLLBACK")
        # ...and all gone together after rollback.
        assert ids(txn_db) == [1, 2]


# ---------------------------------------------------------------------------
# Rollback of schema and bdbms state
# ---------------------------------------------------------------------------
class TestRollbackRestoresState:
    def test_rollback_undoes_create_table(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        conn.execute("CREATE TABLE fresh (id INTEGER PRIMARY KEY)")
        conn.execute("INSERT INTO fresh VALUES (1)")
        conn.execute("ROLLBACK")
        assert "fresh" not in [name.lower() for name in txn_db.table_names()]

    def test_rollback_undoes_create_index(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        conn.execute("CREATE INDEX idx_v ON t (v)")
        conn.execute("ROLLBACK")
        assert "idx_v" not in txn_db.indexes.index_names()

    def test_rollback_undoes_annotation_table_and_annotations(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        conn.execute("CREATE ANNOTATION TABLE note ON t")
        conn.execute("ADD ANNOTATION TO t.note VALUE 'suspect' "
                     "ON (SELECT v FROM t WHERE id = 1)")
        conn.execute("ROLLBACK")
        assert txn_db.annotations.tables_for("t") == []

    def test_rollback_restores_annotations_of_existing_table(self, txn_db):
        conn = txn_db.connect()
        conn.execute("CREATE ANNOTATION TABLE note ON t")
        conn.execute("ADD ANNOTATION TO t.note VALUE 'kept' "
                     "ON (SELECT v FROM t WHERE id = 1)")
        conn.execute("BEGIN")
        conn.execute("ADD ANNOTATION TO t.note VALUE 'discarded' "
                     "ON (SELECT v FROM t WHERE id = 2)")
        conn.execute("ROLLBACK")
        rows = conn.execute("SELECT id, v FROM t ANNOTATION(note)").fetchall()
        notes = {row[0]: sorted(a.body for anns in row.annotations
                                for a in anns)
                 for row in rows}
        assert len(notes[1]) == 1 and "kept" in notes[1][0]
        assert notes[2] == []

    def test_rollback_restores_outdated_bitmap(self, txn_db):
        db = txn_db
        db.tracker.register_instance_dependency(
            ("t", 0, "id"), ("t", 1, "v"), "manual curation")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("UPDATE t SET id = 9 WHERE id = 1")
        assert db.tracker.is_outdated("t", 1, "v")
        conn.execute("ROLLBACK")
        assert not db.tracker.is_outdated("t", 1, "v")

    def test_failed_statement_inside_transaction_is_undone(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (3, 'three')")
        with pytest.raises(IntegrityError):
            # Multi-row statement: second row violates the primary key, so
            # the whole statement (including its first row) must be undone.
            conn.execute("INSERT INTO t VALUES (4, 'four'), (3, 'dup')")
        conn.execute("COMMIT")
        assert ids(txn_db) == [1, 2, 3]

    def test_autocommitted_statement_is_atomic(self, txn_db):
        conn = txn_db.connect()
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO t VALUES (4, 'four'), (4, 'dup')")
        assert ids(txn_db) == [1, 2]


# ---------------------------------------------------------------------------
# Statements an explicit transaction may not contain
# ---------------------------------------------------------------------------
class TestExplicitTransactionRestrictions:
    @pytest.mark.parametrize("sql", [
        "DROP TABLE t",
        "DROP INDEX nothing",
        "DROP ANNOTATION TABLE note ON t",
        "GRANT SELECT ON t TO alice",
        "REVOKE SELECT ON t FROM alice",
        "START CONTENT APPROVAL ON t APPROVED BY admin",
        "STOP CONTENT APPROVAL ON t",
    ])
    def test_rejected_inside_transaction(self, txn_db, sql):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        with pytest.raises(OperationalError):
            conn.execute(sql)
        conn.execute("ROLLBACK")

    def test_drop_table_works_autocommitted(self, txn_db):
        txn_db.connect().execute("DROP TABLE t")
        assert txn_db.table_names() == []


# ---------------------------------------------------------------------------
# Python API and connection lifecycle
# ---------------------------------------------------------------------------
class TestDatabaseApi:
    def test_in_transaction_property(self, txn_db):
        assert not txn_db.in_transaction
        txn_db.begin()
        assert txn_db.in_transaction
        txn_db.rollback()
        assert not txn_db.in_transaction

    def test_begin_commit_via_python_api(self, txn_db):
        txn_db.begin()
        txn_db.connect().execute("INSERT INTO t VALUES (3, 'three')")
        txn_db.commit()
        assert ids(txn_db) == [1, 2, 3]

    def test_rollback_returns_whether_anything_was_open(self, txn_db):
        assert txn_db.rollback() is False
        txn_db.begin()
        assert txn_db.rollback() is True

    def test_direct_table_writes_are_transactional(self, txn_db):
        txn_db.begin()
        table = txn_db.table("t")
        table.insert_row({"id": 7, "v": "direct"})
        txn_db.rollback()
        assert ids(txn_db) == [1, 2]

    def test_closing_shared_connection_rolls_back(self, txn_db):
        conn = txn_db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (3, 'three')")
        conn.close()
        assert not txn_db.in_transaction
        assert ids(txn_db) == [1, 2]

    def test_transaction_error_maps_to_operational_error(self):
        assert issubclass(TransactionError, repro.Error) or issubclass(
            OperationalError, repro.Error)


# ---------------------------------------------------------------------------
# Single-writer locking
# ---------------------------------------------------------------------------
class TestWriteLock:
    def test_second_writer_blocks_until_commit(self, txn_db):
        order = []
        started = threading.Event()

        txn_db.begin()
        txn_db.connect().execute("INSERT INTO t VALUES (3, 'three')")

        def other_writer():
            conn = txn_db.connect()
            started.set()
            conn.execute("INSERT INTO t VALUES (4, 'four')")
            order.append("writer")

        thread = threading.Thread(target=other_writer)
        thread.start()
        started.wait()
        thread.join(timeout=0.2)
        assert thread.is_alive(), "second writer should block on the lock"
        order.append("commit")
        txn_db.commit()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert order == ["commit", "writer"]
        assert ids(txn_db) == [1, 2, 3, 4]

    def test_reader_is_not_blocked_by_open_transaction(self, txn_db):
        txn_db.begin()
        txn_db.connect().execute("INSERT INTO t VALUES (3, 'three')")
        results = []

        def reader():
            results.append(ids(txn_db))

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=5)
        assert not thread.is_alive()
        txn_db.rollback()
        # READ UNCOMMITTED: the reader saw the in-flight row.
        assert results == [[1, 2, 3]]
