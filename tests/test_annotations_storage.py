"""Tests for the two annotation linkage storage schemes (Figures 3 and 5)."""

from __future__ import annotations

import pytest

from repro.annotations.model import cells_for_columns, cells_for_tuples
from repro.annotations.storage import (
    SCHEME_COMPACT,
    SCHEME_NAIVE,
    CompactRegionStore,
    NaiveCellStore,
    create_linkage_store,
)
from repro.catalog.catalog import SystemCatalog
from repro.core.errors import AnnotationError


@pytest.fixture
def catalog():
    return SystemCatalog()


def make_store(catalog, scheme, name="linkage"):
    return create_linkage_store(scheme, catalog, f"__test_{scheme}_{name}")


class TestSchemeFactory:
    def test_known_schemes(self, catalog):
        assert isinstance(make_store(catalog, SCHEME_NAIVE), NaiveCellStore)
        assert isinstance(make_store(catalog, SCHEME_COMPACT, "c"), CompactRegionStore)

    def test_unknown_scheme(self, catalog):
        with pytest.raises(AnnotationError):
            create_linkage_store("fancy", catalog, "__x")


class TestNaiveCellStore:
    def test_one_record_per_cell(self, catalog):
        store = make_store(catalog, SCHEME_NAIVE)
        cells = cells_for_columns([1], range(10))  # whole column, 10 tuples
        written = store.attach(7, cells)
        assert written == 10
        assert store.record_count() == 10

    def test_lookup_and_cells_of(self, catalog):
        store = make_store(catalog, SCHEME_NAIVE)
        store.attach(1, {(0, 0), (0, 1)})
        store.attach(2, {(0, 1), (3, 2)})
        index = store.load_index()
        assert index.lookup(0, 1) == {1, 2}
        assert index.lookup(3, 2) == {2}
        assert index.lookup(9, 9) == set()
        assert store.cells_of(2) == {(0, 1), (3, 2)}
        assert index.annotated_tuple_ids() == {0, 3}

    def test_detach(self, catalog):
        store = make_store(catalog, SCHEME_NAIVE)
        store.attach(1, {(0, 0), (1, 0)})
        assert store.detach(1) == 2
        assert store.record_count() == 0


class TestCompactRegionStore:
    def test_column_annotation_is_single_record(self, catalog):
        store = make_store(catalog, SCHEME_COMPACT)
        cells = cells_for_columns([2], range(100))
        written = store.attach(5, cells)
        assert written == 1
        assert store.record_count() == 1

    def test_tuple_annotation_is_single_record(self, catalog):
        store = make_store(catalog, SCHEME_COMPACT)
        written = store.attach(9, cells_for_tuples([4, 5, 6], num_columns=3))
        assert written == 1

    def test_lookup_matches_naive_semantics(self, catalog):
        compact = make_store(catalog, SCHEME_COMPACT, "a")
        naive = make_store(catalog, SCHEME_NAIVE, "b")
        cells = cells_for_columns([0, 1], range(5)) | {(9, 2)}
        compact.attach(3, cells)
        naive.attach(3, cells)
        compact_index = compact.load_index()
        naive_index = naive.load_index()
        for tuple_id in range(12):
            for column in range(4):
                assert compact_index.lookup(tuple_id, column) == \
                    naive_index.lookup(tuple_id, column)

    def test_cells_of_roundtrip(self, catalog):
        store = make_store(catalog, SCHEME_COMPACT)
        cells = {(0, 0), (1, 0), (2, 0), (7, 3)}
        store.attach(11, cells)
        assert store.cells_of(11) == cells

    def test_compact_uses_fewer_records_for_coarse_annotations(self, catalog):
        compact = make_store(catalog, SCHEME_COMPACT, "x")
        naive = make_store(catalog, SCHEME_NAIVE, "y")
        cells = cells_for_columns([1], range(200))
        compact.attach(1, cells)
        naive.attach(1, cells)
        assert compact.record_count() < naive.record_count()
        assert compact.record_count() == 1
        assert naive.record_count() == 200

    def test_scattered_cells_degrade_gracefully(self, catalog):
        store = make_store(catalog, SCHEME_COMPACT)
        cells = {(tid * 2, tid % 3) for tid in range(10)}  # nothing contiguous
        store.attach(1, cells)
        index = store.load_index()
        for tuple_id, column in cells:
            assert 1 in index.lookup(tuple_id, column)
