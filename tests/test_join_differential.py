"""Differential tests: every join strategy must agree with the naive path.

The cost-based planner (hash / sort-merge / index-nested-loop joins, greedy
reordering, residual pushdown into the join tree) and the streaming executor
must be *observationally equivalent* to the naive pipeline (cross products +
residual filter, ``join_strategy="nested_loop"`` with every operator output
materialized) — same row multisets and the same propagated annotations per
row.  Each query shape below runs under every (strategy, execution mode)
combination — with and without covering secondary indexes — and is compared
against the materialized nested-loop baseline.  A tracemalloc test proves
that the streaming pipeline gives ``LIMIT`` O(limit), not O(n), peak memory.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro import Database, EngineConfig
from repro.planner.plan import plan_strategies


def build_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE gene (gid TEXT PRIMARY KEY, name TEXT, score FLOAT)")
    db.execute("CREATE TABLE protein (pid INTEGER PRIMARY KEY, gid TEXT, kind TEXT, "
               "score FLOAT)")
    db.execute("CREATE ANNOTATION TABLE gnote ON gene")
    db.execute("CREATE ANNOTATION TABLE pnote ON protein")
    for i in range(12):
        db.execute(f"INSERT INTO gene VALUES ('G{i}', 'gene{i}', {i * 1.5})")
    for i in range(30):
        # Some genes match several proteins, some none; some proteins dangle.
        gid = f"'G{i % 15}'" if i % 5 else "NULL"
        db.execute(f"INSERT INTO protein VALUES ({i}, {gid}, 'k{i % 3}', {i * 0.5})")
    db.execute("ADD ANNOTATION TO gene.gnote VALUE 'curated gene' "
               "ON (SELECT g.gid FROM gene g WHERE g.score > 6)")
    db.execute("ADD ANNOTATION TO gene.gnote VALUE 'reviewed' "
               "ON (SELECT g.name FROM gene g WHERE g.gid = 'G3')")
    db.execute("ADD ANNOTATION TO protein.pnote VALUE 'predicted protein' "
               "ON (SELECT p.kind FROM protein p WHERE p.pid < 10)")
    return db


QUERY_SHAPES = {
    "equi_join": (
        "SELECT g.gid, g.score, p.pid FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p WHERE g.gid = p.gid"
    ),
    "equi_join_with_filters": (
        "SELECT g.gid, p.pid, p.kind FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p "
        "WHERE g.gid = p.gid AND g.score > 3 AND p.kind = 'k1'"
    ),
    "non_equi_join": (
        "SELECT g.gid, p.pid FROM gene g, protein p "
        "WHERE g.score < p.score AND p.pid < 8"
    ),
    "self_join_aliases": (
        "SELECT a.gid, b.gid FROM gene ANNOTATION(gnote) a, gene b "
        "WHERE a.gid = b.gid AND a.score <= b.score"
    ),
    "three_way_join": (
        "SELECT a.gid, p.pid, b.name FROM gene a, protein p, gene b "
        "WHERE a.gid = p.gid AND p.gid = b.gid"
    ),
    "join_with_awhere": (
        "SELECT g.gid, p.pid FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p WHERE g.gid = p.gid "
        "AWHERE annotation.value LIKE '%curated%'"
    ),
    "join_with_group_by": (
        "SELECT g.gid, COUNT(*), SUM(p.score) FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p WHERE g.gid = p.gid GROUP BY g.gid"
    ),
    "explicit_inner_join": (
        "SELECT g.gid, p.pid FROM gene ANNOTATION(gnote) g "
        "JOIN protein ANNOTATION(pnote) p ON g.gid = p.gid AND p.pid > 3"
    ),
    "explicit_left_join": (
        "SELECT g.gid, p.pid FROM gene ANNOTATION(gnote) g "
        "LEFT JOIN protein p ON g.gid = p.gid AND p.kind = 'k0'"
    ),
    "cross_product_with_residual": (
        "SELECT g.gid, p.pid FROM gene g, protein p "
        "WHERE LENGTH(g.gid) + p.pid = 4"
    ),
    "range_filter_join": (
        "SELECT g.gid, g.score, p.pid FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p "
        "WHERE g.gid = p.gid AND g.score > 14 AND p.score < 12"
    ),
    "range_between_order": (
        "SELECT g.gid, g.score FROM gene ANNOTATION(gnote) g "
        "WHERE g.score BETWEEN 13 AND 16 ORDER BY g.score"
    ),
    "distinct_order": (
        "SELECT DISTINCT p.kind, g.gid FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p WHERE g.gid = p.gid "
        "ORDER BY p.kind, g.gid"
    ),
}

STRATEGIES = ("auto", "hash", "merge")
#: With covering indexes present, the index-nested-loop path joins the matrix.
INDEXED_STRATEGIES = ("auto", "hash", "merge", "index_nested_loop")
#: "streaming" is the batched (vectorized) pipeline, "row" the row-at-a-time
#: pipeline, "materialized" the drained baseline.
MODES = ("streaming", "row", "materialized")
#: Batch sizes the vectorized pipeline must be invariant under: degenerate
#: one-row batches, a tiny ramp, and the full default.
BATCH_SIZES = (1, 2, 1024)


def canonical(result):
    """Order-independent form of a result: values + per-column annotations."""
    rows = []
    for row in result.rows:
        annotations = tuple(
            tuple(sorted((a.annotation_table, a.ann_id) for a in anns))
            for anns in row.annotations
        )
        rows.append((row.values, annotations))
    return sorted(rows, key=repr)


def run_query(db: Database, query: str, strategy: str, mode: str,
              batch_size: int = 1024):
    """Run one query under a forced (strategy, mode, batch size) triple."""
    db.config.join_strategy = strategy
    db.config.execution_mode = mode
    db.config.batch_size = batch_size
    try:
        return db.query(query)
    finally:
        db.config.join_strategy = "auto"
        db.config.execution_mode = "streaming"
        db.config.batch_size = 1024


def materialized_baseline(db: Database, query: str):
    """The differential reference: naive pipeline, every stage materialized."""
    return canonical(run_query(db, query, "nested_loop", "materialized"))


@pytest.fixture(scope="module")
def diff_db() -> Database:
    return build_db()


@pytest.fixture(scope="module")
def indexed_db() -> Database:
    db = build_db()
    db.execute("CREATE INDEX ix_gene_gid ON gene (gid) USING btree")
    db.execute("CREATE INDEX ix_protein_gid ON protein (gid) USING btree")
    db.execute("CREATE INDEX ix_protein_kind ON protein (kind) USING hash")
    db.execute("CREATE INDEX ix_gene_score ON gene (score) USING btree")
    return db


@pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("mode", MODES)
def test_strategy_agrees_with_nested_loop(diff_db, shape, strategy, mode):
    query = QUERY_SHAPES[shape]
    baseline = materialized_baseline(diff_db, query)
    candidate = canonical(run_query(diff_db, query, strategy, mode))
    assert candidate == baseline


@pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batched_execution_invariant_under_batch_size(diff_db, shape, strategy,
                                                      batch_size):
    """The vectorized pipeline must return identical rows *and* annotations
    at every batch size — one-row batches exercise the ramp edges, the full
    default the fused comprehension paths."""
    query = QUERY_SHAPES[shape]
    baseline = materialized_baseline(diff_db, query)
    candidate = canonical(run_query(diff_db, query, strategy, "streaming",
                                    batch_size))
    assert candidate == baseline


@pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
@pytest.mark.parametrize("strategy", INDEXED_STRATEGIES)
@pytest.mark.parametrize("mode", MODES)
def test_indexed_strategy_agrees_with_nested_loop(indexed_db, shape, strategy,
                                                  mode):
    """With covering indexes the planner may pick index scans, range scans,
    and index-nested-loop joins; rows *and* annotations must still match the
    materialized nested-loop baseline in every execution mode."""
    query = QUERY_SHAPES[shape]
    baseline = materialized_baseline(indexed_db, query)
    candidate = canonical(run_query(indexed_db, query, strategy, mode))
    assert candidate == baseline


def test_indexed_auto_picks_index_nested_loop(indexed_db):
    indexed_db.config.join_strategy = "auto"
    indexed_db.query(QUERY_SHAPES["equi_join"])
    assert "index_nested_loop" in plan_strategies(indexed_db.engine.last_plan)
    explained = indexed_db.explain(QUERY_SHAPES["equi_join"])
    assert "IndexNestedLoopJoin" in explained.message


def test_indexed_auto_picks_range_scan_and_elides_sort(indexed_db):
    """The matrix genuinely exercises IndexRangeScan plans: the BETWEEN +
    ORDER BY shape runs off the score index with the sort elided."""
    from repro.planner.plan import plan_access_paths
    indexed_db.config.join_strategy = "auto"
    indexed_db.query(QUERY_SHAPES["range_between_order"])
    assert "index_range" in plan_access_paths(indexed_db.engine.last_plan)
    assert indexed_db.engine.last_sort_elided
    explained = indexed_db.explain(QUERY_SHAPES["range_between_order"])
    assert "IndexRangeScan" in explained.message
    assert "[sort: elided]" in explained.message
    # The returned order matches the explicit sort of the naive pipeline.
    ordered = run_query(indexed_db, QUERY_SHAPES["range_between_order"],
                        "auto", "streaming").values()
    baseline = run_query(indexed_db, QUERY_SHAPES["range_between_order"],
                         "nested_loop", "materialized").values()
    assert ordered == baseline


def test_forced_index_join_on_left_join(indexed_db):
    """LEFT joins run through the index probe with correct NULL padding."""
    query = QUERY_SHAPES["explicit_left_join"]
    baseline = materialized_baseline(indexed_db, query)
    candidate = canonical(run_query(indexed_db, query, "index_nested_loop",
                                    "streaming"))
    assert candidate == baseline
    indexed_db.config.join_strategy = "index_nested_loop"
    try:
        indexed_db.query(query)
        assert plan_strategies(indexed_db.engine.last_plan) == ["index_nested_loop"]
    finally:
        indexed_db.config.join_strategy = "auto"


def test_indexed_differential_with_dml_between_runs():
    """Index maintenance (insert/delete/update, NULL keys) must keep the
    index-backed paths in lock-step with the naive pipeline."""
    db = build_db()
    db.execute("CREATE INDEX ix_protein_gid ON protein (gid) USING btree")
    db.execute("DELETE FROM protein WHERE pid >= 25")
    db.execute("INSERT INTO protein VALUES (99, 'G1', 'k9', 9.9)")
    db.execute("INSERT INTO protein VALUES (100, NULL, 'k9', 1.0)")
    db.execute("UPDATE protein SET gid = 'G2' WHERE pid = 99")
    db.execute("UPDATE protein SET gid = NULL WHERE pid = 3")
    query = QUERY_SHAPES["equi_join"]
    baseline = materialized_baseline(db, query)
    for strategy in INDEXED_STRATEGIES:
        assert canonical(run_query(db, query, strategy, "streaming")) == baseline


@pytest.fixture(scope="module")
def wide_db() -> Database:
    """A 100k-row table for the streaming-memory proof."""
    db = Database()
    db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY, v FLOAT)")
    table = db.table("big")
    for i in range(100_000):
        table.insert_row({"id": i, "v": i * 0.5})
    return db


def test_limit_over_large_scan_peaks_at_o_limit_memory(wide_db):
    """SELECT ... LIMIT 10 over 100k rows must stop the scan early: the
    streaming pipeline's peak allocation is orders of magnitude below the
    materialized pipeline's, and small in absolute terms (O(limit) rows plus
    fixed per-query overhead, not O(n) materialized intermediates)."""
    query = "SELECT id FROM big WHERE v >= 0 LIMIT 10"

    def peak(mode: str) -> int:
        wide_db.config.execution_mode = mode
        tracemalloc.start()
        try:
            result = wide_db.query(query)
            _, peak_bytes = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
            wide_db.config.execution_mode = "streaming"
        assert len(result) == 10
        return peak_bytes

    materialized_peak = peak("materialized")
    streaming_peak = peak("streaming")
    assert streaming_peak < materialized_peak / 20
    assert streaming_peak < 8 * 1024 * 1024


def test_stream_is_lazy_and_short_circuits(wide_db):
    """Database.stream produces rows on demand: pulling a handful of rows
    must not scan the whole 100k-row table.  Row mode gives the row-exact
    guarantee via Table.scan; the batched default is checked at its own
    granularity (pages decoded) below."""
    wide_db.config.execution_mode = "row"
    scanned = 0
    original_scan = type(wide_db.table("big")).scan

    def counting_scan(self):
        nonlocal scanned
        for item in original_scan(self):
            scanned += 1
            yield item

    table_cls = type(wide_db.table("big"))
    table_cls.scan = counting_scan
    try:
        stream = wide_db.stream("SELECT id FROM big")
        first_three = [next(stream) for _ in range(3)]
    finally:
        table_cls.scan = original_scan
        wide_db.config.execution_mode = "streaming"
    assert [row.values for row in first_three] == [(0,), (1,), (2,)]
    assert 0 < scanned <= 3


def test_batched_stream_decodes_lazily(wide_db, monkeypatch):
    """The batched pipeline's laziness unit is the page: pulling a handful
    of rows from a 100k-row stream decodes at most a couple of pages."""
    from repro.storage.heap_file import HeapFile
    pages = []
    original = HeapFile.scan_page_rows

    def counting(self, page_id, with_tuple_ids=True):
        pages.append(page_id)
        return original(self, page_id, with_tuple_ids)

    monkeypatch.setattr(HeapFile, "scan_page_rows", counting)
    stream = wide_db.stream("SELECT id FROM big WHERE v >= 0")
    first_three = [next(stream) for _ in range(3)]
    assert [row.values for row in first_three] == [(0,), (1,), (2,)]
    assert 0 < len(pages) <= 2


# ---------------------------------------------------------------------------
# Spilling rows of the matrix: tiny memory budgets force every pipeline
# breaker (hash-join build, GROUP BY, DISTINCT, sort) through the temp-file
# partition/run machinery; values AND annotations must survive the
# serialize/partition/merge round trip in every mode and batch size.
# ---------------------------------------------------------------------------
#: Budgets of roughly one and a few batches at the tiny differential sizes.
SPILL_BUDGETS = (2, 7)
#: Shapes that exercise every spilling operator: hash join (equi/3-way/LEFT),
#: GROUP BY, DISTINCT + ORDER BY, and a plain sorted scan.
SPILL_SHAPES = ("equi_join", "three_way_join", "explicit_left_join",
                "join_with_group_by", "distinct_order", "range_between_order")


def run_with_budget(db: Database, query: str, strategy: str, mode: str,
                    budget: int, batch_size: int = 1024):
    db.config.memory_budget_rows = budget
    try:
        return run_query(db, query, strategy, mode, batch_size)
    finally:
        db.config.memory_budget_rows = None


@pytest.mark.parametrize("shape", SPILL_SHAPES)
@pytest.mark.parametrize("strategy", ("auto", "hash"))
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("budget", SPILL_BUDGETS)
def test_spilling_agrees_with_in_memory_baseline(diff_db, shape, strategy,
                                                 mode, budget):
    query = QUERY_SHAPES[shape]
    baseline = materialized_baseline(diff_db, query)
    candidate = canonical(run_with_budget(diff_db, query, strategy, mode,
                                          budget))
    assert candidate == baseline


@pytest.mark.parametrize("shape", SPILL_SHAPES)
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_spilling_invariant_under_batch_size(diff_db, shape, batch_size):
    query = QUERY_SHAPES[shape]
    baseline = materialized_baseline(diff_db, query)
    candidate = canonical(run_with_budget(diff_db, query, "hash", "streaming",
                                          budget=2, batch_size=batch_size))
    assert candidate == baseline


def test_spill_budgets_actually_spill(diff_db):
    """The spilling rows are only meaningful if the temp-file paths really
    run: each operator family must report spill activity at budget 2."""
    run_with_budget(diff_db, QUERY_SHAPES["equi_join"], "hash", "streaming", 2)
    assert diff_db.engine.last_spill.events("hash_join")
    run_with_budget(diff_db, QUERY_SHAPES["join_with_group_by"], "hash",
                    "streaming", 2)
    assert diff_db.engine.last_spill.events("group_by")
    run_with_budget(diff_db, QUERY_SHAPES["distinct_order"], "hash",
                    "streaming", 2)
    spilled = {event["operator"]
               for event in diff_db.engine.last_spill.operators}
    assert "distinct" in spilled and "sort" in spilled


def test_forced_strategies_actually_differ(diff_db):
    """The harness is only meaningful if the paths diverge physically."""
    query = QUERY_SHAPES["equi_join"]
    observed = {}
    for strategy in ("nested_loop", "hash", "merge", "auto"):
        diff_db.config.join_strategy = strategy
        diff_db.query(query)
        observed[strategy] = plan_strategies(diff_db.engine.last_plan)
    diff_db.config.join_strategy = "auto"
    assert observed["hash"] == ["hash"]
    assert observed["merge"] == ["merge"]
    assert observed["nested_loop"] == ["cross"]
    assert observed["auto"] == ["hash"]


def test_auto_falls_back_to_nested_loop_for_non_equi(diff_db):
    diff_db.config.join_strategy = "auto"
    diff_db.query(QUERY_SHAPES["non_equi_join"])
    assert plan_strategies(diff_db.engine.last_plan) == ["cross"]


def test_analyze_improves_join_order(diff_db):
    """With statistics, the smaller (more selective) side becomes the build."""
    diff_db.config.join_strategy = "auto"
    diff_db.execute("ANALYZE gene")
    diff_db.execute("ANALYZE protein")
    explained = diff_db.explain(QUERY_SHAPES["equi_join_with_filters"])
    plan = explained.details["plan"]
    assert plan["node"] == "HashJoin"
    # Both scans carry their pushed conjunct counts in the dump.
    scans = [plan["left"], plan["right"]]
    assert {s["node"] for s in scans} == {"Scan"}
    assert sum(s["pushed_conjuncts"] for s in scans) == 2


def test_differential_with_dml_between_runs():
    """Statistics staleness hooks must not change results, only estimates."""
    db = build_db()
    db.execute("ANALYZE")
    db.execute("DELETE FROM protein WHERE pid >= 25")
    db.execute("INSERT INTO protein VALUES (99, 'G1', 'k9', 9.9)")
    query = QUERY_SHAPES["equi_join"]
    db.config.join_strategy = "nested_loop"
    baseline = canonical(db.query(query))
    for strategy in STRATEGIES:
        db.config.join_strategy = strategy
        assert canonical(db.query(query)) == baseline


def test_where_on_left_join_nullable_side_filters_padded_rows():
    """Standard SQL: a WHERE predicate on the nullable side of a LEFT JOIN
    is evaluated after the join, so NULL-padded rows fail it — the predicate
    must not be pushed below the join."""
    db = Database()
    db.execute("CREATE TABLE l (id INTEGER PRIMARY KEY)")
    db.execute("CREATE TABLE r (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO l VALUES (1), (2)")
    db.execute("INSERT INTO r VALUES (1, 1)")
    query = "SELECT l.id, r.v FROM l LEFT JOIN r ON l.id = r.id WHERE r.v = 1"
    for strategy in ("nested_loop", "hash", "merge", "auto"):
        db.config.join_strategy = strategy
        assert sorted(db.query(query).values()) == [(1, 1)], strategy
    # Without the WHERE, the padded row is still produced.
    db.config.join_strategy = "auto"
    padded = db.query("SELECT l.id, r.v FROM l LEFT JOIN r ON l.id = r.id")
    assert sorted(padded.values(), key=repr) == [(1, 1), (2, None)]


def test_select_star_column_order_survives_reordering():
    """Join reordering must not leak into the SELECT * column order."""
    db = Database()
    db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY, bval TEXT)")
    db.execute("CREATE TABLE small (id INTEGER PRIMARY KEY, sval TEXT)")
    for i in range(20):
        db.execute(f"INSERT INTO big VALUES ({i}, 'b{i}')")
    for i in range(3):
        db.execute(f"INSERT INTO small VALUES ({i}, 's{i}')")
    # The greedy planner starts from ``small`` and hash-builds on it, even
    # though ``big`` comes first syntactically.
    query = "SELECT * FROM big, small WHERE big.id = small.id"
    db.config.join_strategy = "nested_loop"
    baseline = db.query(query)
    db.config.join_strategy = "auto"
    candidate = db.query(query)
    assert candidate.columns == baseline.columns == ["id", "bval", "id", "sval"]
    assert sorted(candidate.values()) == sorted(baseline.values())
    assert canonical(candidate) == canonical(baseline)


def test_nan_join_keys_agree_across_strategies():
    """NaN keys must behave identically under every strategy (NaN = NaN
    matches, NaN never equals a real number)."""
    db = Database()
    db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, x FLOAT)")
    db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, y FLOAT)")
    nan = float("nan")
    for i, value in enumerate([nan, 1.0, 2.0]):
        db.table("a").insert_row({"id": i, "x": value})
    for i, value in enumerate([2.0, nan, nan]):
        db.table("b").insert_row({"id": i, "y": value})
    query = "SELECT a.id, b.id FROM a, b WHERE a.x = b.y"
    results = {}
    for strategy in ("nested_loop", "hash", "merge", "auto"):
        db.config.join_strategy = strategy
        results[strategy] = sorted(db.query(query).values())
    # One real match (2.0 = 2.0) plus NaN = NaN pairs.
    assert results["nested_loop"] == [(0, 1), (0, 2), (2, 0)]
    for strategy in ("hash", "merge", "auto"):
        assert results[strategy] == results["nested_loop"]


def test_mixed_type_join_keys_stay_on_nested_loop():
    """TEXT-vs-INTEGER equality is not hashable/mergeable (string-form
    comparison is non-transitive), so the planner must not lift it."""
    db = Database()
    db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, v TEXT)")
    db.execute("CREATE TABLE b (code TEXT PRIMARY KEY, w TEXT)")
    db.execute("INSERT INTO a VALUES (1, 'x'), (2, 'y')")
    db.execute("INSERT INTO b VALUES ('1', 'p'), ('3', 'q')")
    query = "SELECT a.id, b.code FROM a, b WHERE a.id = b.code"
    db.config.join_strategy = "nested_loop"
    baseline = canonical(db.query(query))
    db.config.join_strategy = "auto"
    assert canonical(db.query(query)) == baseline
    assert plan_strategies(db.engine.last_plan) == ["cross"]


# ---------------------------------------------------------------------------
# Parameterized differential: cursor.execute(sql, params) vs inlined literals
# ---------------------------------------------------------------------------
#: Each shape is (parameterized SQL, bound values, literal-inlined SQL); the
#: two texts must be observationally equivalent — same row multisets AND the
#: same propagated annotations — under every (strategy, mode, batch size)
#: combination, executed twice so the second run exercises the cached plan.
PARAMETERIZED_SHAPES = {
    "param_equi_join_filters": (
        "SELECT g.gid, p.pid, p.kind FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p "
        "WHERE g.gid = p.gid AND g.score > ? AND p.kind = ?",
        (3, "k1"),
        QUERY_SHAPES["equi_join_with_filters"],
    ),
    "param_between_order": (
        "SELECT g.gid, g.score FROM gene ANNOTATION(gnote) g "
        "WHERE g.score BETWEEN ? AND ? ORDER BY g.score",
        (13, 16),
        QUERY_SHAPES["range_between_order"],
    ),
    "param_projection_in_like": (
        "SELECT g.gid, g.score + ?, p.pid FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p "
        "WHERE g.gid = p.gid AND p.kind IN (?, ?) AND g.name LIKE ?",
        (10, "k0", "k2", "gene%"),
        "SELECT g.gid, g.score + 10, p.pid FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p "
        "WHERE g.gid = p.gid AND p.kind IN ('k0', 'k2') AND g.name LIKE 'gene%'",
    ),
    "param_group_having": (
        "SELECT g.gid, COUNT(*), SUM(p.score + ?) FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p WHERE g.gid = p.gid AND p.score < ? "
        "GROUP BY g.gid HAVING COUNT(*) >= ?",
        (1, 12, 1),
        "SELECT g.gid, COUNT(*), SUM(p.score + 1) FROM gene ANNOTATION(gnote) g, "
        "protein ANNOTATION(pnote) p WHERE g.gid = p.gid AND p.score < 12 "
        "GROUP BY g.gid HAVING COUNT(*) >= 1",
    ),
}


def run_cursor_query(db: Database, sql: str, params, strategy: str,
                     mode: str, batch_size: int = 1024):
    """One cursor execution under a forced (strategy, mode, batch) triple."""
    from types import SimpleNamespace
    db.config.join_strategy = strategy
    db.config.execution_mode = mode
    db.config.batch_size = batch_size
    try:
        rows = db.connect().cursor().execute(sql, params).fetchall()
        return SimpleNamespace(rows=rows)
    finally:
        db.config.join_strategy = "auto"
        db.config.execution_mode = "streaming"
        db.config.batch_size = 1024


@pytest.mark.parametrize("shape", sorted(PARAMETERIZED_SHAPES))
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("batch_size", (1, 1024))
def test_cursor_parameters_match_inlined_literals(diff_db, shape, strategy,
                                                  mode, batch_size):
    sql, params, literal_sql = PARAMETERIZED_SHAPES[shape]
    expected = canonical(run_query(diff_db, literal_sql, strategy, mode,
                                   batch_size))
    first = canonical(run_cursor_query(diff_db, sql, params, strategy, mode,
                                       batch_size))
    assert first == expected
    # Second execution reuses the cached plan — must stay equivalent.
    second = canonical(run_cursor_query(diff_db, sql, params, strategy, mode,
                                        batch_size))
    assert second == expected


@pytest.mark.parametrize("shape", sorted(PARAMETERIZED_SHAPES))
def test_cursor_parameters_with_indexes_match_baseline(indexed_db, shape):
    sql, params, literal_sql = PARAMETERIZED_SHAPES[shape]
    expected = materialized_baseline(indexed_db, literal_sql)
    for strategy in INDEXED_STRATEGIES:
        got = canonical(run_cursor_query(indexed_db, sql, params, strategy,
                                         "streaming"))
        assert got == expected, f"strategy {strategy} diverged"
