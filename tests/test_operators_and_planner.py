"""Unit tests for annotated rows, physical operators, and planner utilities."""

from __future__ import annotations

import pytest

from repro.annotations.model import Annotation
from repro.core.errors import PlanningError
from repro.executor.row import ColumnInfo, OutputSchema, ResultSet, Row, merge_annotation_vectors
from repro.executor import operators as ops
from repro.planner.expressions import AnnotationPredicate, Evaluator, predicate_is_true
from repro.planner.planner import (
    combine_conjuncts,
    equality_lookups,
    lookup_value,
    push_down_conjuncts,
    referenced_columns,
    split_conjuncts,
)
from repro.sql import ast
from repro.sql.parser import parse_expression


def ann(i, body="note", table="T.A", **kwargs):
    return Annotation(i, table, body, **kwargs)


def make_relation():
    schema = OutputSchema([ColumnInfo("gid", "g"), ColumnInfo("score", "g")])
    rows = [
        Row(("JW1", 10), [{ann(1, "first")}, set()]),
        Row(("JW2", 20), [set(), {ann(2, "second")}]),
        Row(("JW2", 20), [{ann(3, "third")}, set()]),
    ]
    return schema, rows


def rows_of(relation):
    """Drain a streaming relation's row iterator (operators are lazy now)."""
    return list(relation[1])


class TestOutputSchema:
    def test_resolution_with_and_without_qualifier(self):
        schema = OutputSchema([ColumnInfo("gid", "g"), ColumnInfo("gid", "p")])
        assert schema.resolve("gid", "p") == 1
        with pytest.raises(PlanningError):
            schema.resolve("gid")  # ambiguous
        with pytest.raises(PlanningError):
            schema.resolve("missing")

    def test_try_resolve(self):
        schema = OutputSchema([ColumnInfo("a")])
        assert schema.try_resolve("a") == 0
        assert schema.try_resolve("b") is None

    def test_concat_and_positions(self):
        left = OutputSchema.from_names(["a", "b"], "x")
        right = OutputSchema.from_names(["c"], "y")
        combined = left.concat(right)
        assert combined.names == ["a", "b", "c"]
        assert combined.positions_for_qualifier("y") == [2]


class TestRow:
    def test_annotation_vector_length_checked(self):
        with pytest.raises(PlanningError):
            Row((1, 2), [set()])

    def test_all_annotations_and_concat(self):
        row = Row((1, 2), [{ann(1)}, {ann(2)}])
        assert len(row.all_annotations()) == 2
        other = Row((3,), [{ann(3)}])
        combined = row.concat(other)
        assert combined.values == (1, 2, 3)
        assert len(combined.annotations) == 3

    def test_merge_annotation_vectors(self):
        rows = [Row((1,), [{ann(1)}]), Row((1,), [{ann(2)}])]
        merged = merge_annotation_vectors(rows, 1)
        assert merged[0] == {ann(1), ann(2)}


class TestOperators:
    def test_filter_rows(self):
        relation = make_relation()
        predicate = parse_expression("score > 15")
        rows = rows_of(ops.filter_rows(relation, predicate))
        assert len(rows) == 2

    def test_project_keeps_only_projected_annotations(self):
        relation = make_relation()
        items = [ast.SelectItem(ast.ColumnRef("gid", "g"))]
        schema, row_iter = ops.project(relation, items)
        rows = list(row_iter)
        assert schema.names == ["gid"]
        assert rows[0].annotations[0] == {ann(1)}
        assert rows[1].annotations[0] == set()

    def test_project_star_with_qualifier(self):
        relation = make_relation()
        schema, row_iter = ops.project(relation, [ast.SelectItem(ast.Star("g"))])
        rows = list(row_iter)
        assert schema.names == ["gid", "score"]
        with pytest.raises(PlanningError):
            ops.project(relation, [ast.SelectItem(ast.Star("zzz"))])

    def test_distinct_unions_annotations(self):
        relation = make_relation()
        rows = rows_of(ops.distinct(relation))
        assert len(rows) == 2
        duplicate = [row for row in rows if row.values == ("JW2", 20)][0]
        assert duplicate.all_annotations() == {ann(2), ann(3)}

    def test_awhere_and_filter_annotations(self):
        relation = make_relation()
        condition = parse_expression("annotation.value LIKE '%second%'")
        rows = rows_of(ops.awhere_filter(relation, condition))
        assert [row.values for row in rows] == [("JW2", 20)]
        filtered = rows_of(ops.filter_annotations(relation, condition))
        assert len(filtered) == 3
        assert filtered[0].all_annotations() == set()
        assert filtered[1].all_annotations() == {ann(2)}

    def test_union_intersect_except_semantics(self):
        schema = OutputSchema([ColumnInfo("v")])
        left = (schema, [Row(("a",), [{ann(1)}]), Row(("b",), [set()])])
        right = (schema, [Row(("a",), [{ann(2)}]), Row(("c",), [set()])])
        union_rows = rows_of(ops.union(left, right))
        assert {row.values for row in union_rows} == {("a",), ("b",), ("c",)}
        merged = [row for row in union_rows if row.values == ("a",)][0]
        assert merged.all_annotations() == {ann(1), ann(2)}
        inter_rows = rows_of(ops.intersect(left, right))
        assert [row.values for row in inter_rows] == [("a",)]
        assert inter_rows[0].all_annotations() == {ann(1), ann(2)}
        except_rows = rows_of(ops.except_(left, right))
        assert [row.values for row in except_rows] == [("b",)]

    def test_nested_loop_left_join(self):
        left = (OutputSchema([ColumnInfo("k")]), [Row(("x",)), Row(("y",))])
        right = (OutputSchema([ColumnInfo("k2")]), [Row(("x",))])
        condition = parse_expression("k = k2")
        rows = rows_of(ops.nested_loop_join(left, right, condition, "LEFT"))
        assert (("x", "x")) in [row.values for row in rows]
        assert ("y", None) in [row.values for row in rows]

    def _join_inputs(self):
        left = (OutputSchema([ColumnInfo("k", "l"), ColumnInfo("lv", "l")]),
                [Row(("x", 1), [{ann(1)}, set()]),
                 Row(("y", 2)),
                 Row((None, 3)),
                 Row(("x", 4))])
        right = (OutputSchema([ColumnInfo("k", "r"), ColumnInfo("rv", "r")]),
                 [Row(("x", 10), [set(), {ann(2)}]),
                  Row(("z", 20)),
                  Row((None, 30))])
        return left, right

    def _key_refs(self):
        return [ast.ColumnRef("k", "l")], [ast.ColumnRef("k", "r")]

    def test_hash_join_matches_nested_loop(self):
        left, right = self._join_inputs()
        condition = parse_expression("l.k = r.k")
        expected = ops.materialize(ops.nested_loop_join(left, right, condition))
        left_keys, right_keys = self._key_refs()
        schema, row_iter = ops.hash_join(left, right, left_keys, right_keys)
        rows = list(row_iter)
        assert sorted(r.values for r in rows) == sorted(r.values for r in expected[1])
        # Annotations flow through from both sides.
        joined = rows[0]
        assert joined.all_annotations() >= {ann(2)}

    def test_merge_join_matches_nested_loop(self):
        left, right = self._join_inputs()
        condition = parse_expression("l.k = r.k")
        expected = ops.materialize(ops.nested_loop_join(left, right, condition))
        left_keys, right_keys = self._key_refs()
        rows = rows_of(ops.merge_join(left, right, left_keys, right_keys))
        assert sorted(r.values for r in rows) == sorted(r.values for r in expected[1])

    def test_hash_and_merge_left_join_padding(self):
        left, right = self._join_inputs()
        condition = parse_expression("l.k = r.k")
        expected = ops.materialize(ops.nested_loop_join(left, right, condition, "LEFT"))
        left_keys, right_keys = self._key_refs()
        for join in (ops.hash_join, ops.merge_join):
            rows = rows_of(join(left, right, left_keys, right_keys, "LEFT"))
            assert sorted(map(repr, (r.values for r in rows))) == \
                sorted(map(repr, (r.values for r in expected[1])))

    def test_hash_join_residual_condition(self):
        left, right = self._join_inputs()
        left_keys, right_keys = self._key_refs()
        residual = parse_expression("lv < 4")
        rows = rows_of(ops.hash_join(left, right, left_keys, right_keys,
                                     "INNER", residual))
        assert [r.values for r in rows] == [("x", 1, "x", 10)]

    def test_hash_join_requires_keys(self):
        left, right = self._join_inputs()
        with pytest.raises(PlanningError):
            ops.hash_join(left, right, [], [])

    def test_order_and_limit(self):
        relation = make_relation()
        ordered = ops.materialize(ops.order_by(relation, [ast.OrderItem(ast.ColumnRef("score"), False)]))
        assert [row.values[1] for row in ordered[1]] == [20, 20, 10]
        limited = ops.materialize(ops.limit_offset(ordered, 1, 1))
        assert len(limited[1]) == 1


class TestEvaluator:
    def test_compile_and_evaluate(self):
        schema = OutputSchema([ColumnInfo("a"), ColumnInfo("b")])
        evaluator = Evaluator(schema)
        row = Row((3, 4))
        assert evaluator.evaluate(parse_expression("a * b + 1"), row) == 13
        assert evaluator.evaluate(parse_expression("a || b"), row) == "34"
        assert evaluator.evaluate(parse_expression("a IS NULL"), row) is False
        assert predicate_is_true(evaluator.evaluate(parse_expression("a < b"), row))

    def test_null_propagation(self):
        schema = OutputSchema([ColumnInfo("a")])
        evaluator = Evaluator(schema)
        row = Row((None,))
        assert evaluator.evaluate(parse_expression("a + 1"), row) is None
        assert evaluator.evaluate(parse_expression("a = 1"), row) is None
        assert evaluator.evaluate(parse_expression("a = 1 OR TRUE"), row) is True

    def test_annotation_predicate_fields(self):
        annotation = ann(1, "<Annotation>x</Annotation>", curator="alice",
                         category="comment")
        assert AnnotationPredicate(
            parse_expression("annotation.curator = 'alice'")).matches(annotation)
        assert AnnotationPredicate(
            parse_expression("annotation.table LIKE 'T.%'")).matches(annotation)
        assert not AnnotationPredicate(
            parse_expression("annotation.archived = TRUE")).matches(annotation)
        with pytest.raises(PlanningError):
            AnnotationPredicate(parse_expression("other.field = 1")).matches(annotation)


class TestPlannerUtilities:
    def test_split_and_combine_conjuncts(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        conjuncts = split_conjuncts(expr)
        assert len(conjuncts) == 3
        rebuilt = combine_conjuncts(conjuncts)
        assert len(split_conjuncts(rebuilt)) == 3
        assert split_conjuncts(None) == []
        assert combine_conjuncts([]) is None

    def test_referenced_columns(self):
        expr = parse_expression("g.gid = p.gid AND LENGTH(g.name) > 3")
        refs = referenced_columns(expr)
        assert {(r.table, r.name) for r in refs} == {("g", "gid"), ("p", "gid"), ("g", "name")}

    def test_push_down_partitions_single_table_conjuncts(self):
        where = parse_expression("g.gid = p.gid AND g.score > 1 AND p.kind = 'x'")
        refs = [ast.TableRef("gene", alias="g"), ast.TableRef("protein", alias="p")]
        resolvable = {"g": {"gid", "score"}, "p": {"gid", "kind"}}
        pushed, residual = push_down_conjuncts(where, refs, resolvable)
        assert len(pushed["g"]) == 1
        assert len(pushed["p"]) == 1
        assert len(residual) == 1  # the join predicate

    def test_equality_lookups(self):
        conjuncts = split_conjuncts(parse_expression("gid = 'JW1' AND 3 = score AND a > 1"))
        lookups = equality_lookups(conjuncts)
        assert lookups == {(None, "gid"): "JW1", (None, "score"): 3}
        assert lookup_value(lookups, "gid") == "JW1"
        assert lookup_value(lookups, "score", "any_table") == 3

    def test_equality_lookups_keep_table_qualifier(self):
        # Regression: a qualified lookup like ``a.id = 1`` used to be keyed
        # by the bare column name, so a join partner ``b`` with its own
        # ``id`` column would wrongly pick up the lookup.
        conjuncts = split_conjuncts(parse_expression("a.id = 1 AND B.kind = 'x'"))
        lookups = equality_lookups(conjuncts)
        assert lookups == {("a", "id"): 1, ("b", "kind"): "x"}
        assert lookup_value(lookups, "id", "a") == 1
        assert lookup_value(lookups, "id", "b") is None
        assert lookup_value(lookups, "id") is None
        assert lookup_value(lookups, "kind", "b", default="n/a") == "x"

    def test_push_down_ambiguous_unqualified_column_stays_residual(self):
        # ``id`` exists in both tables: the conjunct cannot be attributed to
        # either scan and must stay in the residual list.
        where = parse_expression("id = 1 AND a.score > 2")
        refs = [ast.TableRef("left_t", alias="a"), ast.TableRef("right_t", alias="b")]
        resolvable = {"a": {"id", "score"}, "b": {"id", "kind"}}
        pushed, residual = push_down_conjuncts(where, refs, resolvable)
        assert pushed["a"] == [parse_expression("a.score > 2")]
        assert pushed["b"] == []
        assert residual == [parse_expression("id = 1")]

    def test_push_down_zero_column_conjunct_stays_residual(self):
        where = parse_expression("1 = 1 AND score > 2")
        refs = [ast.TableRef("t")]
        resolvable = {"t": {"score"}}
        pushed, residual = push_down_conjuncts(where, refs, resolvable)
        assert pushed["t"] == [parse_expression("score > 2")]
        assert residual == [parse_expression("1 = 1")]

    def test_push_down_mixed_case_qualifiers(self):
        where = parse_expression("G.Score > 2 AND P.KIND = 'x'")
        refs = [ast.TableRef("gene", alias="g"), ast.TableRef("protein", alias="P")]
        resolvable = {"g": {"score"}, "p": {"kind"}}
        pushed, residual = push_down_conjuncts(where, refs, resolvable)
        assert len(pushed["g"]) == 1
        assert len(pushed["p"]) == 1
        assert residual == []

    def test_push_down_unknown_qualifier_stays_residual(self):
        where = parse_expression("zzz.score > 2")
        refs = [ast.TableRef("gene", alias="g")]
        resolvable = {"g": {"score"}}
        pushed, residual = push_down_conjuncts(where, refs, resolvable)
        assert pushed["g"] == []
        assert len(residual) == 1
