"""Tests for DML execution, DDL, secondary indexes, and privilege checks."""

from __future__ import annotations

import pytest

from repro import Database
from repro.core.errors import (
    AuthorizationError,
    CatalogError,
    ConstraintViolationError,
    ExecutionError,
)


class TestDdl:
    def test_create_and_drop_table(self, db):
        db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)")
        assert "t" in db.table_names()
        db.execute("DROP TABLE t")
        assert "t" not in db.table_names()

    def test_drop_table_removes_annotation_tables(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("CREATE ANNOTATION TABLE notes ON t")
        db.execute("DROP TABLE t")
        assert not db.annotations.has("t", "notes")

    def test_create_table_requires_superuser(self, db):
        with pytest.raises(AuthorizationError):
            db.execute("CREATE TABLE t (a INTEGER)", user="random_user")


class TestInsert:
    def test_positional_and_named_insert(self, db):
        db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT, c FLOAT)")
        summary = db.execute("INSERT INTO t VALUES (1, 'x', 0.5)")
        assert summary.rows_affected == 1
        db.execute("INSERT INTO t (a, b) VALUES (2, 'y')")
        assert db.query("SELECT c FROM t WHERE a = 2").values() == [(None,)]

    def test_multi_row_insert(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        summary = db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert summary.rows_affected == 3

    def test_primary_key_violation(self, db):
        db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t (a, b) VALUES (1)")


class TestUpdateDelete:
    def test_update_with_expression(self, simple_db):
        summary = simple_db.execute("UPDATE samples SET score = score + 10 WHERE category = 'control'")
        assert summary.rows_affected == 2
        assert simple_db.query("SELECT score FROM samples WHERE id = 1").values() == [(10.5,)]

    def test_update_all_rows(self, simple_db):
        summary = simple_db.execute("UPDATE samples SET category = 'all'")
        assert summary.rows_affected == 5

    def test_delete_with_predicate(self, simple_db):
        summary = simple_db.execute("DELETE FROM samples WHERE score < 1")
        assert summary.rows_affected == 1
        assert len(simple_db.query("SELECT * FROM samples")) == 4

    def test_delete_everything(self, simple_db):
        simple_db.execute("DELETE FROM samples")
        assert len(simple_db.query("SELECT * FROM samples")) == 0


class TestPrivileges:
    def test_dml_requires_grant(self, simple_db):
        with pytest.raises(AuthorizationError):
            simple_db.execute("INSERT INTO samples VALUES (9, 'x', 0.0, 'c')",
                              user="intruder")
        with pytest.raises(AuthorizationError):
            simple_db.query("SELECT * FROM samples", user="intruder")

    def test_grant_enables_and_revoke_disables(self, simple_db):
        simple_db.execute("GRANT SELECT, INSERT ON samples TO alice")
        alice = simple_db.session("alice")
        alice.execute("INSERT INTO samples VALUES (10, 'zeta', 5.0, 'treated')")
        assert len(alice.query("SELECT * FROM samples")) == 6
        simple_db.execute("REVOKE INSERT ON samples FROM alice")
        with pytest.raises(AuthorizationError):
            alice.execute("INSERT INTO samples VALUES (11, 'eta', 6.0, 'treated')")

    def test_grant_requires_superuser(self, simple_db):
        with pytest.raises(AuthorizationError):
            simple_db.execute("GRANT SELECT ON samples TO bob", user="mallory")

    def test_checks_can_be_disabled(self):
        from repro import EngineConfig
        database = Database(config=EngineConfig(check_privileges=False))
        database.execute("CREATE TABLE t (a INTEGER)", user="anyone")
        database.execute("INSERT INTO t VALUES (1)", user="anyone")
        assert len(database.query("SELECT * FROM t", user="anyone")) == 1


class TestSecondaryIndexes:
    def test_create_index_and_lookup(self, simple_db):
        simple_db.execute("CREATE INDEX idx_name ON samples (name) USING btree")
        tuple_ids = simple_db.indexes.lookup("idx_name", "gamma")
        assert len(tuple_ids) == 1
        assert simple_db.table("samples").read_cell(tuple_ids[0], "id") == 3

    def test_index_maintained_on_dml(self, simple_db):
        simple_db.execute("CREATE INDEX idx_name ON samples (name) USING hash")
        simple_db.execute("INSERT INTO samples VALUES (6, 'zeta', 9.9, 'treated')")
        assert len(simple_db.indexes.lookup("idx_name", "zeta")) == 1
        simple_db.execute("UPDATE samples SET name = 'omega' WHERE id = 6")
        assert simple_db.indexes.lookup("idx_name", "zeta") == []
        assert len(simple_db.indexes.lookup("idx_name", "omega")) == 1
        simple_db.execute("DELETE FROM samples WHERE id = 6")
        assert simple_db.indexes.lookup("idx_name", "omega") == []

    def test_drop_index(self, simple_db):
        simple_db.execute("CREATE INDEX idx_name ON samples (name)")
        simple_db.execute("DROP INDEX idx_name")
        assert simple_db.indexes.index_names() == []


class TestDatabaseFacade:
    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2); "
            "SELECT COUNT(*) FROM t"
        )
        assert len(results) == 3
        assert results[-1].values() == [(2,)]

    def test_query_rejects_non_queries(self, db):
        with pytest.raises(ExecutionError):
            db.query("CREATE TABLE t (a INTEGER)")

    def test_unknown_table_error(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM missing")

    def test_file_backed_database(self, tmp_path):
        path = str(tmp_path / "bio.db")
        with Database(path) as database:
            database.execute("CREATE TABLE t (a INTEGER)")
            database.execute("INSERT INTO t VALUES (1)")
            assert database.io_statistics().page_writes >= 0

    def test_io_statistics_reset(self, simple_db):
        simple_db.reset_io_statistics()
        assert simple_db.io_statistics().total_io == 0
