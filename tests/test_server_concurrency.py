"""Concurrency correctness: the reader-writer isolation layer, a randomized
differential suite driving N network clients against a serial oracle, torn-
read detection across commits, and shared-state hammer tests.

The differential suite is the core check: every client performs a seeded
random stream of inserts/updates/deletes/annotations/transactions over its
own disjoint primary-key range, recording exactly the statements that
committed.  Replaying those statements serially into a fresh in-process
database must produce bit-identical table contents and annotation bodies —
any lost update, dirty write, or torn commit shows up as a diff.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
import repro.client
from repro.core.errors import Error, TransactionError, TransactionTimeoutError
from repro.core.transactions import (
    ReaderWriterLock,
    current_scope,
    session_scope,
)
from repro.server import ServerConfig, start_server

A = ("session", "a")
B = ("session", "b")


def retry(fn, timeout=120.0):
    """Re-submit on the documented retryable rejections (``server_busy``,
    ``lock_timeout``) with backoff; anything else propagates."""
    deadline = time.monotonic() + timeout
    pause = 0.005
    while True:
        try:
            return fn()
        except Error as exc:
            if not getattr(exc, "retryable", False):
                raise
            if time.monotonic() >= deadline:
                raise AssertionError(
                    f"retryable rejection never cleared: {exc}") from exc
            time.sleep(pause)
            pause = min(pause * 1.5, 0.25)


# ---------------------------------------------------------------------------
# ReaderWriterLock unit behavior
# ---------------------------------------------------------------------------
class TestReaderWriterLock:
    def test_readers_share(self):
        lock = ReaderWriterLock()
        lock.acquire_read(A, timeout=0.1)
        lock.acquire_read(B, timeout=0.1)  # does not block
        lock.release_read(A)
        lock.release_read(B)

    def test_writer_excludes_readers_and_writers(self):
        lock = ReaderWriterLock()
        lock.acquire_write(A)
        with pytest.raises(TransactionTimeoutError):
            lock.acquire_read(B, timeout=0.05)
        with pytest.raises(TransactionTimeoutError):
            lock.acquire_write(B, timeout=0.05)
        lock.release_write(A)
        lock.acquire_write(B, timeout=0.1)
        lock.release_write(B)

    def test_readers_block_writer_until_released(self):
        lock = ReaderWriterLock()
        lock.acquire_read(A)
        with pytest.raises(TransactionTimeoutError):
            lock.acquire_write(B, timeout=0.05)
        lock.release_read(A)
        lock.acquire_write(B, timeout=0.1)
        lock.release_write(B)

    def test_write_is_reentrant_per_scope(self):
        lock = ReaderWriterLock()
        lock.acquire_write(A)
        lock.acquire_write(A)  # same scope re-enters
        lock.release_write(A)
        with pytest.raises(TransactionTimeoutError):
            lock.acquire_write(B, timeout=0.05)  # still held once
        lock.release_write(A)
        lock.acquire_write(B, timeout=0.1)
        lock.release_write(B)

    def test_read_passes_through_own_write(self):
        lock = ReaderWriterLock()
        lock.acquire_write(A)
        lock.acquire_read(A, timeout=0.05)  # no self-deadlock
        lock.release_read(A)
        lock.release_write(A)

    def test_upgrade_is_refused(self):
        lock = ReaderWriterLock()
        lock.acquire_read(A)
        with pytest.raises(TransactionError, match="upgrade"):
            lock.acquire_write(A, timeout=0.05)
        lock.release_read(A)

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReaderWriterLock()
        lock.acquire_read(A)
        writer_has_lock = threading.Event()
        release_writer = threading.Event()

        def writer():
            lock.acquire_write(B, timeout=5.0)
            writer_has_lock.set()
            release_writer.wait(timeout=5.0)
            lock.release_write(B)

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.1)  # let the writer park in the wait queue
        # Writer preference: a fresh reader must queue behind the waiting
        # writer instead of starving it.
        with pytest.raises(TransactionTimeoutError):
            lock.acquire_read(("session", "c"), timeout=0.1)
        lock.release_read(A)
        assert writer_has_lock.wait(timeout=5.0)
        release_writer.set()
        thread.join(timeout=5.0)
        lock.acquire_read(("session", "c"), timeout=1.0)
        lock.release_read(("session", "c"))

    def test_session_scope_installs_and_restores(self):
        default = current_scope()
        assert default == ("thread", threading.get_ident())
        with session_scope("outer"):
            assert current_scope() == ("session", "outer")
            with session_scope("inner"):
                assert current_scope() == ("session", "inner")
            assert current_scope() == ("session", "outer")
        assert current_scope() == default


# ---------------------------------------------------------------------------
# Randomized differential suite vs a serial oracle
# ---------------------------------------------------------------------------
class DifferentialClient:
    """One network client: a seeded op stream over a private PK range.

    Records every statement whose effects committed, plus any read-
    consistency violations it observed against its private shadow model.
    """

    RANGE = 1000

    def __init__(self, port, client_id, steps, seed):
        self.port = port
        self.client_id = client_id
        self.steps = steps
        self.rng = random.Random(seed)
        self.base = client_id * self.RANGE
        self.committed = []      # [(sql, params)] in commit order
        self.pending = []
        self.in_txn = False
        self.shadow = {}         # committed id -> v
        self.working = None      # shadow overlay while in a txn
        self.next_id = self.base
        self.failures = []

    def visible(self):
        return self.working if self.in_txn else self.shadow

    def record(self, sql, params):
        (self.pending if self.in_txn else self.committed).append(
            (sql, params))

    def run(self):
        conn = repro.client.connect(port=self.port)
        try:
            cur = conn.cursor()
            for step in range(self.steps):
                self.step(conn, cur, step)
            if self.in_txn:
                self.commit(conn)
            self.check_read(cur)
        finally:
            conn.close()
        return self

    def step(self, conn, cur, step):
        roll = self.rng.random()
        model = self.visible()
        if roll < 0.30:
            self.insert(cur, step)
        elif roll < 0.50 and model:
            self.update(cur, step)
        elif roll < 0.60 and model:
            self.delete(cur)
        elif roll < 0.75:
            self.check_read(cur)
        elif roll < 0.85 and not self.in_txn and self.shadow:
            self.annotate(cur, step)
        else:
            self.txn_control(conn, cur)

    def insert(self, cur, step):
        row_id, value = self.next_id, f"c{self.client_id}s{step}"
        self.next_id += 1
        retry(lambda: cur.execute(
            "INSERT INTO kv VALUES (?, ?)", (row_id, value)))
        self.record("INSERT INTO kv VALUES (?, ?)", (row_id, value))
        self.visible()[row_id] = value

    def update(self, cur, step):
        row_id = self.rng.choice(sorted(self.visible()))
        value = f"c{self.client_id}u{step}"
        retry(lambda: cur.execute(
            "UPDATE kv SET v = ? WHERE id = ?", (value, row_id)))
        self.record("UPDATE kv SET v = ? WHERE id = ?", (value, row_id))
        self.visible()[row_id] = value

    def delete(self, cur):
        row_id = self.rng.choice(sorted(self.visible()))
        retry(lambda: cur.execute("DELETE FROM kv WHERE id = ?", (row_id,)))
        self.record("DELETE FROM kv WHERE id = ?", (row_id,))
        del self.visible()[row_id]

    def annotate(self, cur, step):
        row_id = self.rng.choice(sorted(self.shadow))
        body = f"n{self.client_id}-{step}"
        sql = (f"ADD ANNOTATION TO kv.note VALUE '{body}' "
               f"ON (SELECT k.v FROM kv k WHERE k.id = {row_id})")
        retry(lambda: cur.execute(sql))
        self.record(sql, ())

    def check_read(self, cur):
        """Every read must see exactly this client's own committed state
        plus its own in-transaction writes — nothing torn, lost, or leaked
        from another client's range."""
        retry(lambda: cur.execute(
            "SELECT id, v FROM kv WHERE id >= ? AND id < ? ORDER BY id",
            (self.base, self.base + self.RANGE)))
        seen = {row[0]: row[1] for row in cur.fetchall()}
        if seen != self.visible():
            self.failures.append(
                f"client {self.client_id}: read {seen!r} "
                f"!= shadow {self.visible()!r}")

    def txn_control(self, conn, cur):
        if not self.in_txn:
            retry(lambda: cur.execute("BEGIN"))
            self.in_txn = True
            self.working = dict(self.shadow)
        elif self.rng.random() < 0.7:
            self.commit(conn)
        else:
            retry(conn.rollback)
            self.in_txn = False
            self.pending.clear()
            self.working = None

    def commit(self, conn):
        retry(conn.commit)
        self.in_txn = False
        self.committed.extend(self.pending)
        self.pending.clear()
        self.shadow = self.working
        self.working = None


def replay_oracle(clients):
    """Serial single-threaded replay of exactly the committed statements."""
    db = repro.Database()
    conn = db.connect()
    cur = conn.cursor()
    cur.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
    cur.execute("CREATE ANNOTATION TABLE note ON kv")
    for client in clients:
        for sql, params in client.committed:
            cur.execute(sql, params)
    return db


def final_state(fetch_cursor):
    fetch_cursor.execute("SELECT id, v FROM kv ANNOTATION(note) ORDER BY id")
    state = []
    for row in fetch_cursor.fetchall():
        bodies = frozenset(
            a.body for column in (row.annotations or []) for a in column)
        state.append((tuple(row), bodies))
    return state


class TestDifferential:
    @pytest.mark.parametrize("clients,steps", [(1, 60), (8, 25), (32, 8)])
    def test_network_run_matches_serial_oracle(self, clients, steps):
        # A short lock timeout keeps the pool-starvation safety valve quick:
        # when every worker blocks on the write lock held by a session whose
        # next request sits queued behind them, the blocked ops bail out as
        # retryable ``lock_timeout`` and the holder's request gets a worker.
        server = start_server(config=ServerConfig(
            max_connections=clients + 4, worker_threads=4,
            lock_timeout_seconds=0.3))
        try:
            admin = repro.client.connect(port=server.port)
            admin.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
            admin.execute("CREATE ANNOTATION TABLE note ON kv")

            with ThreadPoolExecutor(max_workers=clients) as pool:
                done = [f.result() for f in [
                    pool.submit(DifferentialClient(
                        server.port, i, steps, seed=1000 + i).run)
                    for i in range(clients)]]

            failures = [msg for c in done for msg in c.failures]
            assert not failures, "\n".join(failures)

            live = final_state(admin.cursor())
            admin.close()
        finally:
            server.shutdown()

        oracle_db = replay_oracle(done)
        oracle = final_state(oracle_db.connect().cursor())
        assert live == oracle


# ---------------------------------------------------------------------------
# Torn reads: scans must never observe a half-applied transaction
# ---------------------------------------------------------------------------
class TestSnapshotScans:
    ACCOUNTS = 8
    OPENING = 1000

    def transfer_worker(self, port, seed, moves):
        rng = random.Random(seed)
        conn = repro.client.connect(port=port)
        try:
            cur = conn.cursor()
            for _ in range(moves):
                src, dst = rng.sample(range(self.ACCOUNTS), 2)
                amount = rng.randint(1, 50)

                def move():
                    cur.execute("BEGIN")
                    cur.execute("SELECT id, v FROM acct WHERE id IN (?, ?)",
                                (src, dst))
                    balances = dict(cur.fetchall())
                    cur.execute("UPDATE acct SET v = ? WHERE id = ?",
                                (balances[src] - amount, src))
                    cur.execute("UPDATE acct SET v = ? WHERE id = ?",
                                (balances[dst] + amount, dst))
                    conn.commit()
                retry(move)
        finally:
            conn.close()

    def test_scans_always_balance(self):
        server = start_server()
        total = self.ACCOUNTS * self.OPENING
        try:
            admin = repro.client.connect(port=server.port)
            admin.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, "
                          "v INTEGER)")
            admin.cursor().executemany(
                "INSERT INTO acct VALUES (?, ?)",
                [(i, self.OPENING) for i in range(self.ACCOUNTS)])

            writers = [threading.Thread(
                target=self.transfer_worker, args=(server.port, 7 + i, 25))
                for i in range(2)]
            for thread in writers:
                thread.start()

            reader = repro.client.connect(port=server.port)
            bad = []
            while any(t.is_alive() for t in writers):
                cur = retry(lambda: reader.execute("SELECT v FROM acct"))
                seen = sum(row[0] for row in cur.fetchall())
                if seen != total:
                    bad.append(seen)
            for thread in writers:
                thread.join()
            assert not bad, f"torn scans observed totals {bad[:5]}"

            cur = reader.execute("SELECT v FROM acct")
            assert sum(row[0] for row in cur.fetchall()) == total
            reader.close()
            admin.close()
        finally:
            server.shutdown()


# ---------------------------------------------------------------------------
# Shared-state hammer: thread-local query results, exact cache counters
# ---------------------------------------------------------------------------
class TestEngineSharedState:
    def hammer(self, fn, threads=8, iterations=50):
        barrier = threading.Barrier(threads)
        failures = []

        def worker(index):
            barrier.wait()
            try:
                for _ in range(iterations):
                    fn(index)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append(repr(exc))

        pool = [threading.Thread(target=worker, args=(i,))
                for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not failures, failures
        return threads * iterations

    def test_last_plan_is_thread_local(self):
        db = repro.Database()
        threads = 4
        for i in range(threads):
            conn = db.connect()
            conn.execute(f"CREATE TABLE t{i} (id INTEGER PRIMARY KEY)")
            conn.execute(f"INSERT INTO t{i} VALUES (1)")
        connections = [db.connect() for _ in range(threads)]

        def query_own_table(index):
            cursor = connections[index].cursor()
            cursor.execute(f"SELECT id FROM t{index}")
            cursor.fetchall()
            # The diagnostic must describe THIS thread's query even while
            # other threads run their own.
            assert f"table='t{index}'" in str(db.engine.last_plan)

        self.hammer(query_own_table, threads=threads)

    def test_plan_cache_counters_are_exact_under_contention(self):
        db = repro.Database()
        setup = db.connect()
        setup.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        setup.execute("INSERT INTO t VALUES (1, 'x')")
        db.engine.plan_cache.clear()
        threads = 8
        connections = [db.connect() for _ in range(threads)]

        def query(index):
            cursor = connections[index].cursor()
            cursor.execute("SELECT v FROM t WHERE id = ?", (1,))
            assert [tuple(row) for row in cursor.fetchall()] == [("x",)]

        total = self.hammer(query, threads=threads)
        stats = db.engine.plan_cache.stats
        assert stats.hits + stats.misses == total
        assert stats.misses < total // 2  # the shared plan actually caches
