"""Intra-query parallelism over spill partitions.

Three layers of coverage:

* unit tests of the worker-pool abstraction (``executor/parallel.py``):
  ordered delivery, serial inlining, error propagation, knob validation;
* the parallel differential matrix: every spilling query shape runs at
  ``parallel_workers`` ∈ {0, 1, 4} × join strategy × execution mode and must
  return *byte-identical output* — same values, same row order, same
  annotation identity — as the serial run (parallelism is an implementation
  detail, never an observable);
* thread-safety stress tests of the shared state workers touch
  (``SpillStats``, statistics staleness counters) plus the observability
  wiring (per-partition timings with worker attribution, EXPLAIN's
  ``[parallel: N workers]`` markers, plan-cache fingerprinting of the knob).
"""

from __future__ import annotations

import threading

import pytest

from repro import Database, EngineConfig
from repro.core.errors import PlanningError
from repro.executor.parallel import (
    MAX_PARALLEL_WORKERS,
    MaybeParallel,
    WorkerPool,
    validated_worker_count,
    worker_label,
)
from repro.storage.spill import SpillStats

NAN = float("nan")


# ---------------------------------------------------------------------------
# Worker pool unit tests
# ---------------------------------------------------------------------------
class TestWorkerPool:
    def test_map_ordered_preserves_input_order(self):
        with WorkerPool(4) as pool:
            # Make early items finish last: results must still arrive 0..19.
            import time

            def slow_inverse(i):
                time.sleep((20 - i) * 0.001)
                return i * i

            assert list(pool.map_ordered(slow_inverse, range(20))) == \
                [i * i for i in range(20)]

    def test_map_ordered_propagates_task_error(self):
        def boom(i):
            if i == 3:
                raise ValueError("partition 3 failed")
            return i

        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="partition 3"):
                list(pool.map_ordered(boom, range(8)))

    def test_run_tasks_returns_results_in_task_order(self):
        with WorkerPool(3) as pool:
            assert pool.run_tasks([lambda i=i: i + 100 for i in range(6)]) == \
                [100, 101, 102, 103, 104, 105]

    def test_worker_label_attribution(self):
        assert worker_label() == "main"
        with WorkerPool(2) as pool:
            labels = set(pool.run_tasks([worker_label for _ in range(8)]))
        assert labels <= {"w0", "w1"}

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestMaybeParallel:
    def test_serial_never_creates_a_pool(self):
        facade = MaybeParallel(0)
        assert not facade.parallel
        assert list(facade.map_ordered(lambda x: x + 1, [1, 2, 3])) == [2, 3, 4]
        assert facade._pool is None

    def test_serial_submit_returns_resolved_future(self):
        facade = MaybeParallel(0)
        future = facade.submit(lambda: 42)
        assert future.done() and future.result() == 42

    def test_serial_submit_captures_exception(self):
        facade = MaybeParallel(0)
        future = facade.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result()

    def test_single_item_inlines_even_when_parallel(self):
        facade = MaybeParallel(4)
        assert list(facade.map_ordered(lambda x: x * 2, [21])) == [42]
        assert facade._pool is None  # the pool is lazy; one item never needs it
        facade.shutdown()

    def test_parallel_map_ordered(self):
        facade = MaybeParallel(4)
        try:
            assert list(facade.map_ordered(lambda x: x * 2, list(range(10)))) \
                == [i * 2 for i in range(10)]
            assert facade._pool is not None
        finally:
            facade.shutdown()

    def test_validated_worker_count(self):
        assert validated_worker_count(0) == 0
        assert validated_worker_count(MAX_PARALLEL_WORKERS) == MAX_PARALLEL_WORKERS
        for bad in (-1, MAX_PARALLEL_WORKERS + 1, True, 2.0, "4", None):
            with pytest.raises(ValueError):
                validated_worker_count(bad)


# ---------------------------------------------------------------------------
# Engine knob plumbing
# ---------------------------------------------------------------------------
class TestEngineKnobs:
    def test_config_rejects_bad_parallel_workers(self):
        with pytest.raises(PlanningError):
            EngineConfig(parallel_workers=-1)
        with pytest.raises(PlanningError):
            EngineConfig(parallel_workers=MAX_PARALLEL_WORKERS + 1)
        with pytest.raises(PlanningError):
            EngineConfig(parallel_workers=True)

    def test_config_rejects_bad_cache_pages(self):
        with pytest.raises(PlanningError):
            EngineConfig(decoded_page_cache_pages=-1)
        with pytest.raises(PlanningError):
            EngineConfig(decoded_page_cache_pages=True)

    def test_mutated_knob_rechecked_at_query_time(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER)")
        db.config.parallel_workers = -3
        with pytest.raises(PlanningError):
            db.query("SELECT id FROM t")

    def test_knobs_participate_in_plan_cache_fingerprint(self):
        config = EngineConfig()
        base = config.fingerprint()
        config.parallel_workers = 4
        with_workers = config.fingerprint()
        assert with_workers != base
        config.decoded_page_cache_pages = 64
        assert config.fingerprint() != with_workers

    def test_engine_reuses_pool_until_knob_changes(self):
        db = Database(memory_budget_rows=100)
        db.config.parallel_workers = 2
        first = db.engine._parallel_pool()
        assert db.engine._parallel_pool() is first
        db.config.parallel_workers = 4
        second = db.engine._parallel_pool()
        assert second is not first and second.workers == 4


# ---------------------------------------------------------------------------
# The parallel differential matrix
# ---------------------------------------------------------------------------
def build_spill_db() -> Database:
    """Two annotated tables sized so every breaker spills under budget 48."""
    db = Database()
    db.execute("CREATE TABLE fact (id INTEGER, k INTEGER, v FLOAT, s TEXT)")
    db.execute("CREATE TABLE dim (k INTEGER, label TEXT)")
    db.execute("CREATE ANNOTATION TABLE fnote ON fact")
    db.execute("CREATE ANNOTATION TABLE dnote ON dim")
    for i in range(600):
        k = "NULL" if i % 13 == 0 else str(i % 40)
        db.execute(f"INSERT INTO fact VALUES ({i}, {k}, {(i * 37) % 100}.25, "
                   f"'s{i % 23}')")
    for i in range(90):
        k = "NULL" if i % 11 == 0 else str(i % 50)
        db.execute(f"INSERT INTO dim VALUES ({k}, 'd{i % 7}')")
    # NaN sort/group keys can't be written as SQL literals; plant them
    # through the catalog so the matrix covers NaN bucketing too.
    fact = db.catalog.table("fact")
    for tuple_id in range(0, 600, 17):
        fact.update_row(tuple_id, {"v": NAN})
    db.execute("ADD ANNOTATION TO fact.fnote VALUE 'hot row' "
               "ON (SELECT f.id FROM fact f WHERE f.id < 120)")
    db.execute("ADD ANNOTATION TO fact.fnote VALUE 'curated' "
               "ON (SELECT f.s FROM fact f WHERE f.k = 7)")
    db.execute("ADD ANNOTATION TO dim.dnote VALUE 'dimension' "
               "ON (SELECT d.label FROM dim d WHERE d.k < 25)")
    return db


#: Every spilling breaker: Grace/hybrid hash join, spilled GROUP BY,
#: spilled DISTINCT, external sort, merge-join duplicate groups,
#: INTERSECT/EXCEPT partitioning, and spilled DISTINCT-aggregate seen-sets.
SPILL_SHAPES = {
    "join_ordered": (
        "SELECT f.id, d.label FROM fact ANNOTATION(fnote) f, "
        "dim ANNOTATION(dnote) d WHERE f.k = d.k ORDER BY f.id, d.label"
    ),
    "join_streamed": (
        "SELECT f.id, d.label FROM fact ANNOTATION(fnote) f, "
        "dim ANNOTATION(dnote) d WHERE f.k = d.k"
    ),
    "left_join": (
        "SELECT f.id, d.label FROM fact ANNOTATION(fnote) f "
        "LEFT JOIN dim ANNOTATION(dnote) d ON f.k = d.k ORDER BY f.id, d.label"
    ),
    "group_by": (
        "SELECT k, COUNT(*), SUM(v) FROM fact ANNOTATION(fnote) GROUP BY k"
    ),
    "distinct": "SELECT DISTINCT k, s FROM fact ANNOTATION(fnote)",
    "order_by": "SELECT id, v FROM fact ANNOTATION(fnote) ORDER BY v",
    "distinct_aggregate": (
        "SELECT COUNT(DISTINCT id), COUNT(DISTINCT s), SUM(v) "
        "FROM fact ANNOTATION(fnote)"
    ),
    "intersect": "SELECT k FROM fact INTERSECT SELECT k FROM dim",
    "except": "SELECT k FROM fact EXCEPT SELECT k FROM dim",
}

STRATEGIES = ("auto", "hash", "merge")
MODES = ("streaming", "row", "materialized")
BUDGET = 48


def ordered_snapshot(result):
    """Exact output: values, order, and annotation identity per column."""
    rows = []
    for row in result.rows:
        annotations = tuple(
            tuple(sorted((a.annotation_table, a.ann_id) for a in anns))
            for anns in row.annotations
        )
        rows.append((tuple(repr(v) for v in row.values), annotations))
    return rows


def run_shape(db: Database, query: str, workers: int, strategy: str,
              mode: str):
    db.config.memory_budget_rows = BUDGET
    db.config.parallel_workers = workers
    db.config.join_strategy = strategy
    db.config.execution_mode = mode
    try:
        return ordered_snapshot(db.query(query))
    finally:
        db.config.memory_budget_rows = None
        db.config.parallel_workers = 0
        db.config.join_strategy = "auto"
        db.config.execution_mode = "streaming"


@pytest.fixture(scope="module")
def spill_db() -> Database:
    return build_spill_db()


@pytest.mark.parametrize("shape", sorted(SPILL_SHAPES))
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("mode", MODES)
def test_parallel_output_identical_to_serial(spill_db, shape, strategy, mode):
    """Workers {1, 4} must reproduce the serial spilled run *exactly* —
    values, row order, and annotation identity — under every strategy and
    execution mode."""
    query = SPILL_SHAPES[shape]
    serial = run_shape(spill_db, query, 0, strategy, mode)
    for workers in (1, 4):
        assert run_shape(spill_db, query, workers, strategy, mode) == serial


@pytest.mark.parametrize("shape", sorted(SPILL_SHAPES))
def test_spilled_serial_matches_in_memory(spill_db, shape):
    """Anchor the matrix: the budgeted serial run agrees with the unbudgeted
    in-memory run (as a multiset — spilling may legitimately reorder shapes
    without ORDER BY)."""
    query = SPILL_SHAPES[shape]
    spilled = sorted(run_shape(spill_db, query, 0, "auto", "streaming"),
                     key=repr)
    spill_db.config.execution_mode = "streaming"
    in_memory = sorted(ordered_snapshot(spill_db.query(query)), key=repr)
    assert spilled == in_memory


def test_matrix_actually_spills(spill_db):
    """Guard against the matrix silently shrinking below the budget: the
    join, group-by, distinct, sort, set-op, and distinct-aggregate shapes
    must each report spill activity."""
    seen = set()
    for shape, query in SPILL_SHAPES.items():
        run_shape(spill_db, query, 4, "hash" if "join" in shape else "auto",
                  "streaming")
        seen |= {event["operator"]
                 for event in spill_db.engine.last_spill.operators}
    assert {"hash_join", "group_by", "distinct", "sort", "intersect",
            "except", "distinct_aggregate"} <= seen


def test_merge_join_spills_under_budget(spill_db):
    run_shape(spill_db, SPILL_SHAPES["join_streamed"], 4, "merge", "streaming")
    operators = {event["operator"]
                 for event in spill_db.engine.last_spill.operators}
    assert "merge_join" in operators


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------
class TestObservability:
    def test_partition_timings_carry_worker_attribution(self, spill_db):
        # A tight budget forces a wide fan-out so several partition pairs
        # actually run on pool threads (a single pair would inline on main).
        spill_db.config.memory_budget_rows = 10
        spill_db.config.parallel_workers = 4
        spill_db.config.join_strategy = "hash"
        try:
            spill_db.query(SPILL_SHAPES["join_streamed"])
        finally:
            spill_db.config.memory_budget_rows = None
            spill_db.config.parallel_workers = 0
            spill_db.config.join_strategy = "auto"
        (event,) = spill_db.engine.last_spill.events("hash_join")
        timings = event["partition_timings"]
        assert timings and all(t["seconds"] >= 0 for t in timings)
        assert all(t["worker"].startswith("w") for t in timings)
        assert event["hybrid"] is True
        assert event["partitions"] >= 4
        assert event["build_rows"] >= event["resident_build_rows"]

    def test_serial_partition_timings_attribute_to_main(self, spill_db):
        run_shape(spill_db, SPILL_SHAPES["join_streamed"], 0, "hash",
                  "streaming")
        (event,) = spill_db.engine.last_spill.events("hash_join")
        assert {t["worker"] for t in event["partition_timings"]} == {"main"}

    def test_explain_renders_parallel_workers_on_spilling_join(self, spill_db):
        spill_db.config.memory_budget_rows = BUDGET
        spill_db.config.parallel_workers = 4
        spill_db.config.join_strategy = "hash"
        try:
            explained = spill_db.explain(SPILL_SHAPES["join_streamed"])
            assert "[spill:" in explained.message
            assert "[parallel: 4 workers]" in explained.message
            assert explained.details["plan"]["parallel_workers"] == 4
        finally:
            spill_db.config.memory_budget_rows = None
            spill_db.config.parallel_workers = 0
            spill_db.config.join_strategy = "auto"

    def test_explain_stays_serial_without_workers(self, spill_db):
        spill_db.config.memory_budget_rows = BUDGET
        spill_db.config.join_strategy = "hash"
        try:
            explained = spill_db.explain(SPILL_SHAPES["join_streamed"])
            assert "[spill:" in explained.message
            assert "parallel" not in explained.message
        finally:
            spill_db.config.memory_budget_rows = None
            spill_db.config.join_strategy = "auto"

    def test_explain_marks_parallel_aggregate_and_sort(self, spill_db):
        spill_db.config.memory_budget_rows = BUDGET
        spill_db.config.parallel_workers = 4
        try:
            explained = spill_db.explain(
                "SELECT k, COUNT(*) FROM fact GROUP BY k ORDER BY k")
            assert "Aggregate [spill:" in explained.message
            assert "[parallel: 4 workers]" in explained.message
        finally:
            spill_db.config.memory_budget_rows = None
            spill_db.config.parallel_workers = 0


# ---------------------------------------------------------------------------
# Spill-aware build-side choice (explicit INNER JOIN)
# ---------------------------------------------------------------------------
class TestBuildSideSwap:
    def build_db(self):
        db = Database()
        db.execute("CREATE TABLE small (k INTEGER, a TEXT)")
        db.execute("CREATE TABLE big (k INTEGER, b TEXT)")
        for i in range(30):
            db.execute(f"INSERT INTO small VALUES ({i % 20}, 'a{i}')")
        for i in range(400):
            db.execute(f"INSERT INTO big VALUES ({i % 20}, 'b{i}')")
        db.execute("ANALYZE")
        return db

    QUERY = ("SELECT small.a, big.b FROM small JOIN big "
             "ON small.k = big.k")

    def test_under_budget_side_becomes_build(self):
        db = self.build_db()
        db.config.join_strategy = "hash"
        db.config.memory_budget_rows = 100
        db.query(self.QUERY)
        plan = db.engine.last_plan
        # big (400 rows) exceeds the budget, small (30) fits: the planner
        # must make small the build (right) side instead of spilling big.
        assert plan.right.table == "small" and plan.left.table == "big"
        assert not db.engine.last_spill.operators

    def test_no_swap_without_budget(self):
        db = self.build_db()
        db.config.join_strategy = "hash"
        db.query(self.QUERY)
        assert db.engine.last_plan.right.table == "big"

    def test_left_join_never_swaps(self):
        db = self.build_db()
        db.config.join_strategy = "hash"
        db.config.memory_budget_rows = 100
        db.query("SELECT small.a, big.b FROM small LEFT JOIN big "
                 "ON small.k = big.k")
        assert db.engine.last_plan.right.table == "big"

    def test_swapped_join_matches_unswapped_rows(self):
        db = self.build_db()
        db.config.join_strategy = "hash"
        baseline = sorted(tuple(r.values) for r in db.query(self.QUERY).rows)
        db.config.memory_budget_rows = 100
        swapped = sorted(tuple(r.values) for r in db.query(self.QUERY).rows)
        assert swapped == baseline


# ---------------------------------------------------------------------------
# Thread-safety stress
# ---------------------------------------------------------------------------
class TestSharedStateThreadSafety:
    def hammer(self, fn, threads=8, iterations=400):
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(iterations):
                fn()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        return threads * iterations

    def test_spill_stats_counters_are_exact_under_contention(self):
        stats = SpillStats()
        event = stats.record("hash_join", recursive_splits=0)
        total = self.hammer(lambda: (stats.note_io(1, 10),
                                     stats.note_event(event, "recursive_splits"),
                                     stats.note_partition(event, partition=0)))
        assert stats.spilled_rows == total
        assert stats.spilled_bytes == total * 10
        assert event["recursive_splits"] == total
        assert len(event["partition_timings"]) == total

    def test_statistics_staleness_counters_are_exact_under_contention(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("ANALYZE t")
        statistics = db.catalog.statistics
        statistics.auto_refresh = False
        total = self.hammer(lambda: statistics.on_insert("t", 1))
        assert statistics._dml_since_analyze["t"] == total
        assert statistics._stats["t"].row_count == 1 + total

    def test_repeated_parallel_queries_are_deterministic(self, spill_db):
        """End-to-end stress: the same spilled join at 8 workers, repeatedly,
        must return identical output and identical spill totals each time."""
        reference_rows = None
        reference_spill = None
        for _ in range(5):
            rows = run_shape(spill_db, SPILL_SHAPES["join_ordered"], 8,
                             "hash", "streaming")
            spilled = spill_db.engine.last_spill.spilled_rows
            if reference_rows is None:
                reference_rows, reference_spill = rows, spilled
            assert rows == reference_rows
            assert spilled == reference_spill
