"""Tests for RLE utilities, the SBC-tree, and the uncompressed baseline."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import IndexError_
from repro.index.sbc import (
    RleSequence,
    SbcTree,
    UncompressedSuffixIndex,
    compare_rle,
    compression_ratio,
    rle_decode,
    rle_encode,
    rle_encode_bits,
    rle_from_string,
    rle_to_string,
)
from repro.workloads import secondary_structure_corpus

SS_TEXT = st.text(alphabet="HEL", min_size=0, max_size=60)


class TestRle:
    def test_encode_decode_paper_style(self):
        sequence = "LLLEEEEEEEHHHH"
        runs = rle_encode(sequence)
        assert runs == [("L", 3), ("E", 7), ("H", 4)]
        assert rle_decode(runs) == sequence
        assert rle_to_string(runs) == "L3E7H4"
        assert rle_from_string("L3E7H4") == runs

    def test_empty_sequence(self):
        assert rle_encode("") == []
        assert rle_decode([]) == ""

    def test_malformed_rle_string(self):
        with pytest.raises(IndexError_):
            rle_from_string("L3E")

    def test_compression_ratio_on_run_heavy_data(self):
        sequence = "H" * 40 + "E" * 40 + "L" * 40
        assert compression_ratio(sequence, bytes_per_run=2) == pytest.approx(20.0)

    def test_rle_sequence_accessors(self):
        rle = RleSequence.from_plain("HHHEELLLL")
        assert rle.num_runs == 3
        assert rle.original_length == 9
        assert rle.char_at(0) == "H"
        assert rle.char_at(4) == "E"
        assert rle.char_at(8) == "L"
        assert rle.run_starts() == [0, 3, 5]
        assert rle.suffix_runs(1) == (("E", 2), ("L", 4))
        with pytest.raises(IndexError_):
            rle.char_at(9)

    def test_bit_rle(self):
        assert rle_encode_bits([0, 0, 1, 1, 1, 0]) == [(0, 2), (1, 3), (0, 1)]
        assert rle_encode_bits([]) == []

    @given(SS_TEXT)
    def test_roundtrip_property(self, sequence):
        assert rle_decode(rle_encode(sequence)) == sequence

    @given(SS_TEXT)
    def test_run_count_never_exceeds_length(self, sequence):
        runs = rle_encode(sequence)
        assert len(runs) <= max(len(sequence), 1)
        assert sum(count for _, count in runs) == len(sequence)


class TestCompareRle:
    @given(SS_TEXT, SS_TEXT)
    def test_matches_string_comparison(self, left, right):
        expected = (left > right) - (left < right)
        got = compare_rle(rle_encode(left), rle_encode(right))
        assert got == expected


@pytest.fixture(scope="module")
def corpus():
    return secondary_structure_corpus(count=40, length=250, seed=19)


@pytest.fixture(scope="module")
def indexes(corpus):
    sbc = SbcTree()
    baseline = UncompressedSuffixIndex()
    for seq_id, sequence in enumerate(corpus):
        sbc.insert(seq_id, sequence)
        baseline.insert(seq_id, sequence)
    return sbc, baseline


class TestSbcTree:
    def test_substring_search_agrees_with_baseline(self, corpus, indexes):
        sbc, baseline = indexes
        rng = random.Random(5)
        for _ in range(20):
            source = rng.randrange(len(corpus))
            start = rng.randrange(0, len(corpus[source]) - 25)
            pattern = corpus[source][start:start + rng.randint(3, 25)]
            assert sbc.search_substring(pattern) == baseline.search_substring(pattern), pattern

    def test_substring_search_brute_force_reference(self, corpus, indexes):
        sbc, _ = indexes
        pattern = corpus[3][17:38]
        expected = {i for i, seq in enumerate(corpus) if pattern in seq}
        assert sbc.search_substring(pattern) == expected

    def test_single_run_pattern(self, indexes, corpus):
        sbc, _ = indexes
        expected = {i for i, seq in enumerate(corpus) if "HHHHH" in seq}
        assert sbc.search_substring("HHHHH") == expected

    def test_two_run_pattern(self, indexes, corpus):
        sbc, _ = indexes
        pattern = "HHEE"
        expected = {i for i, seq in enumerate(corpus) if pattern in seq}
        assert sbc.search_substring(pattern) == expected

    def test_missing_pattern(self, indexes):
        sbc, _ = indexes
        assert sbc.search_substring("H" * 200) == set()

    def test_empty_pattern_matches_everything(self, indexes, corpus):
        sbc, _ = indexes
        assert sbc.search_substring("") == set(range(len(corpus)))

    def test_prefix_search_agrees_with_baseline(self, corpus, indexes):
        sbc, baseline = indexes
        for source in (0, 7, 21):
            for length in (1, 4, 15):
                pattern = corpus[source][:length]
                assert sbc.search_prefix(pattern) == baseline.search_prefix(pattern)

    def test_prefix_not_substring(self, indexes, corpus):
        sbc, _ = indexes
        pattern = corpus[0][:10]
        prefix_matches = sbc.search_prefix(pattern)
        substring_matches = sbc.search_substring(pattern)
        assert prefix_matches <= substring_matches

    def test_range_search_agrees_with_baseline(self, corpus, indexes):
        sbc, baseline = indexes
        ordered = sorted(corpus)
        low, high = ordered[5], ordered[30]
        assert sorted(sbc.range_search(low, high)) == baseline.range_search(low, high)

    def test_duplicate_sequence_id_rejected(self):
        sbc = SbcTree()
        sbc.insert(0, "HHEE")
        with pytest.raises(IndexError_):
            sbc.insert(0, "LLHH")

    def test_storage_is_proportional_to_runs_not_characters(self, corpus, indexes):
        sbc, baseline = indexes
        assert sbc.index_entries() == sbc.total_runs()
        assert baseline.index_entries() == baseline.total_characters()
        # Run-heavy secondary structure: the SBC-tree stores several times
        # fewer entries (the paper reports roughly an order of magnitude).
        assert baseline.index_entries() / sbc.index_entries() > 4
        assert baseline.storage_bytes() / sbc.storage_bytes() > 2

    def test_insertion_io_is_lower_than_baseline(self):
        corpus = secondary_structure_corpus(count=10, length=200, seed=4)
        sbc, baseline = SbcTree(), UncompressedSuffixIndex()
        for seq_id, sequence in enumerate(corpus):
            sbc.insert(seq_id, sequence)
            baseline.insert(seq_id, sequence)
        assert sbc.stats.total_io < baseline.stats.total_io

    def test_sequence_accessor(self, indexes, corpus):
        sbc, _ = indexes
        assert sbc.sequence(2).decode() == corpus[2]
        with pytest.raises(IndexError_):
            sbc.sequence(999)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.text(alphabet="HEL", min_size=1, max_size=40),
                    min_size=1, max_size=12),
           st.text(alphabet="HEL", min_size=1, max_size=6))
    def test_substring_property(self, sequences, pattern):
        sbc = SbcTree()
        for seq_id, sequence in enumerate(sequences):
            sbc.insert(seq_id, sequence)
        expected = {i for i, seq in enumerate(sequences) if pattern in seq}
        assert sbc.search_substring(pattern) == expected
