"""Tests for the annotation model: annotations, regions, rectangle decomposition."""

from __future__ import annotations

from datetime import datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotations.model import (
    Annotation,
    Region,
    cells_for_columns,
    cells_for_table,
    cells_for_tuples,
    decompose_cells,
)
from repro.annotations.xml_utils import (
    XmlSchema,
    annotation_text,
    body_fields,
    extract_field,
    is_xml,
    wrap_annotation,
)
from repro.core.errors import AnnotationError


class TestAnnotation:
    def test_identity_is_table_plus_id(self):
        a = Annotation(1, "Gene.GAnnotation", "body one")
        b = Annotation(1, "Gene.GAnnotation", "different body")
        c = Annotation(1, "Gene.Other", "body one")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_with_archived_preserves_fields(self):
        a = Annotation(3, "T.A", "body", curator="alice",
                       created_at=datetime(2020, 1, 1), category="comment")
        archived = a.with_archived(True)
        assert archived.archived is True
        assert archived.curator == "alice"
        assert archived.created_at == a.created_at


class TestRegion:
    def test_contains_and_count(self):
        region = Region(0, 2, 5, 9)
        assert region.contains(1, 7)
        assert not region.contains(3, 7)
        assert not region.contains(1, 10)
        assert region.cell_count() == 15

    def test_degenerate_region_rejected(self):
        with pytest.raises(ValueError):
            Region(2, 1, 0, 0)

    def test_cells_enumeration(self):
        region = Region(0, 1, 0, 1)
        assert set(region.cells()) == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestDecomposition:
    def test_whole_column_is_one_region(self):
        # Annotation B3: an entire column over contiguous tuples (Figure 5).
        cells = cells_for_columns([2], range(10))
        regions = decompose_cells(cells)
        assert len(regions) == 1
        assert regions[0] == Region(2, 2, 0, 9)

    def test_whole_tuple_is_one_region(self):
        cells = cells_for_tuples([4], num_columns=3)
        regions = decompose_cells(cells)
        assert regions == [Region(0, 2, 4, 4)]

    def test_contiguous_block_is_one_region(self):
        cells = {(tid, col) for tid in range(3, 7) for col in (1, 2)}
        assert decompose_cells(cells) == [Region(1, 2, 3, 6)]

    def test_scattered_cells_become_multiple_regions(self):
        cells = {(0, 0), (5, 2)}
        regions = decompose_cells(cells)
        assert len(regions) == 2

    def test_gap_in_tuples_splits_region(self):
        cells = cells_for_columns([1], [0, 1, 2, 10, 11])
        regions = decompose_cells(cells)
        assert len(regions) == 2

    def test_whole_table(self):
        cells = cells_for_table(range(5), num_columns=4)
        assert decompose_cells(cells) == [Region(0, 3, 0, 4)]

    def test_empty_cell_set(self):
        assert decompose_cells(set()) == []

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 20), st.integers(0, 5)), max_size=60))
    def test_decomposition_covers_exactly_the_input_cells(self, cells):
        regions = decompose_cells(cells)
        covered = set()
        for region in regions:
            covered.update(region.cells())
        assert covered == cells

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 30), st.integers(1, 6))
    def test_coarse_granularity_never_worse_than_per_cell(self, num_tuples, num_columns):
        cells = cells_for_table(range(num_tuples), num_columns)
        regions = decompose_cells(cells)
        assert len(regions) <= len(cells)
        assert len(regions) == 1


class TestXmlHelpers:
    def test_is_xml(self):
        assert is_xml("<Annotation>hello</Annotation>")
        assert not is_xml("plain text")
        assert not is_xml("<unclosed>")

    def test_wrap_and_extract_text(self):
        body = wrap_annotation("obtained from GenoBase")
        assert is_xml(body)
        assert annotation_text(body) == "obtained from GenoBase"

    def test_wrap_escapes_markup(self):
        body = wrap_annotation("a < b & c")
        assert is_xml(body)
        assert "a < b & c" == annotation_text(body)

    def test_extract_field_and_body_fields(self):
        body = "<Provenance><source>RegulonDB</source><operation>copy</operation></Provenance>"
        assert extract_field(body, "source") == "RegulonDB"
        assert extract_field(body, "missing") is None
        assert body_fields(body) == {"source": "RegulonDB", "operation": "copy"}

    def test_plain_text_has_no_fields(self):
        assert body_fields("not xml") == {}
        assert extract_field("not xml", "source") is None


class TestXmlSchema:
    def setup_method(self):
        self.schema = XmlSchema("Provenance", required=["source", "time"],
                                optional=["notes"])

    def test_build_and_validate(self):
        body = self.schema.build(source="S1", time="2007-01-01", notes="ok")
        self.schema.validate(body)
        assert extract_field(body, "source") == "S1"

    def test_missing_required_field(self):
        with pytest.raises(AnnotationError):
            self.schema.build(source="S1")

    def test_validate_rejects_wrong_root(self):
        with pytest.raises(AnnotationError):
            self.schema.validate("<Other><source>x</source><time>y</time></Other>")

    def test_validate_rejects_unexpected_element(self):
        with pytest.raises(AnnotationError):
            self.schema.validate(
                "<Provenance><source>x</source><time>y</time><hack>z</hack></Provenance>"
            )

    def test_validate_rejects_plain_text(self):
        with pytest.raises(AnnotationError):
            self.schema.validate("just text")
