"""Descending index traversal and parameterized range bounds.

``ORDER BY col DESC`` over a B-tree-indexed column now elides the sort by
walking the index in reverse; parameterized comparisons (``col > ?``,
``BETWEEN ? AND ?``) keep the IndexRangeScan access path, with the concrete
bounds bound per-execution from the cached plan template.  Both must agree
with the naive sorted/filtered sequential path on every value shape,
including NULL keys, NaN parameters, and bounds of the wrong type.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.planner.plan import plan_access_paths


@pytest.fixture
def db():
    database = Database()
    cur = database.connect().cursor()
    cur.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, s TEXT)")
    for i in range(120):
        cur.execute("INSERT INTO t VALUES (?, ?, ?)",
                    (i, (i * 37) % 120, f"s{i % 10}"))
    cur.execute("CREATE INDEX ix_v ON t (v) USING btree")
    yield database
    database.close()


def values(db, sql, params=()):
    cur = db.connect().cursor()
    cur.execute(sql, params)
    return [row.values for row in cur.fetchall()]


class TestDescendingElision:
    def test_desc_order_elides_and_matches_naive(self, db):
        explained = db.explain("SELECT v FROM t WHERE v > 40 ORDER BY v DESC")
        assert "[sort: elided]" in explained.message
        assert "[ordered desc]" in explained.message
        got = values(db, "SELECT v FROM t WHERE v > 40 ORDER BY v DESC")
        assert db.engine.last_sort_elided
        assert got == sorted(got, reverse=True)
        assert sorted(got) == sorted(
            values(db, "SELECT v FROM t WHERE v > 40"))

    def test_desc_without_filter_elides(self, db):
        got = values(db, "SELECT v FROM t ORDER BY v DESC LIMIT 5")
        assert got == [(119,), (118,), (117,), (116,), (115,)]

    def test_desc_with_null_keys_stays_correct(self, db):
        cur = db.connect().cursor()
        for i in range(200, 205):
            cur.execute("INSERT INTO t VALUES (?, NULL, 'n')", (i,))
        asc = values(db, "SELECT v FROM t WHERE v >= 0 ORDER BY v")
        desc = values(db, "SELECT v FROM t WHERE v >= 0 ORDER BY v DESC")
        assert desc == asc[::-1]
        assert (None,) not in desc

    def test_desc_range_bounds_inclusive_exclusive(self, db):
        got = values(db, "SELECT v FROM t WHERE v BETWEEN 10 AND 20 "
                         "ORDER BY v DESC")
        assert got == [(v,) for v in range(20, 9, -1)]
        got = values(db, "SELECT v FROM t WHERE v > 10 AND v < 20 "
                         "ORDER BY v DESC")
        assert got == [(v,) for v in range(19, 10, -1)]

    def test_desc_on_unindexed_column_still_sorts(self, db):
        explained = db.explain("SELECT s FROM t ORDER BY s DESC")
        assert "[sort: elided]" not in explained.message
        got = values(db, "SELECT s FROM t ORDER BY s DESC")
        assert got == sorted(got, reverse=True)


class TestParameterizedRanges:
    def test_param_bound_uses_index_range(self, db):
        cur = db.connect().cursor()
        cur.execute("SELECT v FROM t WHERE v > ?", (100,))
        got = sorted(row.values[0] for row in cur.fetchall())
        assert got == list(range(101, 120))
        assert "index_range" in plan_access_paths(db.engine.last_plan)

    def test_param_between_uses_index_range(self, db):
        cur = db.connect().cursor()
        cur.execute("SELECT v FROM t WHERE v BETWEEN ? AND ?", (30, 35))
        got = sorted(row.values[0] for row in cur.fetchall())
        assert got == list(range(30, 36))
        assert "index_range" in plan_access_paths(db.engine.last_plan)

    def test_cached_plan_rebinds_bounds(self, db):
        cur = db.connect().cursor()
        sql = "SELECT v FROM t WHERE v >= ? AND v <= ?"
        cur.execute(sql, (10, 12))
        first = sorted(row.values[0] for row in cur.fetchall())
        hits_before = db.engine.plan_cache.stats.hits
        cur.execute(sql, (110, 113))
        second = sorted(row.values[0] for row in cur.fetchall())
        assert db.engine.plan_cache.stats.hits == hits_before + 1
        assert db.engine.last_plan_cached
        assert first == [10, 11, 12]
        assert second == [110, 111, 112, 113]

    def test_desc_order_with_param_bound_elides(self, db):
        cur = db.connect().cursor()
        sql = "SELECT v FROM t WHERE v > ? ORDER BY v DESC"
        for low, expect_top in ((100, 119), (50, 119), (117, 119)):
            cur.execute(sql, (low,))
            got = [row.values[0] for row in cur.fetchall()]
            assert got[0] == expect_top
            assert got == sorted(got, reverse=True)
            assert got[-1] == low + 1
            assert db.engine.last_sort_elided

    @pytest.mark.parametrize("bound", [None, float("nan")])
    def test_null_and_nan_params_return_empty_not_crash(self, db, bound):
        cur = db.connect().cursor()
        cur.execute("SELECT v FROM t WHERE v > ?", (bound,))
        assert cur.fetchall() == []
        cur.execute("SELECT v FROM t WHERE v BETWEEN ? AND ?", (bound, 50))
        assert cur.fetchall() == []

    def test_nan_param_after_cached_numeric_plan(self, db):
        """The dangerous order: a sane execution populates the cache with an
        IndexRangeScan template, then a NaN parameter rides the cached plan
        into the range machinery."""
        cur = db.connect().cursor()
        sql = "SELECT v FROM t WHERE v > ? ORDER BY v DESC"
        cur.execute(sql, (115,))
        assert [r.values[0] for r in cur.fetchall()] == [119, 118, 117, 116]
        cur.execute(sql, (float("nan"),))
        assert cur.fetchall() == []

    def test_mismatched_type_param_matches_naive_filter(self, db):
        cur = db.connect().cursor()
        cur.execute("SELECT v FROM t WHERE v > ?", ("zzz",))
        ranged = sorted(r.values for r in cur.fetchall())
        db.config.join_strategy = "nested_loop"
        try:
            cur.execute("SELECT v FROM t WHERE v + 0 > ?", ("zzz",))
            naive = sorted(r.values for r in cur.fetchall())
        finally:
            db.config.join_strategy = "auto"
        assert ranged == naive
