"""Tests for the vectorized (batched) executor and range/order access paths.

Covers the PR-3 features end to end:

* ``RowBatch`` / ``BatchedRows`` containers and the batched operator paths
  (scan, fused filter, projection gather, LIMIT), including annotation
  propagation through every one of them;
* ``BatchFilter`` — the code-generated, conjunct-fused predicate compiler —
  checked differentially against the row-at-a-time evaluator over a
  mixed-type value domain (NULL, NaN, bool, cross-type);
* eager ``EngineConfig`` validation (execution mode, join strategy,
  batch size);
* B-tree ``range_search`` / ``iter_range`` bound combinations and the
  planner's ``IndexRangeScan`` selection with its NULL/NaN safety gates;
* sort elision — ``ORDER BY`` on an index key order runs without a Sort
  operator, with ``EXPLAIN`` rendering ``[sort: elided]`` — including
  propagation through the left spine of order-preserving joins.
"""

from __future__ import annotations

import itertools

import pytest

from repro import Database, EngineConfig
from repro.annotations.xml_utils import annotation_text
from repro.core.errors import PlanningError
from repro.executor.row import BatchedRows, ColumnInfo, OutputSchema, Row, RowBatch
from repro.index.btree import BPlusTree
from repro.planner.expressions import BatchFilter, Evaluator, predicate_is_true
from repro.planner.plan import plan_access_paths
from repro.planner.planner import split_conjuncts
from repro.sql.parser import parse_expression


# ---------------------------------------------------------------------------
# RowBatch / BatchedRows containers
# ---------------------------------------------------------------------------
class TestRowBatch:
    def test_plain_batch_round_trips_lazy_rows(self):
        batch = RowBatch([(1, "a"), (2, "b")])
        rows = list(batch.to_rows())
        assert [row.values for row in rows] == [(1, "a"), (2, "b")]
        assert all(row._annotations is None for row in rows)
        assert rows[0].annotations == [set(), set()]  # materializes on demand

    def test_annotated_batch_round_trips_annotations(self):
        batch = RowBatch([(1,), (2,)], [[{"x"}], [{"y"}]])
        rows = list(batch.to_rows())
        assert rows[0].annotations == [{"x"}]
        rebuilt = RowBatch.from_rows(rows)
        assert rebuilt.annotations == [[{"x"}], [{"y"}]]

    def test_from_rows_keeps_annotation_free_batches_flat(self):
        rebuilt = RowBatch.from_rows([Row((1,)), Row((2,))])
        assert rebuilt.annotations is None

    def test_batched_rows_iterates_as_rows(self):
        stream = BatchedRows(iter([RowBatch([(1,)]), RowBatch([(2,), (3,)])]))
        assert [row.values for row in stream] == [(1,), (2,), (3,)]


# ---------------------------------------------------------------------------
# BatchFilter: differential against the row evaluator
# ---------------------------------------------------------------------------
BATCH_FILTER_PREDICATES = [
    "a >= 1", "a > 1", "a < 1", "a <= 1", "a = 1", "a <> 1",
    "1 > a", "2.5 <= a",
    "b = 'k1'", "b <> 'k4'", "b > 'k'",
    "a BETWEEN 0 AND 2", "a NOT BETWEEN 0 AND 2", "b BETWEEN 'a' AND 'k4'",
    "a IN (1, 2.5)", "a NOT IN (1, 2.5)", "b NOT IN ('k1', NULL)",
    "a IS NULL", "b IS NOT NULL",
    "b LIKE 'k%'", "b NOT LIKE 'k_'",
    "a >= 1 AND b <> 'k4'",
    "LENGTH(b) = 2 AND a < 3",   # slow conjunct mixed with fast ones
]


@pytest.mark.parametrize("sql", BATCH_FILTER_PREDICATES)
def test_batch_filter_matches_row_evaluator(sql):
    schema = OutputSchema([ColumnInfo("a"), ColumnInfo("b")])
    nan = float("nan")
    domain = [None, nan, -1, 0, 1, 2.5, True, False, "", "1", "k1", "k4"]
    rows = [(a, b) for a, b in itertools.product(domain, repeat=2)]
    conjuncts = split_conjuncts(parse_expression(sql))
    compiled = [Evaluator(schema).compile(c) for c in conjuncts]
    expected = [r for r in rows
                if all(predicate_is_true(f(Row(r))) for f in compiled)]
    batch_filter = BatchFilter(schema, conjuncts)
    kept = batch_filter.keep_values(list(rows))
    assert list(map(repr, kept)) == list(map(repr, expected))
    mask = batch_filter.mask(list(rows))
    assert [r for r, m in zip(rows, mask) if m] == kept


def test_batch_filter_fused_projection_agrees():
    schema = OutputSchema([ColumnInfo("a"), ColumnInfo("b")])
    batch_filter = BatchFilter(schema, split_conjuncts(parse_expression("a > 1")))
    rows = [(0, "x"), (2, "y"), (None, "z"), (5, "w")]
    fused = batch_filter.compile_keep("(r[1],)")
    assert batch_filter.run(fused, rows) == [("y",), ("w",)]


# ---------------------------------------------------------------------------
# EngineConfig validation
# ---------------------------------------------------------------------------
class TestConfigValidation:
    def test_bad_execution_mode_rejected_at_construction(self):
        with pytest.raises(PlanningError, match="execution mode"):
            EngineConfig(execution_mode="turbo")

    def test_bad_join_strategy_rejected_at_construction(self):
        with pytest.raises(PlanningError, match="join strategy"):
            EngineConfig(join_strategy="quantum")

    @pytest.mark.parametrize("batch_size", [0, -1, 2.5, "big", True])
    def test_bad_batch_size_rejected_at_construction(self, batch_size):
        with pytest.raises(PlanningError, match="batch_size"):
            EngineConfig(batch_size=batch_size)

    def test_mutated_config_rejected_eagerly_at_query_time(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        for field, value in [("execution_mode", "turbo"),
                             ("join_strategy", "quantum"),
                             ("batch_size", 0)]:
            fresh = Database()
            fresh.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            setattr(fresh.config, field, value)
            with pytest.raises(PlanningError):
                fresh.query("SELECT id FROM t")

    def test_database_batch_size_override_validated(self):
        with pytest.raises(PlanningError):
            Database(batch_size=0)
        assert Database(batch_size=7).config.batch_size == 7


# ---------------------------------------------------------------------------
# B-tree range_search / iter_range bounds
# ---------------------------------------------------------------------------
class TestBTreeRanges:
    def build(self):
        tree = BPlusTree(order=4)
        for key in [5, 1, 9, 3, 7, 3, 11, 2]:  # 3 duplicated
            tree.insert(key, f"v{key}.{tree.stats.node_writes}")
        return tree

    def keys(self, pairs):
        return [key for key, _ in pairs]

    def test_closed_and_open_bounds(self):
        tree = self.build()
        assert self.keys(tree.range_search(3, 9)) == [3, 3, 5, 7, 9]
        assert self.keys(tree.range_search(3, 9, include_low=False)) == [5, 7, 9]
        assert self.keys(tree.range_search(3, 9, include_high=False)) == [3, 3, 5, 7]
        assert self.keys(tree.range_search(3, 9, False, False)) == [5, 7]

    def test_unbounded_sides(self):
        tree = self.build()
        assert self.keys(tree.range_search(None, 3)) == [1, 2, 3, 3]
        assert self.keys(tree.range_search(7, None)) == [7, 9, 11]
        assert self.keys(tree.range_search()) == [1, 2, 3, 3, 5, 7, 9, 11]

    def test_reversed_and_empty_ranges(self):
        tree = self.build()
        assert tree.range_search(9, 3) == []
        assert tree.range_search(4, 4) == []
        assert tree.range_search(3, 3, include_low=False, include_high=False) == []
        assert self.keys(tree.range_search(3, 3)) == [3, 3]

    def test_bounds_outside_key_domain(self):
        tree = self.build()
        assert self.keys(tree.range_search(-10, 0)) == []
        assert self.keys(tree.range_search(100, 200)) == []
        assert self.keys(tree.range_search(-10, 200)) == [1, 2, 3, 3, 5, 7, 9, 11]

    def test_iter_range_is_lazy(self):
        tree = BPlusTree(order=4)
        for i in range(1000):
            tree.insert(i, i)
        before = tree.stats.snapshot()
        iterator = tree.iter_range(10, None)
        first_three = [next(iterator) for _ in range(3)]
        assert [key for key, _ in first_three] == [10, 11, 12]
        # Far fewer node reads than draining the whole leaf chain would cost.
        assert tree.stats.diff(before).node_reads < 20


# ---------------------------------------------------------------------------
# IndexRangeScan planning and execution
# ---------------------------------------------------------------------------
def range_db(rows: int = 300) -> Database:
    db = Database()
    db.execute("CREATE TABLE m (id INTEGER PRIMARY KEY, v FLOAT, tag TEXT)")
    table = db.table("m")
    for i in range(rows):
        table.insert_row({"id": i, "v": i * 0.5, "tag": f"t{i % 7}"})
    db.execute("CREATE INDEX ix_m_v ON m (v) USING btree")
    db.analyze("m")
    return db


class TestIndexRangeScan:
    def assert_matches_seq(self, db, query):
        with_index = sorted(db.query(query).values())
        db.config.use_indexes = False
        try:
            without_index = sorted(db.query(query).values())
        finally:
            db.config.use_indexes = True
        assert with_index == without_index
        return with_index

    @pytest.mark.parametrize("predicate", [
        "v > 10 AND v < 30", "v >= 10 AND v <= 30", "v BETWEEN 10 AND 30",
        "v > 140", "v < 30", "v > 30 AND v < 10",       # reversed -> empty
        "v > 140 AND v BETWEEN 100 AND 141",              # tightened bounds
    ])
    def test_range_results_match_seq_scan(self, predicate):
        db = range_db()
        query = f"SELECT id FROM m WHERE {predicate}"
        db.query(query)
        assert plan_access_paths(db.engine.last_plan) == ["index_range"]
        self.assert_matches_seq(db, query)

    def test_explain_renders_range_bounds(self):
        db = range_db()
        explained = db.explain("SELECT id FROM m WHERE v > 10 AND v <= 30")
        assert "IndexRangeScan m using ix_m_v (v > 10 AND v <= 30)" \
            in explained.message
        plan = explained.details["plan"]
        assert plan["node"] == "IndexRangeScan"
        assert plan["access_path"] == "index_range"
        assert plan["range"] == "v > 10 AND v <= 30"

    def test_cross_type_bound_does_not_pick_range(self):
        db = range_db()
        db.query("SELECT id FROM m WHERE v > 'abc'")
        assert plan_access_paths(db.engine.last_plan) == ["seq"]

    def test_unselective_range_stays_sequential(self):
        db = range_db()
        db.query("SELECT id FROM m WHERE v >= 0")  # matches everything
        assert plan_access_paths(db.engine.last_plan) == ["seq"]

    def test_nan_rows_block_lower_bound_only_ranges(self):
        db = range_db(50)
        db.table("m").insert_row({"id": 999, "v": float("nan"), "tag": "t0"})
        db.indexes.on_insert("m", max(db.table("m").tuple_ids),
                             {"id": 999, "v": float("nan"), "tag": "t0"})
        index = db.indexes.get("ix_m_v")
        assert index.nan_keys == 1
        # Lower-bound-only: NaN sorts above every number, so the (incomplete)
        # index would lose the NaN row -> planner must refuse.
        db.query("SELECT id FROM m WHERE v > 20")
        assert plan_access_paths(db.engine.last_plan) == ["seq"]
        result = self.assert_matches_seq(db, "SELECT id FROM m WHERE v > 20")
        assert (999,) in result
        # An upper bound excludes NaN by itself -> range path allowed.
        db.query("SELECT id FROM m WHERE v > 20 AND v < 22")
        assert plan_access_paths(db.engine.last_plan) == ["index_range"]
        self.assert_matches_seq(db, "SELECT id FROM m WHERE v > 20 AND v < 22")

    def test_null_keys_allowed_for_bounded_ranges(self):
        db = range_db(50)
        db.execute("INSERT INTO m VALUES (998, NULL, 'tnull')")
        assert db.indexes.get("ix_m_v").null_keys == 1
        query = "SELECT id FROM m WHERE v > 20 AND v < 22"
        db.query(query)
        assert plan_access_paths(db.engine.last_plan) == ["index_range"]
        assert (998,) not in self.assert_matches_seq(db, query)

    def test_incomparable_bound_fallback_preserves_order_contract(self):
        """If a range bound turns out incomparable at runtime, the operator
        degrades to a full scan — re-sorted by the key column when the scan
        was feeding an elided ORDER BY, so the ordering contract survives."""
        from repro.executor import operators as ops
        db = range_db(30)
        source = ops.TableRowSource(db.table("m"), "m")
        structure = db.indexes.get("ix_m_v").structure
        position = source.schema.resolve("v")
        schema, rows = ops.index_range_scan(
            source, structure, low=object(), order_position=position)
        values = [row.values[position] for row in rows]
        assert len(values) == 30
        assert values == sorted(values)
        # Without an order contract the fallback is a plain heap-order scan.
        _, rows = ops.index_range_scan(source, structure, low=object())
        assert len(list(rows)) == 30

    def test_range_scan_after_dml_sees_fresh_rows(self):
        db = range_db(60)
        db.execute("DELETE FROM m WHERE id = 25")
        db.execute("INSERT INTO m VALUES (500, 12.25, 'tx')")
        db.execute("UPDATE m SET v = 13.75 WHERE id = 20")
        query = "SELECT id, v FROM m WHERE v BETWEEN 10 AND 15"
        result = self.assert_matches_seq(db, query)
        ids = [row[0] for row in result]
        assert 500 in ids and 20 in ids and 25 not in ids


# ---------------------------------------------------------------------------
# Sort elision
# ---------------------------------------------------------------------------
class TestSortElision:
    def test_order_by_indexed_key_elides_sort(self):
        db = range_db()
        explained = db.explain("SELECT id, v FROM m WHERE v > 10 ORDER BY v")
        assert "[sort: elided]" in explained.message
        assert explained.details["plan"]["sort"] == "elided"
        rows = db.query("SELECT id, v FROM m WHERE v > 10 ORDER BY v").values()
        assert db.engine.last_sort_elided
        assert rows == sorted(rows, key=lambda row: row[1])
        # Differential: identical to the row-mode explicit sort.
        db.config.execution_mode = "row"
        db.config.use_indexes = False
        try:
            baseline = db.query("SELECT id, v FROM m WHERE v > 10 ORDER BY v").values()
            assert not db.engine.last_sort_elided
        finally:
            db.config.execution_mode = "streaming"
            db.config.use_indexes = True
        assert rows == baseline

    def test_unbounded_order_scan_requires_complete_index(self):
        db = range_db()
        explained = db.explain("SELECT id FROM m ORDER BY v")
        assert "[sort: elided]" in explained.message
        # A NULL key makes the unbounded traversal incomplete -> no elision.
        db.execute("INSERT INTO m VALUES (997, NULL, 'tnull')")
        explained = db.explain("SELECT id FROM m ORDER BY v")
        assert "[sort: elided]" not in explained.message
        rows = db.query("SELECT v FROM m ORDER BY v").values()
        assert rows[0] == (None,)  # NULLs first, like the explicit sort

    def test_descending_order_elides_via_reverse_traversal(self):
        db = range_db()
        explained = db.explain("SELECT id FROM m WHERE v > 10 ORDER BY v DESC")
        assert "[sort: elided]" in explained.message
        assert "[ordered desc]" in explained.message
        rows = db.query("SELECT v FROM m WHERE v > 140 ORDER BY v DESC").values()
        assert db.engine.last_sort_elided
        assert rows == sorted(rows, reverse=True)

    def test_multi_key_orders_still_sort(self):
        db = range_db()
        assert "[sort: elided]" not in db.explain(
            "SELECT id FROM m WHERE v > 10 ORDER BY v, id").message
        rows = db.query("SELECT v, id FROM m WHERE v > 140 ORDER BY v, id").values()
        assert rows == sorted(rows)

    def test_order_propagates_through_left_joins(self):
        db = Database()
        db.execute("CREATE TABLE g (gid INTEGER PRIMARY KEY, score FLOAT)")
        db.execute("CREATE TABLE p (pid INTEGER PRIMARY KEY, gid INTEGER)")
        for i in range(40):
            db.table("g").insert_row({"gid": i, "score": (40 - i) * 1.0})
        for i in range(120):
            db.table("p").insert_row({"pid": i, "gid": i % 50})
        db.execute("CREATE INDEX ix_g_score ON g (score) USING btree")
        db.analyze()
        query = ("SELECT g.gid, g.score, p.pid FROM g JOIN p ON g.gid = p.gid "
                 "WHERE g.score > 5 ORDER BY g.score")
        explained = db.explain(query)
        assert "[sort: elided]" in explained.message
        rows = db.query(query).values()
        assert db.engine.last_sort_elided
        scores = [row[1] for row in rows]
        assert scores == sorted(scores)
        db.config.join_strategy = "nested_loop"
        db.config.execution_mode = "materialized"
        try:
            baseline = db.query(query).values()
        finally:
            db.config.join_strategy = "auto"
            db.config.execution_mode = "streaming"
        assert sorted(rows) == sorted(baseline)

    def test_unselective_order_on_big_table_keeps_the_sort(self):
        """Eliding the sort is not free: a key-order scan pays a heap point
        fetch per row, so an unselective ORDER BY over a big table must stay
        on the batched sequential scan + explicit sort."""
        db = range_db(2_500)
        explained = db.explain("SELECT id FROM m ORDER BY v")
        assert "[sort: elided]" not in explained.message
        explained = db.explain("SELECT id FROM m WHERE v >= 0 ORDER BY v")
        assert "[sort: elided]" not in explained.message
        rows = db.query("SELECT v FROM m WHERE v >= 0 ORDER BY v LIMIT 3").values()
        assert rows == [(0.0,), (0.5,), (1.0,)]

    def test_limit_turns_big_order_scan_into_top_k(self, monkeypatch):
        """With a LIMIT the lazy key-order stream stops after ~k fetches —
        the top-K case where elision beats sorting at any table size."""
        db = range_db(2_500)
        explained = db.explain("SELECT id, v FROM m ORDER BY v LIMIT 5")
        assert "[sort: elided]" in explained.message
        fetched = []
        original = type(db.table("m")).read_row

        def counting(self_table, tuple_id):
            fetched.append(tuple_id)
            return original(self_table, tuple_id)

        monkeypatch.setattr(type(db.table("m")), "read_row", counting)
        rows = db.query("SELECT id, v FROM m ORDER BY v LIMIT 5").values()
        assert rows == [(i, i * 0.5) for i in range(5)]
        assert len(fetched) <= 8  # ~LIMIT fetches, not the whole table

    def test_aggregated_order_by_never_elides(self):
        db = range_db()
        explained = db.explain(
            "SELECT tag, COUNT(*) FROM m WHERE v > 10 GROUP BY tag ORDER BY tag")
        assert "[sort: elided]" not in explained.message


# ---------------------------------------------------------------------------
# Batched pipeline behaviour (modes, laziness, annotations)
# ---------------------------------------------------------------------------
class TestBatchedPipeline:
    def test_all_modes_agree_on_scan_filter_project(self):
        db = range_db(200)
        query = "SELECT id, tag FROM m WHERE v > 30 AND tag <> 't3' LIMIT 50"
        results = {}
        for mode in ("streaming", "row", "materialized"):
            db.config.execution_mode = mode
            results[mode] = sorted(db.query(query).values())
        db.config.execution_mode = "streaming"
        assert results["streaming"] == results["row"] == results["materialized"]

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 1024])
    def test_batch_size_does_not_change_results(self, batch_size):
        db = range_db(150)
        db.config.batch_size = batch_size
        query = ("SELECT id, v FROM m WHERE v BETWEEN 5 AND 60 "
                 "ORDER BY id LIMIT 20 OFFSET 3")
        assert db.query(query).values() == [
            (i, i * 0.5) for i in range(13, 33)]

    def test_limit_decodes_only_leading_pages(self, monkeypatch):
        db = Database()
        db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY, s TEXT)")
        table = db.table("big")
        for i in range(20_000):
            table.insert_row({"id": i, "s": f"row{i}"})
        from repro.storage.heap_file import HeapFile
        calls = []
        original = HeapFile.scan_page_rows

        def counting(self, page_id, with_tuple_ids=True):
            calls.append(page_id)
            return original(self, page_id, with_tuple_ids)

        monkeypatch.setattr(HeapFile, "scan_page_rows", counting)
        result = db.query("SELECT id FROM big LIMIT 5")
        assert [row.values for row in result.rows] == [((i,)) for i in range(5)]
        assert len(calls) <= 2
        assert len(calls) < db.table("big").heap.num_pages() / 10

    def test_stream_pulls_batches_lazily(self, monkeypatch):
        db = Database()
        db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY)")
        table = db.table("big")
        for i in range(20_000):
            table.insert_row({"id": i})
        from repro.storage.heap_file import HeapFile
        calls = []
        original = HeapFile.scan_page_rows

        def counting(self, page_id, with_tuple_ids=True):
            calls.append(page_id)
            return original(self, page_id, with_tuple_ids)

        monkeypatch.setattr(HeapFile, "scan_page_rows", counting)
        stream = db.stream("SELECT id FROM big WHERE id >= 0")
        head = [next(stream) for _ in range(3)]
        assert [row.values for row in head] == [(0,), (1,), (2,)]
        assert len(calls) <= 2

    def test_annotations_propagate_through_batched_filter_and_project(self):
        db = Database()
        db.execute("CREATE TABLE gene (gid TEXT PRIMARY KEY, name TEXT, score FLOAT)")
        db.execute("CREATE ANNOTATION TABLE note ON gene")
        for i in range(30):
            db.execute(f"INSERT INTO gene VALUES ('G{i}', 'n{i}', {i * 1.0})")
        db.execute("ADD ANNOTATION TO gene.note VALUE 'high scorer' "
                   "ON (SELECT g.gid FROM gene g WHERE g.score > 20)")
        db.execute("ADD ANNOTATION TO gene.note VALUE 'name note' "
                   "ON (SELECT g.name FROM gene g WHERE g.gid = 'G25')")
        query = ("SELECT gid, score FROM gene ANNOTATION(note) "
                 "WHERE score > 20 AND gid <> 'G29'")

        def canonical(mode, batch_size=1024):
            db.config.execution_mode = mode
            db.config.batch_size = batch_size
            try:
                result = db.query(query)
                return sorted(
                    (row.values,
                     tuple(tuple(sorted(annotation_text(a.body) for a in anns))
                           for anns in row.annotations))
                    for row in result.rows)
            finally:
                db.config.execution_mode = "streaming"
                db.config.batch_size = 1024

        baseline = canonical("materialized")
        assert canonical("row") == baseline
        for batch_size in (1, 2, 1024):
            assert canonical("streaming", batch_size) == baseline
        # The gid column carries 'high scorer'; the projected score column
        # carries nothing (annotation granularity is per cell).
        values, annotations = baseline[0]
        assert annotations[0] == ("high scorer",)
        assert annotations[1] == ()

    def test_annotations_propagate_through_range_scan(self):
        db = Database()
        db.execute("CREATE TABLE m (id INTEGER PRIMARY KEY, v FLOAT)")
        db.execute("CREATE ANNOTATION TABLE note ON m")
        for i in range(40):
            db.execute(f"INSERT INTO m VALUES ({i}, {i * 1.0})")
        db.execute("ADD ANNOTATION TO m.note VALUE 'mid band' "
                   "ON (SELECT t.id FROM m t WHERE t.v BETWEEN 10 AND 20)")
        db.execute("CREATE INDEX ix_m_v ON m (v) USING btree")
        db.analyze("m")
        query = "SELECT id FROM m ANNOTATION(note) WHERE v BETWEEN 12 AND 15"
        result = db.query(query)
        assert plan_access_paths(db.engine.last_plan) == ["index_range"]
        assert len(result) == 4
        for index in range(len(result)):
            bodies = [annotation_text(body)
                      for body in result.annotation_bodies(index, "id")]
            assert bodies == ["mid band"]

    def test_promote_survives_batched_projection(self):
        db = Database()
        db.execute("CREATE TABLE g (gid TEXT PRIMARY KEY, seq TEXT)")
        db.execute("CREATE ANNOTATION TABLE note ON g")
        db.execute("INSERT INTO g VALUES ('a', 'ATG')")
        db.execute("ADD ANNOTATION TO g.note VALUE 'seq note' "
                   "ON (SELECT x.seq FROM g x WHERE x.gid = 'a')")
        result = db.query("SELECT gid PROMOTE (seq) FROM g ANNOTATION(note)")
        bodies = [annotation_text(body)
                  for body in result.annotation_bodies(0, "gid")]
        assert bodies == ["seq note"]
