"""End-to-end tests of A-SQL: the paper's annotation commands and SELECT extensions."""

from __future__ import annotations

import pytest

from repro import Database
from repro.core.errors import AnnotationError


class TestAnnotationDdlThroughSql:
    def test_create_and_drop_annotation_table(self, db):
        db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GSequence SEQUENCE)")
        db.execute("CREATE ANNOTATION TABLE GAnnotation ON Gene")
        assert db.annotations.has("Gene", "GAnnotation")
        db.execute("DROP ANNOTATION TABLE GAnnotation ON Gene")
        assert not db.annotations.has("Gene", "GAnnotation")


@pytest.fixture
def annotated_db(db):
    """Three genes with annotations at cell, tuple, and column granularity."""
    db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
    db.execute("CREATE ANNOTATION TABLE GAnnotation ON Gene")
    db.execute("INSERT INTO Gene VALUES ('JW0080', 'mraW', 'ATGATGGAAAA')")
    db.execute("INSERT INTO Gene VALUES ('JW0082', 'ftsI', 'ATGAAAGCAGC')")
    db.execute("INSERT INTO Gene VALUES ('JW0055', 'yabP', 'ATGAAAGTATC')")
    # Column granularity (like B3: "obtained from GenoBase" on GSequence).
    db.execute(
        "ADD ANNOTATION TO Gene.GAnnotation "
        "VALUE '<Annotation>obtained from GenoBase</Annotation>' "
        "ON (SELECT G.GSequence FROM Gene G)"
    )
    # Tuple granularity (like B5: unknown function on gene JW0080).
    db.execute(
        "ADD ANNOTATION TO Gene.GAnnotation "
        "VALUE 'This gene has an unknown function' "
        "ON (SELECT G.* FROM Gene G WHERE GID = 'JW0080')"
    )
    # Cell granularity (like A3: methyltransferase on one sequence cell).
    db.execute(
        "ADD ANNOTATION TO Gene.GAnnotation "
        "VALUE 'Involved in methyltransferase activity' "
        "ON (SELECT G.GSequence FROM Gene G WHERE GID = 'JW0082')"
    )
    return db


class TestAddAnnotation:
    def test_column_granularity_attaches_to_every_tuple(self, annotated_db):
        result = annotated_db.query("SELECT GID, GSequence FROM Gene ANNOTATION(GAnnotation)")
        for index in range(len(result)):
            bodies = result.annotation_bodies(index, "GSequence")
            assert any("GenoBase" in body for body in bodies)

    def test_tuple_granularity_attaches_to_all_columns_of_tuple(self, annotated_db):
        result = annotated_db.query(
            "SELECT GID, GName FROM Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'"
        )
        assert any("unknown function" in body for body in result.annotation_bodies(0, "GID"))
        assert any("unknown function" in body for body in result.annotation_bodies(0, "GName"))

    def test_cell_granularity_only_on_that_cell(self, annotated_db):
        result = annotated_db.query(
            "SELECT GID, GSequence FROM Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0082'"
        )
        assert any("methyltransferase" in body
                   for body in result.annotation_bodies(0, "GSequence"))
        assert not any("methyltransferase" in body
                       for body in result.annotation_bodies(0, "GID"))

    def test_annotation_on_insert_statement(self, annotated_db):
        annotated_db.execute(
            "ADD ANNOTATION TO Gene.GAnnotation VALUE 'newly sequenced' "
            "ON (INSERT INTO Gene VALUES ('JW0100', 'newG', 'ATGTTT'))"
        )
        result = annotated_db.query(
            "SELECT GID FROM Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0100'"
        )
        assert any("newly sequenced" in body for body in result.annotation_bodies(0, "GID"))

    def test_annotation_on_update_statement_targets_changed_columns(self, annotated_db):
        annotated_db.execute(
            "ADD ANNOTATION TO Gene.GAnnotation VALUE 'resequenced in 2026' "
            "ON (UPDATE Gene SET GSequence = 'ATGCCCCCC' WHERE GID = 'JW0055')"
        )
        result = annotated_db.query(
            "SELECT GID, GSequence FROM Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0055'"
        )
        assert any("resequenced" in body for body in result.annotation_bodies(0, "GSequence"))
        assert not any("resequenced" in body for body in result.annotation_bodies(0, "GID"))

    def test_annotation_on_delete_logs_deleted_tuples(self, annotated_db):
        summary = annotated_db.execute(
            "ADD ANNOTATION TO Gene.GAnnotation VALUE 'withdrawn: contamination' "
            "ON (DELETE FROM Gene WHERE GID = 'JW0082')"
        )
        assert summary.rows_affected == 1
        # The gene is gone from the user table but preserved in the log table.
        assert len(annotated_db.query("SELECT * FROM Gene WHERE GID = 'JW0082'")) == 0
        log_rows = annotated_db.query("SELECT GID FROM Gene__deleted")
        assert log_rows.values() == [("JW0082",)]

    def test_unknown_annotation_table_rejected(self, annotated_db):
        with pytest.raises(AnnotationError):
            annotated_db.execute(
                "ADD ANNOTATION TO Gene.Nope VALUE 'x' ON (SELECT G.GID FROM Gene G)"
            )

    def test_join_target_rejected(self, annotated_db):
        with pytest.raises(AnnotationError):
            annotated_db.execute(
                "ADD ANNOTATION TO Gene.GAnnotation VALUE 'x' "
                "ON (SELECT a.GID FROM Gene a, Gene b)"
            )


class TestAnnotationPropagationOperators:
    def test_projection_drops_other_columns_annotations(self, annotated_db):
        result = annotated_db.query("SELECT GID FROM Gene ANNOTATION(GAnnotation)")
        # GenoBase annotation lives on GSequence, which is not projected.
        for index in range(len(result)):
            assert not any("GenoBase" in body for body in result.annotation_bodies(index))

    def test_promote_copies_annotations_to_projected_column(self, annotated_db):
        result = annotated_db.query(
            "SELECT GID PROMOTE (GSequence) FROM Gene ANNOTATION(GAnnotation)"
        )
        assert any("GenoBase" in body for body in result.annotation_bodies(0, "GID"))

    def test_selection_keeps_all_annotations_of_selected_tuples(self, annotated_db):
        result = annotated_db.query(
            "SELECT GID, GName, GSequence FROM Gene ANNOTATION(GAnnotation) "
            "WHERE GID = 'JW0080'"
        )
        bodies = result.annotation_bodies(0)
        assert any("GenoBase" in body for body in bodies)
        assert any("unknown function" in body for body in bodies)

    def test_awhere_selects_tuples_by_annotation(self, annotated_db):
        result = annotated_db.query(
            "SELECT GID FROM Gene ANNOTATION(GAnnotation) "
            "AWHERE annotation.value LIKE '%methyltransferase%'"
        )
        assert result.values() == [("JW0082",)]

    def test_filter_drops_non_matching_annotations_but_keeps_tuples(self, annotated_db):
        result = annotated_db.query(
            "SELECT GID, GSequence FROM Gene ANNOTATION(GAnnotation) "
            "FILTER annotation.value LIKE '%GenoBase%'"
        )
        assert len(result) == 3
        for index in range(len(result)):
            bodies = result.annotation_bodies(index)
            assert all("GenoBase" in body for body in bodies)

    def test_no_annotation_clause_means_no_annotations(self, annotated_db):
        result = annotated_db.query("SELECT GID, GSequence FROM Gene")
        assert all(not result.annotations_of(index) for index in range(len(result)))

    def test_group_by_unions_annotations(self, annotated_db):
        result = annotated_db.query(
            "SELECT COUNT(*) AS n FROM Gene ANNOTATION(GAnnotation) GROUP BY 1 + 0"
        )
        # One group containing all tuples: its annotations are the union.
        bodies = result.annotation_bodies(0)
        assert any("GenoBase" in body for body in bodies)
        assert any("unknown function" in body for body in bodies)

    def test_ahaving_filters_groups_by_annotation(self, annotated_db):
        result = annotated_db.query(
            "SELECT GName, COUNT(*) FROM Gene ANNOTATION(GAnnotation) "
            "GROUP BY GName AHAVING annotation.value LIKE '%methyltransferase%'"
        )
        assert [v[0] for v in result.values()] == ["ftsI"]

    def test_distinct_unions_annotations_of_duplicates(self, db):
        db.execute("CREATE TABLE t (v TEXT)")
        db.execute("CREATE ANNOTATION TABLE notes ON t")
        db.execute("INSERT INTO t VALUES ('dup')")
        db.execute("INSERT INTO t VALUES ('dup')")
        db.execute("ADD ANNOTATION TO t.notes VALUE 'first' "
                   "ON (SELECT x.v FROM t x WHERE v = 'dup')")
        result = db.query("SELECT DISTINCT v FROM t ANNOTATION(notes)")
        assert len(result) == 1
        assert len(result.annotations_of(0, "v")) == 1


class TestArchiveRestoreThroughSql:
    def test_archive_then_restore(self, annotated_db):
        annotated_db.execute(
            "ARCHIVE ANNOTATION FROM Gene.GAnnotation "
            "ON (SELECT G.* FROM Gene G WHERE GID = 'JW0080')"
        )
        result = annotated_db.query(
            "SELECT GID, GName, GSequence FROM Gene ANNOTATION(GAnnotation) "
            "WHERE GID = 'JW0080'"
        )
        # The tuple-level "unknown function" annotation is archived and must
        # not propagate; the column-level GenoBase annotation was archived too
        # because it intersects the tuple's cells.
        assert not any("unknown function" in body for body in result.annotation_bodies(0))

        annotated_db.execute(
            "RESTORE ANNOTATION FROM Gene.GAnnotation "
            "ON (SELECT G.* FROM Gene G WHERE GID = 'JW0080')"
        )
        restored = annotated_db.query(
            "SELECT GID, GName, GSequence FROM Gene ANNOTATION(GAnnotation) "
            "WHERE GID = 'JW0080'"
        )
        assert any("unknown function" in body for body in restored.annotation_bodies(0))

    def test_archive_with_future_time_range_matches_nothing(self, annotated_db):
        summary = annotated_db.execute(
            "ARCHIVE ANNOTATION FROM Gene.GAnnotation "
            "BETWEEN '2050-01-01' AND '2060-01-01' "
            "ON (SELECT G.* FROM Gene G)"
        )
        assert summary.rows_affected == 0


class TestPaperIntersectExample:
    """Section 3's motivating example: one A-SQL statement instead of three."""

    def test_intersect_carries_annotations_from_both_tables(self, gene_db):
        info = gene_db.gene_info
        result = gene_db.query(
            "SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) "
            "INTERSECT "
            "SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)"
        )
        assert len(result) == len(info["common"])
        tables_seen = {a.annotation_table for a in result.annotations_of(0)}
        assert "DB1_Gene.GAnnotation" in tables_seen
        assert "DB2_Gene.GAnnotation" in tables_seen

    def test_manual_three_step_plan_gives_same_data(self, gene_db):
        asql = gene_db.query(
            "SELECT GID FROM DB1_Gene ANNOTATION(GAnnotation) "
            "INTERSECT SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation)"
        )
        manual = gene_db.query(
            "SELECT GID FROM DB1_Gene INTERSECT SELECT GID FROM DB2_Gene"
        )
        assert sorted(asql.values()) == sorted(manual.values())
