"""Disk-spilling pipeline breakers: unit tests and bounded-memory proofs.

Covers the spill-file round trip (values, NULLs, NaN, annotation identity),
Grace hash-join partition recursion (including single-key skew, where
rehashing cannot split and recursion must stop), GROUP BY partitioning,
external-sort edge cases (duplicate keys, NULL/NaN keys, descending and
multi-key orders, empty inputs), and the acceptance criterion: a join and a
GROUP BY over inputs larger than ``memory_budget_rows`` complete with
bounded peak memory (tracemalloc, the PR-2 LIMIT test pattern), return the
same answers as the in-memory path, and report the spill through EXPLAIN
and ``engine.last_spill``.

The differential matrix rows that force spilling across strategy × mode ×
batch size live in ``tests/test_join_differential.py``.
"""

from __future__ import annotations

import math
import tracemalloc

import pytest

from repro import Database, EngineConfig
from repro.annotations.model import Annotation
from repro.core.errors import PlanningError
from repro.executor import operators as ops
from repro.executor.row import ColumnInfo, OutputSchema, Row
from repro.sql import ast
from repro.storage.spill import SpillManager, SpillStats, clamp_partitions

NAN = float("nan")


# ---------------------------------------------------------------------------
# Spill file round trip
# ---------------------------------------------------------------------------
class TestSpillFile:
    def test_values_round_trip_including_null_nan_bool(self):
        manager = SpillManager(10)
        handle = manager.new_file()
        rows = [
            (1, "x", None, 2.5, True),
            (2, "", NAN, -7, False),
            (None, None, None, None, None),
            (3, "multi\nline 'quoted'", 0.0, 9, True),
        ]
        for values in rows:
            handle.append(values)
        out = [values for values, anns in handle.entries()]
        assert out[0] == rows[0]
        assert out[1][0] == 2 and out[1][1] == "" and math.isnan(out[1][2])
        assert out[2] == rows[2]
        assert out[3] == rows[3]
        assert all(anns is None for _, anns in [])
        assert manager.stats.spilled_rows == 4
        assert manager.stats.spilled_bytes == handle.bytes_written > 0
        handle.close()

    def test_annotation_identity_survives_round_trip(self):
        manager = SpillManager(10)
        handle = manager.new_file()
        first = Annotation(1, "notes", "curated")
        second = Annotation(2, "notes", "reviewed")
        handle.append(("a", 1), [{first, second}, set()])
        handle.append(("b", 2), None)
        handle.append(("c", 3), [set(), {first}])
        entries = list(handle.entries())
        assert entries[0][1] == [{first, second}, set()]
        # Interning hands back the very same objects, not copies.
        assert next(iter(entries[2][1][1])) is first
        assert entries[1][1] is None
        handle.close()

    def test_all_empty_annotation_vector_collapses_to_none(self):
        manager = SpillManager(10)
        handle = manager.new_file()
        handle.append((1,), [set()])
        assert list(handle.entries()) == [((1,), None)]
        handle.close()

    def test_empty_file_yields_nothing(self):
        manager = SpillManager(10)
        handle = manager.new_file()
        assert list(handle.entries()) == []
        handle.close()

    def test_clamp_partitions(self):
        assert clamp_partitions(10, 100) == 2
        assert clamp_partitions(1000, 100) == 10
        assert clamp_partitions(10_000_000, 100) == 32


# ---------------------------------------------------------------------------
# External sort
# ---------------------------------------------------------------------------
def _order_relation(rows):
    schema = OutputSchema([ColumnInfo("v"), ColumnInfo("id")])
    return schema, iter([Row(values) for values in rows])


def _sorted_values(rows, order_items, budget=None):
    spill = SpillManager(budget) if budget is not None else None
    schema, out = ops.order_by(_order_relation(rows), order_items, spill=spill)
    return [row.values for row in out]


class TestExternalSort:
    DATA = [(3.0, 1), (None, 2), (NAN, 3), (3.0, 4), (1.0, 5), (None, 6),
            (NAN, 7), (-2.0, 8), (3.0, 9), (0.0, 10)]
    ASC = [ast.OrderItem(ast.ColumnRef("v"), True)]
    DESC = [ast.OrderItem(ast.ColumnRef("v"), False)]
    MULTI = [ast.OrderItem(ast.ColumnRef("v"), False),
             ast.OrderItem(ast.ColumnRef("id"), True)]

    @pytest.mark.parametrize("budget", [1, 2, 3, 100])
    @pytest.mark.parametrize("items", [ASC, DESC, MULTI],
                             ids=["asc", "desc", "multi"])
    def test_matches_in_memory_sort_with_dup_null_nan_keys(self, budget, items):
        # repr-compare: NaN != NaN would fail tuple equality even for
        # identical orders.
        assert list(map(repr, _sorted_values(self.DATA, items, budget))) == \
            list(map(repr, _sorted_values(self.DATA, items)))

    def test_ties_preserve_input_order_across_runs(self):
        data = [(1.0, i) for i in range(10)]
        assert _sorted_values(data, self.ASC, budget=3) == data

    def test_empty_input(self):
        assert _sorted_values([], self.ASC, budget=1) == []

    def test_input_within_budget_does_not_spill(self):
        spill = SpillManager(100)
        schema, out = ops.order_by(_order_relation(self.DATA), self.ASC,
                                   spill=spill)
        list(out)
        assert not spill.stats.spilled

    def test_run_counts_recorded(self):
        spill = SpillManager(3)
        schema, out = ops.order_by(_order_relation(self.DATA), self.ASC,
                                   spill=spill)
        list(out)
        (event,) = spill.stats.events("sort")
        assert event["runs"] == 4  # 3 spilled runs of 3 + 1 in-memory run of 1
        assert event["spilled_rows"] == 9


# ---------------------------------------------------------------------------
# Partition recursion (hash join and GROUP BY)
# ---------------------------------------------------------------------------
def _paired_dbs(budget):
    spilling = Database(memory_budget_rows=budget)
    baseline = Database()
    for db in (spilling, baseline):
        db.execute("CREATE TABLE fact (id INTEGER PRIMARY KEY, k INTEGER, v FLOAT)")
        db.execute("CREATE TABLE dim (id INTEGER PRIMARY KEY, k INTEGER, t TEXT)")
    return spilling, baseline


def _load(db, fact_rows, dim_rows):
    fact, dim = db.table("fact"), db.table("dim")
    for i, (k, v) in enumerate(fact_rows):
        fact.insert_row({"id": i, "k": k, "v": v})
    for i, (k, t) in enumerate(dim_rows):
        dim.insert_row({"id": i, "k": k, "t": t})


class TestPartitionRecursion:
    def test_oversized_partitions_recurse_and_match_baseline(self):
        spilling, baseline = _paired_dbs(4)
        fact = [(i % 40, i * 0.5) for i in range(160)]
        dim = [(i % 40, f"t{i}") for i in range(120)]
        for db in (spilling, baseline):
            _load(db, fact, dim)
        query = "SELECT fact.id, dim.id FROM fact, dim WHERE fact.k = dim.k"
        spilling.config.join_strategy = "hash"
        got = sorted(spilling.query(query).values())
        (event,) = spilling.engine.last_spill.events("hash_join")
        # 120 build rows over the default 8 partitions leaves ~15 rows per
        # partition, still over budget 4: recursion must have split again.
        assert event["recursive_splits"] > 0
        baseline.config.join_strategy = "nested_loop"
        assert got == sorted(baseline.query(query).values())

    def test_single_key_skew_stops_recursing_and_stays_correct(self):
        """Every build row shares one key: rehashing can never split the
        partition, so recursion must detect the dead end and join in memory."""
        spilling, baseline = _paired_dbs(3)
        fact = [(7, i * 1.0) for i in range(12)]
        dim = [(7, f"t{i}") for i in range(15)]
        for db in (spilling, baseline):
            _load(db, fact, dim)
        query = "SELECT fact.id, dim.id FROM fact, dim WHERE fact.k = dim.k"
        spilling.config.join_strategy = "hash"
        got = sorted(spilling.query(query).values())
        assert len(got) == 12 * 15
        baseline.config.join_strategy = "nested_loop"
        assert got == sorted(baseline.query(query).values())

    def test_group_by_partitions_recurse_on_skew(self):
        spilling, baseline = _paired_dbs(5)
        fact = [(1 if i < 90 else i % 7, float(i)) for i in range(120)]
        for db in (spilling, baseline):
            _load(db, fact, [])
        query = "SELECT k, COUNT(*), SUM(v), MIN(v) FROM fact GROUP BY k"
        got = sorted(spilling.query(query).values())
        assert spilling.engine.last_spill.events("group_by")
        assert got == sorted(baseline.query(query).values())

    def test_left_join_null_probe_keys_pad_without_spilling(self):
        spilling, baseline = _paired_dbs(2)
        for db in (spilling, baseline):
            db.execute("INSERT INTO fact VALUES (0, NULL, 1.0), (1, 3, 2.0), "
                       "(2, NULL, 3.0), (3, 4, 4.0), (4, 5, 5.0)")
            db.execute("INSERT INTO dim VALUES (0, 3, 'a'), (1, 3, 'b'), "
                       "(2, 9, 'c'), (3, 4, 'd'), (4, 6, 'e')")
        query = ("SELECT fact.id, dim.id FROM fact "
                 "LEFT JOIN dim ON fact.k = dim.k")
        spilling.config.join_strategy = "hash"
        baseline.config.join_strategy = "nested_loop"
        got = sorted(spilling.query(query).values(), key=repr)
        assert got == sorted(baseline.query(query).values(), key=repr)

    def test_nan_join_keys_bucket_together_through_spill(self):
        """NaN keys: all NaNs share one bucket (NaN = NaN, matching the
        in-memory hash join) and the canonical bucketing survives the
        serialize/deserialize round trip of the spill files."""
        spilling = Database(memory_budget_rows=2)
        baseline = Database()
        rows_a = [NAN, 1.0, 2.0, NAN, 3.0, None, 2.0]
        rows_b = [2.0, NAN, NAN, None, 5.0, 1.0]
        for db in (spilling, baseline):
            db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, x FLOAT)")
            db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, y FLOAT)")
            for i, x in enumerate(rows_a):
                db.table("a").insert_row({"id": i, "x": x})
            for i, y in enumerate(rows_b):
                db.table("b").insert_row({"id": i, "y": y})
        query = "SELECT a.id, b.id FROM a, b WHERE a.x = b.y"
        spilling.config.join_strategy = "hash"
        baseline.config.join_strategy = "nested_loop"
        got = sorted(spilling.query(query).values())
        assert spilling.engine.last_spill.spilled
        assert got == sorted(baseline.query(query).values())


# ---------------------------------------------------------------------------
# The acceptance proof: bounded memory, identical answers, reported spill
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def large_db() -> Database:
    """Inputs far larger than the budget used by the bounded-memory tests."""
    db = Database()
    db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY, k INTEGER, v FLOAT)")
    db.execute("CREATE TABLE dim (id INTEGER PRIMARY KEY, k INTEGER)")
    big, dim = db.table("big"), db.table("dim")
    for i in range(20_000):
        big.insert_row({"id": i, "k": i % 50, "v": i * 0.5})
    for i in range(20_000):
        dim.insert_row({"id": i, "k": i})
    db.analyze()
    return db


def _drain_peak(db: Database, query: str, budget) -> tuple:
    """(row count, tracemalloc peak) of streaming ``query`` to exhaustion."""
    db.config.memory_budget_rows = budget
    db.config.join_strategy = "hash"
    try:
        tracemalloc.start()
        count = sum(1 for _ in db.stream(query))
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
        db.config.memory_budget_rows = None
        db.config.join_strategy = "auto"
    return count, peak


def test_join_larger_than_budget_has_bounded_peak_memory(large_db):
    """A 20k x 20k equi-join with a 2000-row budget must spill instead of
    holding the build side: far lower peak than the in-memory hash join,
    same row count, and the spill is visible in ``engine.last_spill``."""
    query = "SELECT big.id, dim.id FROM big, dim WHERE big.id = dim.k"
    in_memory_count, in_memory_peak = _drain_peak(large_db, query, None)
    assert not large_db.engine.last_spill.spilled
    spilled_count, spilled_peak = _drain_peak(large_db, query, 2_000)
    stats = large_db.engine.last_spill
    assert stats.spilled
    (event,) = stats.events("hash_join")
    assert event["partitions"] >= 2
    assert event["build_rows"] == 20_000
    assert spilled_count == in_memory_count == 20_000
    assert spilled_peak < in_memory_peak / 2.5


def test_group_by_larger_than_budget_has_bounded_peak_memory(large_db):
    query = "SELECT k, COUNT(*), SUM(v) FROM big GROUP BY k"
    in_memory_count, in_memory_peak = _drain_peak(large_db, query, None)
    spilled_count, spilled_peak = _drain_peak(large_db, query, 1_000)
    stats = large_db.engine.last_spill
    assert stats.events("group_by")
    assert spilled_count == in_memory_count == 50
    assert spilled_peak < in_memory_peak / 2
    # Same aggregates either way.
    large_db.config.memory_budget_rows = 1_000
    try:
        spilled = sorted(large_db.query(query).values())
    finally:
        large_db.config.memory_budget_rows = None
    assert spilled == sorted(large_db.query(query).values())


def test_global_aggregate_streams_without_buffering(large_db):
    """No GROUP BY: the single global group runs through *running*
    accumulators (O(1) state per aggregate, not a per-row value list) —
    tiny peak memory and no spill files at all."""
    query = "SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM big"
    count, peak = _drain_peak(large_db, query, 1_000)
    assert count == 1
    assert not large_db.engine.last_spill.spilled
    # Peak is scan/page overhead, not per-row aggregate state.
    assert peak < 2 * 1024 * 1024
    result = large_db.query(query).values()[0]
    assert result[0] == 20_000 and result[2] == 0.0
    assert result[4] == pytest.approx(sum(i * 0.5 for i in range(20_000))
                                      / 20_000)


def test_spilled_distinct_output_is_disk_merged(large_db):
    """A mostly-distinct input: the merge phase must stream from the
    deduplicated partition files, not hold the whole output in memory."""
    query = "SELECT DISTINCT id FROM big"
    in_memory_count, in_memory_peak = _drain_peak(large_db, query, None)
    spilled_count, spilled_peak = _drain_peak(large_db, query, 1_000)
    assert spilled_count == in_memory_count == 20_000
    assert large_db.engine.last_spill.events("distinct")
    assert spilled_peak < in_memory_peak / 2


def test_spilled_distinct_recurses_on_high_cardinality(large_db):
    """An all-distinct input under a tiny budget: a fixed 8-way fan-out
    would leave 2500-entry per-partition dicts (25x the budget), so the
    oversized partitions must re-partition recursively — peak memory stays
    a small fraction of the in-memory path while the first-seen order
    still survives the multi-level merge."""
    query = "SELECT DISTINCT v FROM big"
    in_memory_count, in_memory_peak = _drain_peak(large_db, query, None)
    spilled_count, spilled_peak = _drain_peak(large_db, query, 100)
    assert spilled_count == in_memory_count == 20_000
    # ~2x at this size (the floor is the k-way merge's per-stream read
    # buffers plus scan overhead, not the distinct sets); the gap widens
    # with input size.  1.5 leaves noise margin.
    assert spilled_peak < in_memory_peak / 1.5
    # Order check at a size where the full comparison is cheap.
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(500):
        db.table("t").insert_row({"id": i, "v": i % 7 if i % 2 else i})
    baseline = [row.values for row in
                db.query("SELECT DISTINCT v FROM t ORDER BY v").rows]
    db.config.memory_budget_rows = 20
    got = [row.values for row in
           db.query("SELECT DISTINCT v FROM t ORDER BY v").rows]
    assert got == baseline


def test_external_sort_larger_than_budget(large_db):
    query = "SELECT id, v FROM big ORDER BY v DESC"
    large_db.config.memory_budget_rows = 2_000
    try:
        head = large_db.query(query + " LIMIT 3").values()
        (event,) = large_db.engine.last_spill.events("sort")
        assert event["runs"] == 10
    finally:
        large_db.config.memory_budget_rows = None
    assert head == large_db.query(query + " LIMIT 3").values()


# ---------------------------------------------------------------------------
# Planner / EXPLAIN / observability surface
# ---------------------------------------------------------------------------
class TestSpillSurface:
    def test_explain_surfaces_hash_join_spill_decision(self, large_db):
        query = "SELECT big.id FROM big, dim WHERE big.id = dim.k"
        large_db.config.memory_budget_rows = 2_000
        large_db.config.join_strategy = "hash"
        try:
            explained = large_db.explain(query)
        finally:
            large_db.config.memory_budget_rows = None
            large_db.config.join_strategy = "auto"
        assert "[spill:" in explained.message
        assert "partitions]" in explained.message
        plan = explained.details["plan"]
        assert plan["memory_budget_rows"] == 2_000
        assert plan["spill_partitions"] == 10

    def test_explain_surfaces_external_sort_and_aggregate_spill(self, large_db):
        large_db.config.memory_budget_rows = 2_000
        try:
            ordered = large_db.explain("SELECT id FROM big ORDER BY v")
            assert "Sort [external: 10 runs]" in ordered.message
            assert ordered.details["plan"]["sort"] == "external"
            grouped = large_db.explain(
                "SELECT k, COUNT(*) FROM big GROUP BY k")
            assert "Aggregate [spill:" in grouped.message
        finally:
            large_db.config.memory_budget_rows = None

    def test_explain_surfaces_external_sort_over_grouped_output(self, large_db):
        """ORDER BY over a GROUP BY sorts the *grouped* output: the external
        prediction must come from the estimated group count (50 here), not
        the 20k aggregation input."""
        large_db.config.memory_budget_rows = 2_000
        try:
            few_groups = large_db.explain(
                "SELECT k, COUNT(*) FROM big GROUP BY k ORDER BY k")
            # 50 groups fit the 2000-row budget: no external sort line.
            assert "Sort [external" not in few_groups.message
            large_db.config.memory_budget_rows = 10
            many = large_db.explain(
                "SELECT k, COUNT(*) FROM big GROUP BY k ORDER BY k")
            assert "Sort [external: 5 runs]" in many.message
            assert many.details["plan"]["sort"] == "external"
        finally:
            large_db.config.memory_budget_rows = None

    def test_explain_global_aggregate_predicts_no_spill(self, large_db):
        """No GROUP BY: the global group streams, so EXPLAIN must not
        predict an aggregate spill however large the input."""
        large_db.config.memory_budget_rows = 10
        try:
            explained = large_db.explain("SELECT COUNT(*), SUM(v) FROM big")
        finally:
            large_db.config.memory_budget_rows = None
        assert "Aggregate [spill" not in explained.message

    def test_no_budget_no_spill_annotations(self, large_db):
        explained = large_db.explain(
            "SELECT big.id FROM big, dim WHERE big.id = dim.k")
        assert "[spill:" not in explained.message
        assert "memory_budget_rows" not in explained.details["plan"]

    def test_planner_hint_sets_operator_fanout(self, large_db):
        """The executor uses the cost model's partition count, not a fixed
        default: the recorded event matches the plan annotation."""
        query = "SELECT big.id FROM big, dim WHERE big.id = dim.k"
        large_db.config.memory_budget_rows = 2_000
        large_db.config.join_strategy = "hash"
        try:
            large_db.query(query)
            plan = large_db.engine.last_plan
            (event,) = large_db.engine.last_spill.events("hash_join")
            assert plan.spill_partitions == event["partitions"] == 10
        finally:
            large_db.config.memory_budget_rows = None
            large_db.config.join_strategy = "auto"

    def test_sort_not_elided_through_possibly_spilling_hash_join(self):
        """PR-3 sort elision trusts the hash probe side's order, but a
        Grace spill emits partition order — and spilling is an adaptive
        runtime decision.  With a budget configured, order must therefore
        never propagate through a hash join: the rows stay sorted and
        ``last_sort_elided`` is False."""
        db = Database()
        db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
        db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, fk INTEGER)")
        for i in range(600):
            db.table("a").insert_row({"id": i, "v": (i * 389) % 600})
        for i in range(150):
            db.table("b").insert_row({"id": i, "fk": (i * 7) % 600})
        db.execute("CREATE INDEX ix_a_v ON a (v) USING btree")
        db.analyze()
        query = ("SELECT a.v, b.id FROM a, b WHERE a.id = b.fk "
                 "AND a.v > 5 AND a.v < 590 ORDER BY a.v LIMIT 50")
        db.config.join_strategy = "hash"
        baseline = db.query(query).values()
        db.config.memory_budget_rows = 50
        try:
            got = db.query(query).values()
            assert not db.engine.last_sort_elided
            assert db.engine.last_spill.events("hash_join")
        finally:
            db.config.memory_budget_rows = None
            db.config.join_strategy = "auto"
        assert got == baseline
        assert [v for v, _ in got] == sorted(v for v, _ in got)

    def test_groupby_spill_fanout_matches_explain_estimate(self, large_db):
        """The operator sizes its fan-out from the same input estimate
        EXPLAIN prints, not a fixed default."""
        query = "SELECT k, COUNT(*) FROM big GROUP BY k"
        large_db.config.memory_budget_rows = 1_000
        try:
            explained = large_db.explain(query)
            assert "Aggregate [spill: 20 partitions]" in explained.message
            large_db.query(query)
            (event,) = large_db.engine.last_spill.events("group_by")
            assert event["partitions"] == 20
        finally:
            large_db.config.memory_budget_rows = None

    def test_auto_keeps_spillable_hash_for_huge_builds_under_budget(self):
        """Without a budget, auto escapes huge builds to merge join; with
        one, it must stay on hash — merge inputs cannot spill yet, so the
        escape would defeat the budget at exactly the scale it targets."""
        from repro.planner.plan import plan_strategies
        db = Database()
        db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, fk INTEGER)")
        for i in range(50):
            db.table("a").insert_row({"id": i})
            db.table("b").insert_row({"id": i, "fk": i})
        db.analyze()
        db.config.hash_join_max_build_rows = 10  # both sides "huge"
        query = "SELECT a.id FROM a, b WHERE a.id = b.fk"
        try:
            db.query(query)
            assert plan_strategies(db.engine.last_plan) == ["merge"]
            db.config.memory_budget_rows = 20
            result = db.query(query)
            assert plan_strategies(db.engine.last_plan) == ["hash"]
            assert db.engine.last_spill.events("hash_join")
            assert len(result) == 50
        finally:
            db.config.memory_budget_rows = None

    def test_last_spill_resets_per_query(self, large_db):
        large_db.config.memory_budget_rows = 2_000
        try:
            large_db.query("SELECT k, COUNT(*) FROM big GROUP BY k")
            assert large_db.engine.last_spill.spilled
            large_db.query("SELECT id FROM big LIMIT 1")
            assert not large_db.engine.last_spill.spilled
        finally:
            large_db.config.memory_budget_rows = None


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------
class TestConfig:
    @pytest.mark.parametrize("bad", [0, -5, True, "lots", 2.5])
    def test_invalid_budget_rejected_eagerly(self, bad):
        with pytest.raises(PlanningError):
            EngineConfig(memory_budget_rows=bad)

    def test_database_kwarg_plumbs_through(self):
        db = Database(memory_budget_rows=123)
        assert db.config.memory_budget_rows == 123
        assert db.engine.config.memory_budget_rows == 123

    def test_stats_as_dict_shape(self):
        stats = SpillStats()
        stats.record("sort", runs=2)
        payload = stats.as_dict()
        assert payload["operators"] == [{"operator": "sort", "runs": 2}]
        assert payload["spill_files"] == 0
