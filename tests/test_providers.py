"""The pluggable table-provider subsystem: ATTACH/DETACH SQL, pushed-down
foreign scans, WAL recovery of attachments, and fault behavior.

Covers the provider registry seam, the three built-in providers (csv, jsonl,
repro), the ForeignScan plan node (EXPLAIN rendering, projection + filter
pushdown), queryability over the network server, and the typed
OperationalError surfaces when a backing file vanishes, truncates, or drifts
its schema after ATTACH.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.client
from repro import Database
from repro.core.errors import (
    CatalogError,
    OperationalError,
    ProgrammingError,
    SqlSyntaxError,
)
from repro.providers import (
    CsvTableProvider,
    JsonlTableProvider,
    ProviderRegistry,
    TableProvider,
    registry,
)
from repro.server import start_server
from repro.types.datatypes import DataType


# ---------------------------------------------------------------------------
# Fixtures: backing files
# ---------------------------------------------------------------------------
@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "people.csv"
    with open(path, "w") as handle:
        handle.write("id,name,score\n")
        for i in range(1, 41):
            handle.write(f"{i},person{i},{i * 1.5}\n")
    return str(path)


@pytest.fixture
def jsonl_file(tmp_path):
    path = tmp_path / "events.jsonl"
    with open(path, "w") as handle:
        for i in range(1, 31):
            handle.write(json.dumps(
                {"eid": i, "kind": "a" if i % 2 else "b", "w": i * 0.25}) + "\n")
    return str(path)


@pytest.fixture
def repro_file(tmp_path):
    path = str(tmp_path / "remote.db")
    with Database(path) as remote:
        cur = remote.connect().cursor()
        cur.execute("CREATE TABLE facts (fid INTEGER, body TEXT)")
        for i in range(1, 9):
            cur.execute("INSERT INTO facts VALUES (?, ?)", (i, f"fact{i}"))
        cur.execute("CREATE ANNOTATION TABLE notes ON facts")
        cur.execute("ADD ANNOTATION TO facts.notes VALUE 'curated' "
                    "ON (SELECT body FROM facts WHERE fid = 2)")
    return path


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


def cursor_of(database):
    return database.connect().cursor()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        for name in ("csv", "jsonl", "repro"):
            assert registry.is_registered(name)

    def test_unknown_type_lists_registered(self):
        fresh = ProviderRegistry()
        with pytest.raises(OperationalError, match="unknown table provider"):
            fresh.create("nope", "file:///x", {})

    def test_duplicate_registration_rejected_then_replaceable(self):
        fresh = ProviderRegistry()
        fresh.register("x", CsvTableProvider)
        with pytest.raises(OperationalError, match="already registered"):
            fresh.register("x", CsvTableProvider)
        fresh.register("x", JsonlTableProvider, replace=True)
        fresh.unregister("x")
        assert not fresh.is_registered("x")

    def test_custom_provider_through_sql(self, db):
        class OneRow(TableProvider):
            provider_name = "onerow"

            def discover_schema(self):
                from repro.catalog.schema import Column, TableSchema
                return TableSchema("onerow", [Column("v", DataType.INTEGER)])

            def scan_batches(self, columns=None, pushed_filters=(),
                             limit=None, *, qualifier=None, batch_size=256):
                from repro.executor.row import RowBatch
                yield RowBatch([(42,)])

        registry.register("onerow", OneRow)
        try:
            cur = cursor_of(db)
            cur.execute("ATTACH 'x://anything' AS one (TYPE onerow)")
            cur.execute("SELECT v FROM one")
            assert [row.values for row in cur.fetchall()] == [(42,)]
        finally:
            registry.unregister("onerow")


# ---------------------------------------------------------------------------
# Schema discovery
# ---------------------------------------------------------------------------
class TestDiscovery:
    def test_csv_type_inference(self, csv_file):
        schema = CsvTableProvider(csv_file, {}).discover_schema()
        assert [(c.name, c.dtype) for c in schema.columns] == [
            ("id", DataType.INTEGER), ("name", DataType.TEXT),
            ("score", DataType.FLOAT)]

    def test_csv_headerless(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1,x\n2,y\n")
        schema = CsvTableProvider(str(path), {"header": False}).discover_schema()
        assert schema.column_names == ["c1", "c2"]
        assert schema.columns[0].dtype == DataType.INTEGER

    def test_csv_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(OperationalError):
            CsvTableProvider(str(path), {}).discover_schema()

    def test_jsonl_type_widening(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text('{"a": 1, "b": true}\n{"a": 2.5, "b": false}\n')
        schema = JsonlTableProvider(str(path), {}).discover_schema()
        assert [(c.name, c.dtype) for c in schema.columns] == [
            ("a", DataType.FLOAT), ("b", DataType.BOOLEAN)]

    def test_bad_option_value_raises(self, csv_file):
        with pytest.raises(OperationalError, match="pushdown"):
            CsvTableProvider(csv_file, {"pushdown": "maybe"}).scan_batches()


# ---------------------------------------------------------------------------
# ATTACH / DETACH SQL surface
# ---------------------------------------------------------------------------
class TestAttachDetach:
    def test_attach_select_detach(self, db, csv_file):
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        assert db.foreign_table_names() == ["people"]
        cur.execute("SELECT name FROM people WHERE id = 7")
        assert cur.fetchall()[0].values == ("person7",)
        cur.execute("DETACH people")
        assert db.foreign_table_names() == []
        with pytest.raises(ProgrammingError):
            cur.execute("SELECT * FROM people")

    def test_attach_requires_type_option(self, db, csv_file):
        with pytest.raises((SqlSyntaxError, ProgrammingError),
                           match="TYPE"):
            cursor_of(db).execute(f"ATTACH '{csv_file}' AS people (delimiter ',')")

    def test_duplicate_and_collision_names(self, db, csv_file):
        cur = cursor_of(db)
        cur.execute("CREATE TABLE people (id INTEGER)")
        with pytest.raises(ProgrammingError, match="base table"):
            cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        cur.execute(f"ATTACH '{csv_file}' AS folks (TYPE csv)")
        with pytest.raises(ProgrammingError, match="already attached"):
            cur.execute(f"ATTACH '{csv_file}' AS folks (TYPE csv)")
        with pytest.raises(ProgrammingError, match="foreign table"):
            cur.execute("CREATE TABLE folks (id INTEGER)")

    def test_detach_unknown(self, db):
        with pytest.raises(ProgrammingError, match="no attached"):
            cursor_of(db).execute("DETACH ghost")

    def test_unknown_provider_type(self, db, csv_file):
        with pytest.raises(OperationalError, match="unknown table provider"):
            cursor_of(db).execute(
                f"ATTACH '{csv_file}' AS people (TYPE parquet)")

    def test_foreign_tables_are_read_only(self, db, csv_file):
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        for sql in ("INSERT INTO people VALUES (99, 'x', 1.0)",
                    "UPDATE people SET name = 'x' WHERE id = 1",
                    "DELETE FROM people WHERE id = 1"):
            with pytest.raises(OperationalError, match="read-only"):
                cur.execute(sql)

    def test_attach_invalidates_cached_plans(self, db, csv_file):
        cur = cursor_of(db)
        cur.execute("CREATE TABLE t (id INTEGER)")
        cur.execute("INSERT INTO t VALUES (1)")
        cur.execute("SELECT id FROM t WHERE id = ?", (1,))
        cur.fetchall()
        version = db.catalog.schema_version
        cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        assert db.catalog.schema_version > version


# ---------------------------------------------------------------------------
# Planner integration: ForeignScan, pushdown, EXPLAIN
# ---------------------------------------------------------------------------
class TestForeignScanPlanning:
    def test_explain_renders_provider_pushed_and_columns(self, db, csv_file):
        cursor_of(db).execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        message = db.explain(
            "SELECT name FROM people WHERE id > 30").message
        assert "ForeignScan people" in message
        assert "[provider: csv]" in message
        assert "[pushed: id > 30]" in message
        assert "[columns: id, name]" in message

    def test_pushdown_off_renders_and_stays_correct(self, db, csv_file):
        cur = cursor_of(db)
        cur.execute(
            f"ATTACH '{csv_file}' AS people (TYPE csv, pushdown false)")
        message = db.explain("SELECT name FROM people WHERE id > 30").message
        assert "[pushdown: off]" in message
        cur.execute("SELECT name FROM people WHERE id > 38")
        assert sorted(r.values[0] for r in cur.fetchall()) == \
            ["person39", "person40"]

    def test_select_star_projects_all(self, db, jsonl_file):
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{jsonl_file}' AS events (TYPE jsonl)")
        cur.execute("SELECT * FROM events WHERE eid = 3")
        rows = cur.fetchall()
        assert rows[0].values == (3, "a", 0.75)
        assert "[columns:" not in db.explain("SELECT * FROM events").message

    def test_provider_statistics_feed_estimates(self, db, csv_file):
        cursor_of(db).execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        db.explain("SELECT id FROM people")
        estimated = db.engine.last_plan.estimated_rows
        # File-size heuristic: right order of magnitude for 40 rows.
        assert 10 <= estimated <= 200

    def test_limit_pushed_to_provider(self, db, csv_file):
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        cur.execute("SELECT id FROM people LIMIT 3")
        assert len(cur.fetchall()) == 3


# ---------------------------------------------------------------------------
# repro provider: another database file, annotations included
# ---------------------------------------------------------------------------
class TestReproProvider:
    def test_scan_with_annotations(self, db, repro_file):
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{repro_file}' AS facts (TYPE repro)")
        cur.execute("SELECT fid, body FROM facts WHERE fid <= 3")
        rows = cur.fetchall()
        assert [r.values for r in rows] == [
            (1, "fact1"), (2, "fact2"), (3, "fact3")]
        bodies = {a.body for r in rows for cell in r.annotations for a in cell}
        assert any("curated" in body for body in bodies)

    def test_annotations_off_option(self, db, repro_file):
        cur = cursor_of(db)
        cur.execute(
            f"ATTACH '{repro_file}' AS facts (TYPE repro, annotations false)")
        cur.execute("SELECT body FROM facts WHERE fid = 2")
        row = cur.fetchall()[0]
        assert all(not cell for cell in row.annotations)

    def test_table_option_and_errors(self, db, tmp_path):
        path = str(tmp_path / "multi.db")
        with Database(path) as remote:
            cur = remote.connect().cursor()
            cur.execute("CREATE TABLE a (x INTEGER)")
            cur.execute("CREATE TABLE b (y INTEGER)")
        cur = cursor_of(db)
        with pytest.raises(OperationalError, match="TABLE"):
            cur.execute(f"ATTACH '{path}' AS m (TYPE repro)")
        cur.execute(f"ATTACH '{path}' AS m (TYPE repro, TABLE 'b')")
        cur.execute("SELECT * FROM m")
        assert cur.fetchall() == []

    def test_missing_database_file(self, db, tmp_path):
        with pytest.raises(OperationalError, match="does not exist"):
            cursor_of(db).execute(
                f"ATTACH '{tmp_path}/ghost.db' AS g (TYPE repro)")


# ---------------------------------------------------------------------------
# WAL recovery of attachments
# ---------------------------------------------------------------------------
class TestRecovery:
    def test_attach_survives_reopen(self, tmp_path, csv_file):
        path = str(tmp_path / "main.db")
        with Database(path) as database:
            cursor_of(database).execute(
                f"ATTACH '{csv_file}' AS people (TYPE csv)")
        with Database(path) as database:
            assert database.foreign_table_names() == ["people"]
            cur = cursor_of(database)
            cur.execute("SELECT count(*) FROM people")
            assert cur.fetchall()[0].values == (40,)

    def test_detach_survives_reopen(self, tmp_path, csv_file):
        path = str(tmp_path / "main.db")
        with Database(path) as database:
            cur = cursor_of(database)
            cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
            cur.execute("DETACH people")
        with Database(path) as database:
            assert database.foreign_table_names() == []

    def test_rolled_back_attach_is_undone(self, tmp_path, csv_file):
        path = str(tmp_path / "main.db")
        with Database(path) as database:
            cur = cursor_of(database)
            cur.execute("BEGIN")
            cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
            assert database.foreign_table_names() == ["people"]
            cur.execute("ROLLBACK")
            assert database.foreign_table_names() == []
        with Database(path) as database:
            assert database.foreign_table_names() == []

    def test_reopen_with_vanished_file_defers_error_to_scan(self, tmp_path):
        source = tmp_path / "gone.csv"
        source.write_text("a,b\n1,2\n")
        path = str(tmp_path / "main.db")
        with Database(path) as database:
            cursor_of(database).execute(
                f"ATTACH '{source}' AS gone (TYPE csv)")
        os.remove(source)
        with Database(path) as database:
            assert database.foreign_table_names() == ["gone"]
            with pytest.raises(OperationalError, match="cannot open"):
                cursor_of(database).execute("SELECT * FROM gone")


# ---------------------------------------------------------------------------
# Fault behavior: vanished, truncated, and drifted sources
# ---------------------------------------------------------------------------
class TestFaults:
    def test_vanished_file_raises_typed_error(self, db, csv_file):
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        os.remove(csv_file)
        with pytest.raises(OperationalError, match="cannot open"):
            cur.execute("SELECT * FROM people")

    def test_truncated_csv_row_raises(self, db, csv_file):
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        with open(csv_file, "a") as handle:
            handle.write("41,dangling\n")   # 2 fields, expected 3
        with pytest.raises(OperationalError, match="truncated or malformed"):
            cur.execute("SELECT * FROM people")
            cur.fetchall()

    def test_malformed_jsonl_line_raises(self, db, jsonl_file):
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{jsonl_file}' AS events (TYPE jsonl)")
        with open(jsonl_file, "a") as handle:
            handle.write('{"eid": 99, "kind":\n')
        with pytest.raises(OperationalError, match="truncated or malformed"):
            cur.execute("SELECT * FROM events")
            cur.fetchall()

    def test_schema_drift_raises_with_remediation(self, db, csv_file):
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        with open(csv_file, "w") as handle:
            handle.write("id,name,score,extra\n1,x,1.0,y\n")
        with pytest.raises(OperationalError, match="drifted since ATTACH"):
            cur.execute("SELECT * FROM people")

    def test_bad_cell_value_is_positioned(self, db, csv_file):
        # Keep the inference sample short of the bad row so the drift check
        # passes and the scan itself hits the unparsable cell.
        cur = cursor_of(db)
        cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv, sample 10)")
        with open(csv_file, "a") as handle:
            handle.write("oops,x,1.0\n")
        with pytest.raises(OperationalError, match="row 42"):
            cur.execute("SELECT * FROM people")
            cur.fetchall()


# ---------------------------------------------------------------------------
# Over the wire: foreign tables behind the network server
# ---------------------------------------------------------------------------
class TestServerIntegration:
    def test_foreign_table_queryable_over_socket(self, csv_file, repro_file):
        database = Database()
        cur = cursor_of(database)
        cur.execute(f"ATTACH '{csv_file}' AS people (TYPE csv)")
        cur.execute(f"ATTACH '{repro_file}' AS facts (TYPE repro)")
        handle = start_server(database)
        try:
            conn = repro.client.connect(port=handle.port)
            try:
                remote = conn.cursor()
                remote.execute(
                    "SELECT name FROM people WHERE id > ?", (38,))
                values = sorted(r.values[0] for r in remote.fetchall())
                assert values == ["person39", "person40"]
                remote.execute("SELECT body FROM facts WHERE fid = 2")
                row = remote.fetchall()[0]
                assert row.values == ("fact2",)
                bodies = {a.body for cell in row.annotations for a in cell}
                assert any("curated" in body for body in bodies)
                remote.execute(
                    f"ATTACH '{csv_file}' AS wired (TYPE csv)")
                remote.execute("SELECT count(*) FROM wired")
                assert remote.fetchall()[0].values == (40,)
            finally:
                conn.close()
        finally:
            handle.shutdown()
            database.close()
