"""Tests for the value model: data types, coercion, comparison, serialization."""

from __future__ import annotations

from datetime import datetime

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import StorageError, TypeMismatchError
from repro.types.datatypes import DataType, coerce, format_value, parse_timestamp
from repro.types.values import (
    SortKey,
    compare_values,
    deserialize_row,
    serialize_row,
    values_equal,
)


class TestDataTypeResolution:
    def test_aliases_resolve(self):
        assert DataType.from_name("int") is DataType.INTEGER
        assert DataType.from_name("VARCHAR") is DataType.TEXT
        assert DataType.from_name("double") is DataType.FLOAT
        assert DataType.from_name("bool") is DataType.BOOLEAN
        assert DataType.from_name("Sequence") is DataType.SEQUENCE
        assert DataType.from_name("xml") is DataType.XML

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            DataType.from_name("blob")


class TestCoercion:
    def test_integer_from_string(self):
        assert coerce("42", DataType.INTEGER) == 42

    def test_integer_from_float_with_fraction_fails(self):
        with pytest.raises(TypeMismatchError):
            coerce(1.5, DataType.INTEGER)

    def test_integer_from_whole_float(self):
        assert coerce(3.0, DataType.INTEGER) == 3

    def test_float_from_int(self):
        assert coerce(7, DataType.FLOAT) == 7.0

    def test_text_from_number(self):
        assert coerce(12, DataType.TEXT) == "12"

    def test_boolean_from_strings(self):
        assert coerce("true", DataType.BOOLEAN) is True
        assert coerce("f", DataType.BOOLEAN) is False

    def test_boolean_rejects_arbitrary_int(self):
        with pytest.raises(TypeMismatchError):
            coerce(7, DataType.BOOLEAN)

    def test_null_allowed_when_nullable(self):
        assert coerce(None, DataType.TEXT) is None

    def test_null_rejected_when_not_nullable(self):
        with pytest.raises(TypeMismatchError):
            coerce(None, DataType.TEXT, nullable=False)

    def test_timestamp_from_string(self):
        value = coerce("2026-06-15 10:30:00", DataType.TIMESTAMP)
        assert value == datetime(2026, 6, 15, 10, 30)

    def test_timestamp_date_only(self):
        assert parse_timestamp("2007-01-07") == datetime(2007, 1, 7)

    def test_timestamp_invalid(self):
        with pytest.raises(TypeMismatchError):
            parse_timestamp("yesterday")

    def test_sequence_is_text_like(self):
        assert coerce("ATGAAA", DataType.SEQUENCE) == "ATGAAA"


class TestComparison:
    def test_null_comparison_is_unknown(self):
        assert compare_values(None, 1) is None
        assert values_equal(None, None) is None

    def test_numeric_cross_type(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(2, 1.5) == 1

    def test_string_comparison(self):
        assert compare_values("JW0055", "JW0080") == -1

    def test_mixed_types_fall_back_to_strings(self):
        assert compare_values("10", 9) is not None

    def test_sort_key_orders_nulls_first(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=SortKey)
        assert ordered[:2] == [None, None]
        assert ordered[2:] == [1, 2, 3]

    def test_sort_key_equality(self):
        assert SortKey(None) == SortKey(None)
        assert SortKey(1) == SortKey(1.0)


class TestSerialization:
    def test_roundtrip_mixed_row(self):
        row = (1, "gene", 2.5, None, True, datetime(2020, 5, 4, 3, 2, 1))
        assert deserialize_row(serialize_row(row)) == row

    def test_unsupported_type_raises(self):
        with pytest.raises(StorageError):
            serialize_row(([1, 2],))

    def test_truncated_record_raises(self):
        data = serialize_row((1, "abc"))
        with pytest.raises(StorageError):
            deserialize_row(data[:3])

    @given(st.lists(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-2**62, max_value=2**62),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=80),
        ),
        max_size=12,
    ))
    def test_roundtrip_property(self, values):
        assert deserialize_row(serialize_row(values)) == tuple(values)


class TestFormatting:
    def test_format_null(self):
        assert format_value(None) == "NULL"

    def test_format_boolean(self):
        assert format_value(True) == "TRUE"

    def test_format_timestamp(self):
        text = format_value(datetime(2020, 1, 2, 3, 4, 5))
        assert text.startswith("2020-01-02 03:04:05")
