"""Tests for procedural dependencies, the dependency graph, bitmaps, and the tracker."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.core.errors import DependencyError
from repro.dependencies.bitmap import OutdatedBitmap
from repro.dependencies.graph import DependencyGraph, cell_key
from repro.dependencies.rules import DependencyRule, Procedure, RuleSet
from repro.workloads import build_gene_protein_pipeline


def make_rule(name, sources, targets, executable=False, impl=None,
              source_key=None, target_key=None, proc_name=None):
    return DependencyRule.create(
        name=name,
        sources=sources,
        targets=targets,
        procedure=Procedure(proc_name or f"proc_{name}", executable=executable,
                            invertible=False, implementation=impl),
        source_key=source_key, target_key=target_key,
    )


class TestProcedure:
    def test_implementation_requires_executable(self):
        with pytest.raises(DependencyError):
            Procedure("bad", executable=False, implementation=lambda s, t: 1)

    def test_chain_characteristics(self):
        executable = Procedure("P", executable=True)
        lab = Procedure("Lab", executable=False)
        chained = executable.chain(lab)
        assert chained.executable is False
        assert chained.invertible is False
        assert "P" in chained.name and "Lab" in chained.name

    def test_chain_of_executables_stays_executable(self):
        a = Procedure("A", executable=True, invertible=True)
        b = Procedure("B", executable=True, invertible=True)
        assert a.chain(b).executable is True
        assert a.chain(b).invertible is True


class TestRuleSet:
    def test_paper_rules_and_closures(self):
        """The paper's rules 1-3 and the derived rule 4 (Section 5)."""
        rules = RuleSet()
        rules.add(make_rule("r1", [("Gene", "GSequence")], [("Protein", "PSequence")],
                            executable=True, proc_name="Prediction tool P",
                            impl=lambda s, t: "M"))
        rules.add(make_rule("r2", [("Protein", "PSequence")], [("Protein", "PFunction")],
                            executable=False, proc_name="Lab experiment"))
        rules.add(make_rule("r3", [("GeneMatching", "Gene1"), ("GeneMatching", "Gene2")],
                            [("GeneMatching", "Evalue")],
                            executable=True, proc_name="BLAST-2.2.15",
                            impl=lambda s, t: 0.0))
        closure = rules.attribute_closure([("Gene", "GSequence")])
        assert ("protein", "psequence") in closure
        assert ("protein", "pfunction") in closure
        assert ("genematching", "evalue") not in closure

        blast_closure = rules.procedure_closure("BLAST-2.2.15")
        assert blast_closure == {("genematching", "evalue")}

        derived = rules.derive_chained_rules()
        assert len(derived) == 1
        rule4 = derived[0]
        assert rule4.sources == (("gene", "gsequence"),)
        assert rule4.targets == (("protein", "pfunction"),)
        assert rule4.procedure.executable is False

    def test_duplicate_name_rejected(self):
        rules = RuleSet()
        rules.add(make_rule("r", [("A", "x")], [("B", "y")]))
        with pytest.raises(DependencyError):
            rules.add(make_rule("r", [("A", "x")], [("C", "z")]))

    def test_conflict_detection(self):
        rules = RuleSet()
        rules.add(make_rule("r1", [("A", "x")], [("B", "y")], proc_name="tool1"))
        with pytest.raises(DependencyError):
            rules.add(make_rule("r2", [("A", "x")], [("B", "y")], proc_name="tool2"))

    def test_cycle_detection(self):
        rules = RuleSet()
        rules.add(make_rule("r1", [("A", "x")], [("B", "y")]), check_cycles=True)
        rules.add(make_rule("r2", [("B", "y")], [("C", "z")]), check_cycles=True)
        with pytest.raises(DependencyError):
            rules.add(make_rule("r3", [("C", "z")], [("A", "x")]), check_cycles=True)
        # The offending rule was rolled back.
        assert len(rules) == 2

    def test_remove_rule(self):
        rules = RuleSet()
        rules.add(make_rule("r1", [("A", "x")], [("B", "y")]))
        rules.remove("r1")
        assert len(rules) == 0
        with pytest.raises(DependencyError):
            rules.remove("r1")

    def test_rules_with_source(self):
        rules = RuleSet()
        rules.add(make_rule("r1", [("A", "x")], [("B", "y")]))
        rules.add(make_rule("r2", [("A", "z")], [("B", "w")]))
        assert len(rules.rules_with_source("a", "X")) == 1
        assert len(rules.rules_for_table("b")) == 2


class TestDependencyGraph:
    def test_forward_and_reverse_closure(self):
        graph = DependencyGraph()
        a = cell_key("Gene", 0, "GSequence")
        b = cell_key("Protein", 0, "PSequence")
        c = cell_key("Protein", 0, "PFunction")
        graph.add_edge(a, b, "tool P", executable=True)
        graph.add_edge(b, c, "lab experiment")
        assert graph.affected_closure([a]) == {b, c}
        assert graph.derivation_closure(c) == {a, b}
        assert graph.procedure_closure("tool P") == {b, c}

    def test_self_edge_rejected(self):
        graph = DependencyGraph()
        a = cell_key("T", 0, "x")
        with pytest.raises(DependencyError):
            graph.add_edge(a, a, "p")

    def test_duplicate_edge_is_idempotent(self):
        graph = DependencyGraph()
        a, b = cell_key("T", 0, "x"), cell_key("T", 1, "x")
        graph.add_edge(a, b, "p")
        graph.add_edge(a, b, "p")
        assert graph.num_edges == 1

    def test_cycle_detection(self):
        graph = DependencyGraph()
        a, b, c = (cell_key("T", i, "x") for i in range(3))
        graph.add_edge(a, b, "p")
        graph.add_edge(b, c, "p")
        assert graph.find_cycle() is None
        graph.add_edge(c, a, "p")
        assert graph.find_cycle() is not None

    def test_remove_cell(self):
        graph = DependencyGraph()
        a, b = cell_key("T", 0, "x"), cell_key("T", 1, "x")
        graph.add_edge(a, b, "p")
        assert graph.remove_cell(a) == 1
        assert graph.num_edges == 1  # counter tracks total added, edges list empty
        assert graph.dependents_of(a) == []


class TestOutdatedBitmap:
    def test_mark_clear_and_report(self):
        bitmap = OutdatedBitmap("Protein", ["PName", "PSequence", "PFunction"])
        bitmap.mark(3, "PFunction")
        bitmap.mark(5, "PFunction")
        assert bitmap.is_outdated(3, "pfunction")
        assert bitmap.outdated_count() == 2
        assert bitmap.outdated_columns_of(3) == ["PFunction"]
        bitmap.clear(3, "PFunction")
        assert not bitmap.is_outdated(3, "PFunction")

    def test_dense_rows_match_figure10_shape(self):
        bitmap = OutdatedBitmap("Protein", ["PName", "GID", "PSeq", "PFun"])
        bitmap.mark(1, "PFun")
        bitmap.mark(2, "PFun")
        rows = bitmap.dense_rows([0, 1, 2])
        assert rows == [[0, 0, 0, 0], [0, 0, 0, 1], [0, 0, 0, 1]]

    def test_rle_compression_shrinks_sparse_bitmaps(self):
        bitmap = OutdatedBitmap("T", ["a", "b", "c", "d"])
        bitmap.mark(500, "d")
        tuple_ids = list(range(1000))
        assert bitmap.rle_size_bits(tuple_ids) < bitmap.raw_size_bits(1000)
        assert bitmap.compression_ratio(tuple_ids) > 5

    def test_unknown_column_raises(self):
        bitmap = OutdatedBitmap("T", ["a"])
        with pytest.raises(KeyError):
            bitmap.mark(0, "zzz")

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 99), st.integers(0, 3)), max_size=50))
    def test_dense_rows_agree_with_marks(self, cells):
        columns = ["c0", "c1", "c2", "c3"]
        bitmap = OutdatedBitmap("T", columns)
        for tuple_id, column in cells:
            bitmap.mark(tuple_id, columns[column])
        rows = bitmap.dense_rows(range(100))
        for tuple_id in range(100):
            for column in range(4):
                assert rows[tuple_id][column] == (1 if (tuple_id, column) in cells else 0)


class TestTrackerScenarios:
    def test_figure9_gene_update_recomputes_and_marks(self, pipeline_db):
        db = pipeline_db
        summary = db.execute("UPDATE Gene SET GSequence = 'ATGCCCGGGTTT' WHERE GID = 'JW0002'")
        recomputed = summary.details["recomputed"]
        outdated = summary.details["marked_outdated"]
        assert any(cell[2] == "psequence" for cell in recomputed)
        assert any(cell[2] == "pfunction" for cell in outdated)
        # PSequence was actually recomputed by the prediction tool.
        protein_tid = recomputed[0][1]
        assert db.table("Protein").read_cell(protein_tid, "PSequence")

    def test_outdated_status_annotation_propagates_in_queries(self, pipeline_db):
        db = pipeline_db
        db.execute("UPDATE Gene SET GSequence = 'ATGAAA' WHERE GID = 'JW0003'")
        result = db.query("SELECT PName, PFunction FROM Protein")
        flagged = [index for index in range(len(result)) if result.annotations_of(index)]
        assert len(flagged) == 1
        body = result.annotation_bodies(flagged[0])[0]
        assert "OUTDATED" in body and "PFunction" in body

    def test_revalidation_clears_the_flag(self, pipeline_db):
        db = pipeline_db
        db.execute("UPDATE Gene SET GSequence = 'ATGAAA' WHERE GID = 'JW0004'")
        cells = db.tracker.outdated_cells("Protein")
        assert cells
        tuple_id, column = cells[0]
        db.tracker.revalidate("Protein", tuple_id, column)
        assert not db.tracker.is_outdated("Protein", tuple_id, column)
        assert db.tracker.outdated_report() == {}

    def test_blast_rule_recomputes_evalue(self, pipeline_db):
        db = pipeline_db
        before = db.query("SELECT Evalue FROM GeneMatching").values()
        summary = db.execute("UPDATE GeneMatching SET Gene1 = 'AAAAAAAAAA'")
        assert all(cell[2] == "evalue" for cell in summary.details["recomputed"])
        after = db.query("SELECT Evalue FROM GeneMatching").values()
        assert before != after
        # Evalue is recomputed, never marked outdated (it is executable).
        assert db.tracker.outdated_report().get("GeneMatching") is None

    def test_delete_marks_dependents_outdated(self, pipeline_db):
        db = pipeline_db
        summary = db.execute("DELETE FROM Gene WHERE GID = 'JW0005'")
        outdated = summary.details["marked_outdated"]
        assert any(cell[0] == "protein" for cell in outdated)

    def test_procedure_changed_refreshes_closure(self, pipeline_db):
        db = pipeline_db
        impact = db.tracker.procedure_changed("Lab experiment")
        # Lab experiment is non-executable: all protein functions become outdated.
        assert len(impact.marked_outdated) == len(db.table("Protein"))

    def test_cross_table_rule_requires_link_keys(self, db):
        db.execute("CREATE TABLE A (k TEXT, v TEXT)")
        db.execute("CREATE TABLE B (k TEXT, w TEXT)")
        rule = make_rule("bad", [("A", "v")], [("B", "w")])
        with pytest.raises(DependencyError):
            db.tracker.register_rule(rule)

    def test_instance_level_dependency(self, db):
        db.execute("CREATE TABLE T (a TEXT, b TEXT)")
        db.execute("INSERT INTO T VALUES ('x', 'y'), ('p', 'q')")
        db.tracker.register_instance_dependency(("T", 0, "a"), ("T", 1, "b"),
                                                "manual curation")
        summary = db.execute("UPDATE T SET a = 'z' WHERE a = 'x'")
        assert ("t", 1, "b") in summary.details["marked_outdated"]

    def test_instance_dependency_validates_cells(self, db):
        db.execute("CREATE TABLE T (a TEXT)")
        with pytest.raises(DependencyError):
            db.tracker.register_instance_dependency(("T", 99, "a"), ("T", 0, "a"), "p")
