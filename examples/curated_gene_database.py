"""A community-curated gene database: provenance + content-based approval.

Models the scenario of Sections 4 and 6: data integrated from several source
databases with system-maintained provenance, lab members performing updates
that the lab administrator reviews based on their *content*, and disapproved
changes rolled back by the automatically generated inverse statements.

Run with:  python examples/curated_gene_database.py
"""

from __future__ import annotations

import random
import warnings

# These examples demo the legacy A-SQL string facade on purpose
# (annotation/authorization statements take no parameters); see
# docs/API.md and examples/quickstart.py for the DB-API surface.
warnings.filterwarnings("ignore", category=DeprecationWarning)

from datetime import datetime

from repro import Database
from repro.workloads import dna_sequence


def load_from_sources(db: Database, rng: random.Random) -> None:
    """Integration tools load genes from two source databases with provenance."""
    db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
    db.provenance.register_tool("regulondb-loader")
    db.provenance.register_tool("genobase-loader")
    loads = [("RegulonDB", "regulondb-loader", 0, 8),
             ("GenoBase", "genobase-loader", 8, 14)]
    for source, tool, start, end in loads:
        tuple_ids = []
        for index in range(start, end):
            summary = db.execute(
                f"INSERT INTO Gene VALUES ('JW{index:04d}', 'g{index}', "
                f"'{dna_sequence(45, rng)}')"
            )
            tuple_ids.extend(summary.details["tuple_ids"])
        cells = db.annotations.cells_for("Gene", tuple_ids)
        db.provenance.record("Gene", cells, source=source, operation="copy",
                             agent=tool, program=tool,
                             time=datetime(2006, 1, 1 + start))
        print(f"loaded {end - start} genes from {source} (provenance recorded)")


def curate(db: Database, rng: random.Random) -> None:
    """Lab members update sequences; the administrator reviews the changes."""
    db.execute("GRANT SELECT, INSERT, UPDATE, DELETE ON Gene TO lab_members")
    db.access.create_group("lab_members", ["alice", "bob"])
    db.execute("START CONTENT APPROVAL ON Gene COLUMNS GSequence APPROVED BY lab_admin")
    db.access.add_superuser("lab_admin")

    alice, bob = db.session("alice"), db.session("bob")
    alice.execute("UPDATE Gene SET GSequence = 'ATG" + "C" * 20 + "' WHERE GID = 'JW0001'")
    bob.execute(f"UPDATE Gene SET GSequence = '{dna_sequence(45, rng)}' "
                "WHERE GID = 'JW0002'")
    bob.execute("UPDATE Gene SET GSequence = 'NNNNNN' WHERE GID = 'JW0003'")

    print("\npending operations awaiting review:")
    for op in db.approval.pending_operations():
        print(f"  #{op.op_id} {op.op_type.value} by {op.user} on {op.table} "
              f"tuple {op.tuple_id}: {op.changes}")

    # The administrator reviews *content*: the suspicious all-N sequence is
    # rejected, the others are accepted.
    for op in db.approval.pending_operations():
        new_sequence = op.changes.get("GSequence", "")
        if set(new_sequence) == {"N"}:
            db.approval.disapprove(op.op_id, "lab_admin")
            print(f"  -> disapproved #{op.op_id} (sequence is all Ns); "
                  f"inverse statement executed")
        else:
            db.approval.approve(op.op_id, "lab_admin")
            print(f"  -> approved #{op.op_id}")

    restored = db.query("SELECT GSequence FROM Gene WHERE GID = 'JW0003'").values()[0][0]
    print(f"\nJW0003 sequence after disapproval rollback: {restored[:20]}... "
          f"(original restored: {set(restored) != {'N'}})")


def audit(db: Database) -> None:
    """Queries over provenance: where did each value come from, and when?"""
    print("\nprovenance summary per source:")
    for source, count in sorted(db.provenance.sources_of_table("Gene").items()):
        print(f"  {source}: {count} provenance record(s)")

    tuple_id = db.table("Gene").tuple_ids[0]
    record = db.provenance.source_at("Gene", tuple_id, "GSequence")
    print(f"\ncurrent source of the first gene's sequence: {record.source} "
          f"(loaded {record.time.date()} by {record.program})")

    lineage = db.query(
        "SELECT GID FROM Gene ANNOTATION(provenance) "
        "AWHERE annotation.value LIKE '%GenoBase%'"
    )
    print(f"genes whose provenance mentions GenoBase: "
          f"{[v[0] for v in lineage.values()]}")
    print(f"\napproval log statistics: {db.approval.statistics()}")


def main() -> None:
    rng = random.Random(11)
    db = Database()
    load_from_sources(db, rng)
    curate(db, rng)
    audit(db)


if __name__ == "__main__":
    main()
