"""A gene -> protein analysis pipeline with local dependency tracking.

Reproduces Figures 9 and 10: protein sequences are derived from gene
sequences by a prediction tool the database can execute; protein functions
come from wet-lab experiments the database cannot re-run; BLAST E-values
depend on pairs of gene sequences.  When gene sequences change, bdbms
re-computes what it can and marks the rest outdated, reporting it through
query answers until a curator revalidates it.

Run with:  python examples/protein_pipeline.py
"""

from __future__ import annotations

import random
import warnings

# These examples demo the legacy A-SQL string facade on purpose
# (annotation/authorization statements take no parameters); see
# docs/API.md and examples/quickstart.py for the DB-API surface.
warnings.filterwarnings("ignore", category=DeprecationWarning)


from repro import Database
from repro.workloads import build_gene_protein_pipeline, dna_sequence


def show_outdated(db: Database) -> None:
    report = db.tracker.outdated_report()
    if not report:
        print("  (no outdated items)")
        return
    for table, cells in report.items():
        for tuple_id, column in cells:
            print(f"  {table}[{tuple_id}].{column} is OUTDATED")


def main() -> None:
    rng = random.Random(2026)
    db = Database()
    build_gene_protein_pipeline(db, num_genes=8, seed=17)

    print("registered procedural dependency rules:")
    for rule in db.tracker.rules:
        print(f"  {rule}")
    print("\nderived rules (chaining, like the paper's rule 4):")
    for rule in db.tracker.rules.derive_chained_rules():
        print(f"  {rule}")

    # -- a gene sequence is re-sequenced -------------------------------------
    print("\nre-sequencing gene JW0002 ...")
    summary = db.execute(
        f"UPDATE Gene SET GSequence = '{dna_sequence(60, rng)}' WHERE GID = 'JW0002'"
    )
    print(f"  re-computed automatically : {summary.details['recomputed']}")
    print(f"  marked outdated           : {summary.details['marked_outdated']}")
    print("outdated items after the update:")
    show_outdated(db)

    # -- outdated status rides along with query answers -----------------------
    result = db.query("SELECT PName, PFunction FROM Protein")
    print("\nquerying Protein — answers involving outdated items carry a warning:")
    for index, row in enumerate(result.rows):
        bodies = result.annotation_bodies(index)
        marker = " <-- " + bodies[0] if bodies else ""
        print(f"  {row.values[0]:<10} {row.values[1]}{marker}")

    # -- the wet lab re-verifies the protein function --------------------------
    outdated_cells = db.tracker.outdated_cells("Protein")
    tuple_id, column = outdated_cells[0]
    print(f"\nlab re-verifies Protein[{tuple_id}].{column}; revalidating ...")
    db.tracker.revalidate("Protein", tuple_id, column, new_value="Methyltransferase")
    show_outdated(db)

    # -- a new BLAST version is installed --------------------------------------
    print("\nBLAST-2.2.15 upgraded: re-evaluating its closure ...")
    impact = db.tracker.procedure_changed("BLAST-2.2.15")
    print(f"  re-computed {len(impact.recomputed)} E-value(s), "
          f"marked {len(impact.marked_outdated)} outdated")
    print(f"  columns depending on BLAST-2.2.15: "
          f"{sorted(db.tracker.rules.procedure_closure('BLAST-2.2.15'))}")

    # -- instance-level dependencies -------------------------------------------
    print("\nregistering an instance-level dependency (manual curation note):")
    db.tracker.register_instance_dependency(
        ("Protein", 0, "PFunction"), ("Protein", 1, "PFunction"),
        procedure="curator analogy", executable=False,
    )
    db.execute("UPDATE Protein SET PFunction = 'Cell division' WHERE PName = "
               f"'{db.table('Protein').read_cell(0, 'PName')}'")
    show_outdated(db)


if __name__ == "__main__":
    main()
