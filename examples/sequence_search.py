"""Sequence and structure search with the non-traditional access methods.

Reproduces Section 7 / Figure 12: protein secondary-structure sequences are
RLE-compressed and indexed with the SBC-tree (substring / prefix / range
search without decompression), gene identifiers are indexed with an SP-GiST
trie (prefix and regular-expression match), and protein structure points with
an SP-GiST kd-tree (box range and k-nearest-neighbour search).

Run with:  python examples/sequence_search.py
"""

from __future__ import annotations

import random

from repro.index.sbc import RleSequence, SbcTree, UncompressedSuffixIndex
from repro.index.spgist import KdTreeModule, SpGistIndex, TrieModule
from repro.workloads import secondary_structure_corpus, structure_points


def sbc_tree_demo() -> None:
    print("== SBC-tree over RLE-compressed secondary-structure sequences ==")
    corpus = secondary_structure_corpus(count=30, length=300, seed=9,
                                        mean_run_length=10)
    sbc, baseline = SbcTree(), UncompressedSuffixIndex()
    for seq_id, sequence in enumerate(corpus):
        sbc.insert(seq_id, sequence)
        baseline.insert(seq_id, sequence)

    sample = RleSequence.from_plain(corpus[0])
    print(f"example sequence ({sample.original_length} residues, "
          f"{sample.num_runs} runs): {str(sample)[:60]}...")
    print(f"storage: {baseline.storage_bytes()} bytes uncompressed vs "
          f"{sbc.storage_bytes()} bytes RLE "
          f"({baseline.storage_bytes() / sbc.storage_bytes():.1f}x smaller)")
    print(f"index entries: {baseline.index_entries()} suffixes uncompressed vs "
          f"{sbc.index_entries()} run-boundary suffixes")

    pattern = corpus[5][120:140]
    matches = sbc.search_substring(pattern)
    print(f"substring search for a 20-residue motif: sequences {sorted(matches)} "
          f"(agrees with uncompressed index: "
          f"{matches == baseline.search_substring(pattern)})")
    prefix = corpus[2][:12]
    print(f"prefix search: {sorted(sbc.search_prefix(prefix))}")
    low, high = sorted(corpus)[3], sorted(corpus)[12]
    print(f"range search between two sequences: "
          f"{len(sbc.range_search(low, high))} sequences\n")


def trie_demo() -> None:
    print("== SP-GiST trie over gene identifiers ==")
    trie = SpGistIndex(TrieModule(), leaf_capacity=8)
    for index in range(500):
        trie.insert(f"JW{index:04d}", index)
    print(f"exact match JW0042 -> row {trie.search_equal('JW0042')}")
    print(f"prefix JW004* -> {len(trie.search_prefix('JW004'))} identifiers")
    print(f"regex JW00[0-2][0-9] -> {len(trie.search_regex('JW00[0-2][0-9]'))} "
          f"identifiers")
    print(f"substring '123' -> {[k for k, _ in trie.search_substring('123')]}\n")


def kdtree_demo() -> None:
    print("== SP-GiST kd-tree over protein structure points ==")
    points = structure_points(count=1000, seed=4)
    kd = SpGistIndex(KdTreeModule(2), leaf_capacity=8)
    for index, point in enumerate(points):
        kd.insert(point, index)
    in_box = kd.search_box((30.0, 30.0), (60.0, 60.0))
    print(f"box query [30,60]x[30,60] -> {len(in_box)} structure points")
    neighbours = kd.knn((50.0, 50.0), 5)
    print("5 nearest structures to (50, 50):")
    for distance, point, index in neighbours:
        print(f"  structure {index:4d} at ({point[0]:6.2f}, {point[1]:6.2f}) "
              f"distance {distance:.2f}")
    reads = kd.stats.node_reads
    print(f"(answered with {reads} logical node reads)")


def main() -> None:
    sbc_tree_demo()
    trie_demo()
    kdtree_demo()


if __name__ == "__main__":
    main()
