"""Quickstart: annotations as first-class objects with A-SQL.

Reproduces the paper's running example (Figures 2-3): two gene tables from
different sources, annotated at several granularities, queried with the A-SQL
SELECT extensions so that annotations travel with the answer.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import warnings

import repro
from repro import Database
from repro.annotations.xml_utils import annotation_text

# This quickstart drives the A-SQL surface through the legacy Database
# facade on purpose (annotation statements take no parameters); the DB-API
# section below shows the preferred cursor surface.  Silence the shim
# warnings so the demo output stays readable.
warnings.filterwarnings("ignore", category=DeprecationWarning)


def main() -> None:
    db = Database()

    # -- schema and annotation tables -------------------------------------
    db.execute_script("""
        CREATE TABLE DB1_Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE);
        CREATE TABLE DB2_Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE);
        CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene;
        CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene;
    """)

    # -- data (the genes of Figure 2) ---------------------------------------
    db.execute_script("""
        INSERT INTO DB1_Gene VALUES
            ('JW0080', 'mraW', 'ATGATGGAAAA'),
            ('JW0082', 'ftsI', 'ATGAAAGCAGC'),
            ('JW0055', 'yabP', 'ATGAAAGTATC'),
            ('JW0078', 'fruR', 'GTGAAACTGGA');
        INSERT INTO DB2_Gene VALUES
            ('JW0080', 'mraW', 'ATGATGGAAAA'),
            ('JW0041', 'fixB', 'ATGAACACGTT'),
            ('JW0037', 'caiB', 'ATGGATCATCT'),
            ('JW0027', 'ispH', 'ATGCAGATCCT'),
            ('JW0055', 'yabP', 'ATGAAAGTATC');
    """)

    # -- annotations at multiple granularities (A1-A3, B3, B5) ----------------
    db.execute("""
        ADD ANNOTATION TO DB1_Gene.GAnnotation
        VALUE 'These genes are published in J. Bacteriology'
        ON (SELECT G.GID, G.GName FROM DB1_Gene G WHERE G.GID IN ('JW0080', 'JW0055'))
    """)
    db.execute("""
        ADD ANNOTATION TO DB1_Gene.GAnnotation
        VALUE 'These genes were obtained from RegulonDB'
        ON (SELECT G.* FROM DB1_Gene G)
    """)
    db.execute("""
        ADD ANNOTATION TO DB1_Gene.GAnnotation
        VALUE 'Involved in methyltransferase activity'
        ON (SELECT G.GSequence FROM DB1_Gene G WHERE G.GID = 'JW0080')
    """)
    db.execute("""
        ADD ANNOTATION TO DB2_Gene.GAnnotation
        VALUE '<Annotation>obtained from GenoBase</Annotation>'
        ON (SELECT G.GSequence FROM DB2_Gene G)
    """)
    db.execute("""
        ADD ANNOTATION TO DB2_Gene.GAnnotation
        VALUE 'This gene has an unknown function'
        ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0080')
    """)

    # -- the paper's motivating query: common genes WITH their annotations ----
    result = db.query("""
        SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation)
        INTERSECT
        SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)
    """)
    print("Genes common to DB1_Gene and DB2_Gene (one A-SQL statement):")
    for index, row in enumerate(result.rows):
        print(f"  {row.values[0]}  {row.values[1]}")
        for body in sorted(annotation_text(a.body) for a in row.all_annotations()):
            print(f"      - {body}")

    # -- annotation-based selection and filtering -----------------------------
    lineage = db.query("""
        SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation)
        AWHERE annotation.value LIKE '%GenoBase%'
    """)
    print(f"\nGenes whose lineage mentions GenoBase: "
          f"{[v[0] for v in lineage.values()]}")

    promoted = db.query("""
        SELECT GID PROMOTE (GSequence) FROM DB1_Gene ANNOTATION(GAnnotation)
        WHERE GID = 'JW0080'
    """)
    print("\nPROMOTE copies the sequence annotations onto the projected GID:")
    print(f"  {promoted.annotation_bodies(0, 'GID')}")

    # -- archiving stale annotations -------------------------------------------
    db.execute("""
        ARCHIVE ANNOTATION FROM DB2_Gene.GAnnotation
        ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0080')
    """)
    after = db.query(
        "SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'"
    )
    print(f"\nAnnotations on JW0080 after archiving: "
          f"{after.annotation_bodies(0) or '(none)'}")

    # -- EXPLAIN: pushed predicates and index access paths ---------------------
    # The planner pushes single-table WHERE conjuncts down to the scans,
    # attaches multi-table residual conjuncts to the lowest covering join,
    # and — once an index covers the join key — probes it per outer row with
    # an index-nested-loop join instead of scanning the whole inner table.
    db.execute("CREATE INDEX ix_db2_gid ON DB2_Gene (GID) USING btree")
    print("\nEXPLAIN with a pushed predicate and an index-nested-loop join:")
    explained = db.explain("""
        SELECT a.GID, b.GName FROM DB1_Gene a, DB2_Gene b
        WHERE a.GID = b.GID AND a.GName <> 'fruR'
    """)
    print("  " + explained.message.replace("\n", "\n  "))

    print("\nEXPLAIN of an equality lookup (point IndexScan):")
    explained = db.explain("SELECT GName FROM DB2_Gene WHERE GID = 'JW0055'")
    print("  " + explained.message.replace("\n", "\n  "))

    # -- range scans and index-order sort elimination --------------------------
    # Inequality / BETWEEN conjuncts pushed to an indexed column become a
    # B-tree IndexRangeScan (bounds in the plan, residual re-checked on
    # top), and an ORDER BY that matches the index key order needs no Sort
    # operator at all: the scan already delivers rows in key order.
    print("\nEXPLAIN of a range predicate (IndexRangeScan with bounds):")
    explained = db.explain(
        "SELECT GName FROM DB2_Gene WHERE GID > 'JW0030' AND GID <= 'JW0055'")
    print("  " + explained.message.replace("\n", "\n  "))

    print("\nEXPLAIN of ORDER BY on the index key (the sort is elided):")
    explained = db.explain(
        "SELECT GID, GName FROM DB2_Gene WHERE GID > 'JW0030' ORDER BY GID")
    print("  " + explained.message.replace("\n", "\n  "))

    # -- streaming results: rows are produced on demand ------------------------
    # The default pipeline is *batched*: scans decode whole pages at a time
    # and filters/projections run as fused, vectorized passes per batch
    # (EngineConfig.batch_size), while this stream surface still hands out
    # one row per pull.
    stream = db.stream("SELECT GID, GName FROM DB2_Gene")
    first = next(stream)
    print(f"\nFirst row pulled from the streaming pipeline: {first.values}")

    # -- batch mode, range scans, and disk spilling at scale -------------------
    demo_batches_and_spilling()

    # -- parallel spill partitions + the decoded-page cache --------------------
    demo_parallel_and_decoded_cache()

    # -- the DB-API surface: parameters, prepared plans ------------------------
    demo_parameterized_queries()

    # -- transactions: rollback, durability, crash recovery --------------------
    demo_transactions()

    # -- the network front end: server + DB-API client over TCP ----------------
    demo_server()

    print("\n=== Foreign tables: pluggable providers (ATTACH / DETACH) ===")
    demo_providers()


def demo_providers() -> None:
    """ATTACH a CSV file and another repro database as foreign tables and
    join them against a native table, with filter + projection pushdown
    visible in EXPLAIN."""
    import os
    import tempfile

    workdir = tempfile.mkdtemp(prefix="repro_providers_")
    csv_path = os.path.join(workdir, "orders.csv")
    with open(csv_path, "w") as handle:
        handle.write("oid,cust,amount\n")
        for i in range(20):
            handle.write(f"{i},C{i % 4},{i * 12.5}\n")

    remote_path = os.path.join(workdir, "crm.db")
    with Database(remote_path) as remote:
        remote.execute("CREATE TABLE customer (cust TEXT, region TEXT)")
        for i in range(4):
            remote.execute(
                f"INSERT INTO customer VALUES ('C{i}', "
                f"'{'east' if i % 2 else 'west'}')")
        remote.execute("CREATE ANNOTATION TABLE note ON customer")
        remote.execute(
            "ADD ANNOTATION TO customer.note VALUE 'verified account' "
            "ON (SELECT cust FROM customer WHERE region = 'east')")

    db = Database()
    cur = db.connect().cursor()
    cur.execute(f"ATTACH '{csv_path}' AS orders (TYPE csv)")
    cur.execute(f"ATTACH '{remote_path}' AS customer (TYPE repro)")
    print(f"Attached foreign tables: {db.foreign_table_names()}")

    # Filter + projection pushdown: the provider only decodes what the
    # statement needs, and EXPLAIN shows what was pushed.
    query = "SELECT oid, amount FROM orders WHERE cust = 'C2' AND amount > 50"
    print(db.explain(query).message)
    cur.execute(query)
    print(f"Pushed-down CSV scan: {[row.values for row in cur.fetchall()]}")

    # A native table joins a CSV and another database file in one query —
    # and the remote database's annotations travel with the rows.
    cur.execute("CREATE TABLE payment (oid INTEGER, method TEXT)")
    cur.executemany("INSERT INTO payment VALUES (?, ?)",
                    [(i, "card" if i % 3 else "wire") for i in range(20)])
    cur.execute(
        "SELECT p.method, o.oid, c.cust, c.region "
        "FROM payment p, orders o, customer ANNOTATION(note) c "
        "WHERE p.oid = o.oid AND o.cust = c.cust AND c.region = 'east' "
        "AND o.oid < 6")
    for row in cur.fetchall():
        bodies = [a.body for column in row.annotations for a in column]
        print(f"  {row.values} annotations={bodies}")

    cur.execute("DETACH orders")
    print(f"After DETACH: {db.foreign_table_names()}")
    db.close()


def demo_parallel_and_decoded_cache() -> None:
    """PR-7 knobs: spill partitions fan out to a worker pool, and repeated
    scans reuse decoded pages instead of re-deserializing them.

    See docs/TUNING.md (`parallel_workers`, `decoded_page_cache_pages`) and
    docs/ARCHITECTURE.md ("Parallel execution", "Decoded-page cache").
    """
    import time

    # Pool large enough to hold the whole table: decoded entries are dropped
    # whenever their raw page is evicted, so the cache needs the pages to
    # stay resident to pay off.
    db = Database(pool_size=512, memory_budget_rows=800)
    db.execute("CREATE TABLE hits (hid INTEGER PRIMARY KEY, tag INTEGER, "
               "w FLOAT)")
    db.execute("CREATE TABLE ref (rid INTEGER PRIMARY KEY, hid INTEGER)")
    hits, ref = db.table("hits"), db.table("ref")
    for i in range(8_000):
        hits.insert_row({"hid": i, "tag": i % 50, "w": i * 0.25})
        ref.insert_row({"rid": i, "hid": i})
    db.execute("ANALYZE")

    # The same over-budget join, serial vs. a 4-worker pool.  The output is
    # bit-for-bit identical — the pool only changes who processes each
    # spill partition, never the emission order.
    join = "SELECT hits.hid, ref.rid FROM hits, ref WHERE hits.hid = ref.hid"
    db.config.join_strategy = "hash"
    serial_rows = db.query(join).rows
    db.config.parallel_workers = 4
    print("\nEXPLAIN of the spilled join with a 4-worker pool:")
    print("  " + db.explain(join).message.replace("\n", "\n  "))
    parallel_rows = db.query(join).rows
    assert [r.values for r in parallel_rows] == [r.values for r in serial_rows]
    event = db.engine.last_spill.events("hash_join")[0]
    workers = sorted({t["worker"] for t in event["partition_timings"]})
    print(f"{event['partitions']} partitions processed by workers "
          f"{workers}; {len(parallel_rows)} rows, identical to the serial run")
    db.config.parallel_workers = 0
    db.config.join_strategy = "auto"

    # Decoded-page cache: the second identical scan skips deserialization.
    scan = "SELECT hid, w FROM hits WHERE w >= 100.0"
    db.config.decoded_page_cache_pages = 512
    db.query(scan)                                     # cold: populates
    started = time.perf_counter()
    db.query(scan)                                     # warm: all hits
    warm = time.perf_counter() - started
    cache = db.engine.last_cache
    print(f"warm rescan: {cache.hits} decoded-page hits, "
          f"{cache.misses} misses ({warm * 1e3:.1f} ms)")

    # Any write to a page invalidates its decoded entry — the cache can
    # never serve stale rows.
    db.execute("UPDATE hits SET w = -1.0 WHERE hid = 0")
    db.query(scan)
    print(f"after an UPDATE the touched page decodes afresh: "
          f"{db.engine.last_cache.misses} miss(es)")


def demo_parameterized_queries() -> None:
    """PR-5: ``repro.connect()`` is a DB-API 2.0 (PEP 249) module surface.

    Cursors bind qmark (``?``) parameters — values stay data, never SQL —
    and repeated executions of the same statement reuse a cached plan
    instead of re-tokenizing, re-parsing, and re-planning per call.  See
    docs/API.md for the full guide.
    """
    conn = repro.connect()          # in-memory; repro.connect("file.db") works too
    cur = conn.cursor()
    cur.execute("CREATE TABLE variants (vid INTEGER PRIMARY KEY, gene TEXT, "
                "impact FLOAT)")

    # executemany batches every bound row into ONE multi-row INSERT.
    cur.executemany("INSERT INTO variants VALUES (?, ?, ?)",
                    [(i, f"G{i % 7}", (i * 13) % 100 / 10.0)
                     for i in range(500)])
    print(f"\n[DB-API] bulk-loaded {cur.rowcount} variants via executemany")

    cur.execute("CREATE INDEX ix_variants_vid ON variants (vid) USING btree")

    # The untrusted value rides a placeholder: injection-shaped input is
    # matched literally instead of being spliced into the SQL text.
    hostile = "G1' OR '1'='1"
    cur.execute("SELECT COUNT(*) FROM variants WHERE gene = ?", (hostile,))
    print(f"[DB-API] rows matching {hostile!r} as a *value*: "
          f"{cur.fetchone()[0]}")

    # A reused point query: first execution plans (and caches), the rest
    # bind new values into the cached plan.
    engine = conn.database.engine
    for vid in (7, 42, 123):
        cur.execute("SELECT gene, impact FROM variants WHERE vid = ?", (vid,))
        gene, impact = cur.fetchone()
        print(f"[DB-API] vid={vid}: gene={gene} impact={impact} "
              f"(cached plan: {engine.last_plan_cached})")
    stats = engine.plan_cache.stats
    print(f"[DB-API] plan cache: {stats.hits} hits / {stats.misses} misses — "
          f"repeat executions skip parse + plan entirely")

    # DDL bumps the catalog schema version and evicts the cached plan: the
    # next execution of the *same* statement re-plans against the new
    # catalog state (a sequential scan now, not an IndexScan).
    cur.execute("DROP INDEX ix_variants_vid")
    cur.execute("SELECT gene, impact FROM variants WHERE vid = ?", (7,))
    cur.fetchall()
    print(f"[DB-API] after DROP INDEX: re-planned "
          f"(cached: {engine.last_plan_cached}, "
          f"invalidations: {stats.invalidations})")
    conn.close()


def demo_transactions() -> None:
    """PR-6: WAL-backed transactions — commit is durable, rollback is real.

    ``BEGIN``/``COMMIT``/``ROLLBACK`` work through SQL or the connection
    methods; a write-ahead log fsyncs before every commit acknowledgment,
    and reopening the file replays it.  See docs/API.md (transaction
    semantics) and docs/ARCHITECTURE.md (WAL & recovery).
    """
    import os
    import tempfile

    directory = tempfile.mkdtemp(prefix="quickstart_txn_")
    path = os.path.join(directory, "curated.db")

    conn = repro.connect(path)
    cur = conn.cursor()
    cur.execute("CREATE TABLE curation (cid INTEGER PRIMARY KEY, verdict TEXT)")
    cur.execute("INSERT INTO curation VALUES (1, 'approved')")

    # A rolled-back transaction leaves no trace — values or annotations.
    cur.execute("BEGIN")
    cur.execute("INSERT INTO curation VALUES (2, 'mistake')")
    cur.execute("UPDATE curation SET verdict = ? WHERE cid = ?", ("oops", 1))
    conn.rollback()
    cur.execute("SELECT cid, verdict FROM curation")
    print(f"\n[txn] after rollback: {dict(cur.fetchall())}")

    # A committed one is fsynced before commit() returns: reopening the
    # file — what a process restart after a crash does — finds it.
    cur.execute("BEGIN")
    cur.execute("INSERT INTO curation VALUES (2, 'rejected')")
    conn.commit()
    conn.close()
    with repro.connect(path) as conn2:
        cur2 = conn2.cursor()
        cur2.execute("SELECT cid, verdict FROM curation")
        print(f"[txn] after reopen:   {dict(cur2.fetchall())}")

    # The with-block behaves like sqlite3: commit on clean exit, rollback
    # when an exception is propagating.  (Statements outside BEGIN
    # autocommit immediately — only an open transaction is rolled back.)
    try:
        with repro.connect(path) as conn3:
            cur3 = conn3.cursor()
            cur3.execute("BEGIN")
            cur3.execute("INSERT INTO curation VALUES (3, 'doomed')")
            raise RuntimeError("pipeline failed downstream")
    except RuntimeError:
        pass
    with repro.connect(path) as conn4:
        cur4 = conn4.cursor()
        cur4.execute("SELECT COUNT(*) FROM curation")
        print(f"[txn] with-block rollback kept the table at "
              f"{cur4.fetchone()[0]} rows")

    import shutil
    shutil.rmtree(directory, ignore_errors=True)


def demo_batches_and_spilling() -> None:
    """PR-3/PR-4 knobs on a larger table: batch size, range scans, and the
    memory budget that makes pipeline breakers spill to disk.

    See docs/TUNING.md for the full EngineConfig reference and docs/
    ARCHITECTURE.md for where spilling hooks into the executor.
    """
    # batch_size tunes the vectorized pipeline's unit of work;
    # memory_budget_rows bounds what any pipeline breaker (hash-join build,
    # GROUP BY, DISTINCT, sort) may hold in memory before spilling.
    db = Database(batch_size=256, memory_budget_rows=500)
    db.execute("CREATE TABLE reads (rid INTEGER PRIMARY KEY, sample INTEGER, "
               "score FLOAT)")
    db.execute("CREATE TABLE qc (rid INTEGER PRIMARY KEY, passed INTEGER)")
    reads, qc = db.table("reads"), db.table("qc")
    for i in range(4_000):
        reads.insert_row({"rid": i, "sample": i % 40, "score": (i * 37) % 1000 * 0.1})
        qc.insert_row({"rid": i, "passed": i % 3})
    db.execute("CREATE INDEX ix_reads_score ON reads (score) USING btree")
    db.execute("ANALYZE")

    # A selective range predicate on the indexed column becomes a B-tree
    # IndexRangeScan; the matching ORDER BY costs no sort at all.
    print("\nEXPLAIN of a range window + ORDER BY on a 4000-row table:")
    explained = db.explain(
        "SELECT rid, score FROM reads WHERE score > 1 AND score < 3 ORDER BY score")
    print("  " + explained.message.replace("\n", "\n  "))

    # The hash join's build side (4000 qc rows) exceeds the 500-row budget:
    # the planner predicts the Grace-hash spill and EXPLAIN shows it.
    join = ("SELECT reads.rid, qc.passed FROM reads, qc "
            "WHERE reads.rid = qc.rid AND qc.passed > 0")
    db.config.join_strategy = "hash"
    print("\nEXPLAIN of a join whose build side exceeds memory_budget_rows:")
    explained = db.explain(join)
    print("  " + explained.message.replace("\n", "\n  "))

    # Executing it really spills: partitions go to temp files and come back,
    # and engine.last_spill reports what happened.
    result = db.query(join)
    stats = db.engine.last_spill
    print(f"\nJoin over budget returned {len(result)} rows; spill activity:")
    for event in stats.operators:
        print(f"  {event}")
    print(f"  total spill I/O: {stats.spill_files} temp file(s), "
          f"{stats.spilled_rows} row writes, "
          f"{stats.spilled_bytes / 1e3:.0f} KB")

    # GROUP BY over the budget partitions on the group key the same way.
    summary = db.query("SELECT sample, COUNT(*), AVG(score) FROM reads "
                       "GROUP BY sample")
    events = [e for e in db.engine.last_spill.operators
              if e["operator"] == "group_by"]
    print(f"\nGROUP BY over budget: {len(summary)} groups via "
          f"{events[0]['partitions']} spill partitions")


def demo_server() -> None:
    """The same DB-API surface, served over TCP (docs/SERVER.md).

    ``start_server`` spins up the asyncio front end on an ephemeral port in
    a background thread; ``repro.client.connect`` returns a PEP 249
    connection whose cursors, parameters, transactions, and A-SQL
    annotation queries behave exactly like the in-process ones.
    """
    import repro.client
    from repro.server import start_server

    server = start_server()  # in-memory database, ephemeral 127.0.0.1 port
    try:
        conn = repro.client.connect(port=server.port, user="admin")
        cur = conn.cursor()
        cur.execute("CREATE TABLE samples (id INTEGER PRIMARY KEY, "
                    "name TEXT)")
        cur.executemany("INSERT INTO samples VALUES (?, ?)",
                        [(1, "liver"), (2, "kidney"), (3, "cortex")])
        cur.execute("SELECT name FROM samples WHERE id >= ? ORDER BY id",
                    (2,))
        print(f"\nRows over the wire: {[row[0] for row in cur.fetchall()]}")

        # Annotations survive the wire as real objects on each row.
        cur.execute("CREATE ANNOTATION TABLE note ON samples")
        cur.execute("ADD ANNOTATION TO samples.note VALUE 'checked' "
                    "ON (SELECT s.name FROM samples s WHERE s.id = 2)")
        cur.execute("SELECT name FROM samples ANNOTATION(note) "
                    "WHERE id = 2")
        row = cur.fetchone()
        bodies = [a.body for column in row.annotations for a in column]
        print(f"Annotated over the wire: {tuple(row)} -> {bodies}")

        # Transactions are per-session; rollback works like in-process.
        cur.execute("BEGIN")
        cur.execute("DELETE FROM samples WHERE id = 1")
        conn.rollback()
        cur.execute("SELECT COUNT(*) FROM samples")
        print(f"Rows after rollback over the wire: {cur.fetchone()[0]}")
        conn.close()
    finally:
        server.shutdown()


if __name__ == "__main__":
    main()
