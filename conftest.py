"""Repo-level pytest configuration.

Registers the ``--runslow`` flag used by the ``slow`` marker (wired up in
``tests/conftest.py`` and ``benchmarks/conftest.py``): tests marked
``@pytest.mark.slow`` — large joins, big benchmark datasets — are skipped by
default so the tier-1 command stays fast, and run with ``pytest --runslow``.
"""


import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="run tests marked 'slow' (large joins, big benchmark datasets)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
