"""Docs sanity checker: every internal markdown link must resolve.

Usage (CI): ``python tools/check_docs.py``

Scans the maintained documentation — ``docs/*.md`` plus ROADMAP.md and
CHANGES.md (PAPER.md / PAPERS.md / SNIPPETS.md are generated retrieval
material and excluded) — for ``[text](target)`` links and verifies that

* relative file targets exist on disk (anchors stripped), and
* intra-repo anchors (``file.md#section`` or ``#section``) match a heading
  of the target file, using GitHub's slug rules (lowercase, spaces to
  dashes, punctuation dropped).

External links (``http(s)://``, ``mailto:``) are skipped — this guards the
*internal* consistency of the docs tree, not the internet.  Exits non-zero
listing every broken link.
"""

from __future__ import annotations

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — excluding images' leading "!" is unnecessary: image
#: targets should resolve too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markdown, lowercase, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def doc_files() -> list:
    files = sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))
    for name in ("ROADMAP.md", "CHANGES.md", "README.md"):
        path = os.path.join(REPO_ROOT, name)
        if os.path.exists(path):
            files.append(path)
    return files


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as handle:
        return {github_slug(match) for match in _HEADING.findall(handle.read())}


def check_file(path: str) -> list:
    problems = []
    base = os.path.dirname(path)
    relative = os.path.relpath(path, REPO_ROOT)
    with open(path, encoding="utf-8") as handle:
        content = handle.read()
    for target in _LINK.findall(content):
        if target.startswith(_EXTERNAL):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                problems.append(f"{relative}: broken link target {target!r}")
                continue
        else:
            resolved = path
        if anchor and resolved.endswith(".md"):
            if anchor not in anchors_of(resolved):
                problems.append(
                    f"{relative}: anchor {target!r} matches no heading of "
                    f"{os.path.relpath(resolved, REPO_ROOT)}")
    return problems


def main() -> int:
    files = doc_files()
    if not os.path.isdir(os.path.join(REPO_ROOT, "docs")):
        print("docs/ directory is missing")
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} markdown file(s): "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
