"""Exception hierarchy for the bdbms reproduction.

Every error raised by the library derives from :class:`BdbmsError` so that
callers can catch a single exception type at the API boundary.  Sub-classes
mirror the major subsystems described in the paper: the SQL/A-SQL front end,
the catalog, the storage engine, the annotation manager, the dependency
manager, and the authorization manager.
"""

from __future__ import annotations


class BdbmsError(Exception):
    """Base class for all errors raised by the bdbms reproduction."""


class StorageError(BdbmsError):
    """Raised for low-level storage failures (pages, heap files, buffer pool)."""


class PageFullError(StorageError):
    """Raised when a record does not fit into the target slotted page."""


class CatalogError(BdbmsError):
    """Raised for schema and catalog violations (unknown tables, duplicates)."""


class TypeMismatchError(BdbmsError):
    """Raised when a value cannot be coerced to the declared column type."""


class SqlSyntaxError(BdbmsError):
    """Raised by the tokenizer or parser on malformed SQL / A-SQL text."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class PlanningError(BdbmsError):
    """Raised when a statement cannot be translated into an executable plan."""


class ExecutionError(BdbmsError):
    """Raised when a plan fails during execution (bad expressions, overflow)."""


class ConstraintViolationError(ExecutionError):
    """Raised on primary-key duplicates, NOT NULL violations, and the like."""


class AnnotationError(BdbmsError):
    """Raised by the annotation manager (unknown annotation tables, bad regions)."""


class ProvenanceError(AnnotationError):
    """Raised by the provenance manager (schema violations, write access)."""


class DependencyError(BdbmsError):
    """Raised by the dependency manager (conflicting or cyclic rules)."""


class AuthorizationError(BdbmsError):
    """Raised when an operation is rejected by GRANT/REVOKE or approval rules."""


class ApprovalError(AuthorizationError):
    """Raised for invalid approve/disapprove requests on the update log."""


class IndexError_(BdbmsError):
    """Raised by access methods (B+-tree, SP-GiST, SBC-tree) on invalid use.

    The trailing underscore avoids shadowing the Python built-in
    :class:`IndexError`, which has unrelated semantics.
    """


class TransactionError(BdbmsError):
    """Raised for invalid transaction state transitions or undo failures."""


class TransactionTimeoutError(TransactionError):
    """Raised when a lock acquisition exceeds its scope's timeout.

    Maps to :class:`OperationalError` at the DB-API boundary; the network
    server additionally marks it retryable, since the statement was rejected
    before doing any work and can safely be re-submitted.
    """


# ---------------------------------------------------------------------------
# PEP 249 (DB-API 2.0) exception hierarchy
# ---------------------------------------------------------------------------
# The DB-API surface (``repro.connect`` / Connection / Cursor) raises these;
# :func:`map_error` translates the internal hierarchy above onto them.  Every
# class still derives from :class:`BdbmsError`, so legacy callers catching
# the library base class keep working unchanged.

class Warning(Exception):  # noqa: A001 - the name is mandated by PEP 249
    """Raised for important DB-API warnings (PEP 249)."""


class Error(BdbmsError):
    """Base class of the PEP 249 error hierarchy."""


class InterfaceError(Error):
    """Error in the database *interface* rather than the database itself
    (e.g. operating on a closed connection or cursor)."""


class DatabaseError(Error):
    """Base class for errors related to the database."""


class DataError(DatabaseError):
    """Problems with the processed data: bad coercions, division by zero,
    values out of range."""


class OperationalError(DatabaseError):
    """Errors related to the database's operation: storage failures,
    authorization rejections, runtime execution faults."""


class IntegrityError(DatabaseError):
    """Relational integrity violations: duplicate primary keys, NOT NULL."""


class InternalError(DatabaseError):
    """The database hit an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """Programming errors: SQL syntax errors, unknown tables or columns,
    wrong parameter counts, multi-statement strings passed to execute()."""


class NotSupportedError(DatabaseError):
    """A method or feature the database does not support (e.g. rollback)."""


def map_error(exc: BaseException) -> "Error":
    """Translate an internal error into its PEP 249 equivalent.

    Already-translated errors pass through unchanged; unknown exception
    types map to :class:`OperationalError`.  The original exception should
    be chained by the caller (``raise map_error(exc) from exc``).
    """
    if isinstance(exc, Error):
        return exc
    message = str(exc)
    if isinstance(exc, ConstraintViolationError):
        return IntegrityError(message)
    if isinstance(exc, TypeMismatchError):
        return DataError(message)
    if isinstance(exc, (SqlSyntaxError, PlanningError, CatalogError,
                        AnnotationError, DependencyError)):
        return ProgrammingError(message)
    return OperationalError(message)
