"""Exception hierarchy for the bdbms reproduction.

Every error raised by the library derives from :class:`BdbmsError` so that
callers can catch a single exception type at the API boundary.  Sub-classes
mirror the major subsystems described in the paper: the SQL/A-SQL front end,
the catalog, the storage engine, the annotation manager, the dependency
manager, and the authorization manager.
"""

from __future__ import annotations


class BdbmsError(Exception):
    """Base class for all errors raised by the bdbms reproduction."""


class StorageError(BdbmsError):
    """Raised for low-level storage failures (pages, heap files, buffer pool)."""


class PageFullError(StorageError):
    """Raised when a record does not fit into the target slotted page."""


class CatalogError(BdbmsError):
    """Raised for schema and catalog violations (unknown tables, duplicates)."""


class TypeMismatchError(BdbmsError):
    """Raised when a value cannot be coerced to the declared column type."""


class SqlSyntaxError(BdbmsError):
    """Raised by the tokenizer or parser on malformed SQL / A-SQL text."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class PlanningError(BdbmsError):
    """Raised when a statement cannot be translated into an executable plan."""


class ExecutionError(BdbmsError):
    """Raised when a plan fails during execution (bad expressions, overflow)."""


class ConstraintViolationError(ExecutionError):
    """Raised on primary-key duplicates, NOT NULL violations, and the like."""


class AnnotationError(BdbmsError):
    """Raised by the annotation manager (unknown annotation tables, bad regions)."""


class ProvenanceError(AnnotationError):
    """Raised by the provenance manager (schema violations, write access)."""


class DependencyError(BdbmsError):
    """Raised by the dependency manager (conflicting or cyclic rules)."""


class AuthorizationError(BdbmsError):
    """Raised when an operation is rejected by GRANT/REVOKE or approval rules."""


class ApprovalError(AuthorizationError):
    """Raised for invalid approve/disapprove requests on the update log."""


class IndexError_(BdbmsError):
    """Raised by access methods (B+-tree, SP-GiST, SBC-tree) on invalid use.

    The trailing underscore avoids shadowing the Python built-in
    :class:`IndexError`, which has unrelated semantics.
    """


class TransactionError(BdbmsError):
    """Raised for invalid transaction state transitions or undo failures."""
