"""Transactions: atomicity, rollback, and WAL-backed durability.

:class:`TransactionManager` plays three roles at once:

* **journal** — the storage and registry layers report every logical
  mutation to it (``note_row_insert``, ``note_create_table``, ...).  Inside a
  transaction the notes accumulate as *redo* operations (shipped to the WAL
  as one frame at commit) and *undo* operations (before-images applied in
  reverse on rollback).  Outside any transaction a note becomes an immediate
  single-operation commit frame, so direct Python-API writes stay durable.
* **transaction manager** — ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` and the
  per-statement autocommit scope the engine wraps around every mutating
  statement.  Transactions are single-writer: the write side of a global
  :class:`ReaderWriterLock` is held from BEGIN to COMMIT/ROLLBACK (and for
  the duration of each autocommitted statement), serializing writers.
  Readers that do not opt in stay lock-free and see uncommitted state
  (READ UNCOMMITTED — the in-process lazy streaming path).  Readers that
  *do* opt in via :meth:`TransactionManager.read_access` (the network
  server's query path) share the read side concurrently with each other
  while excluding writers, so a statement executed plus materialized under
  ``read_access()`` observes only committed state and is never torn by a
  concurrent commit.

Lock ownership is keyed by *scope*, not by thread.  The default scope is the
calling thread (``("thread", ident)``), which preserves the historical
behavior for in-process use.  The network server runs each client session's
statements on pooled worker threads, so it wraps every request in
:func:`session_scope`, making the session — not whichever worker picked the
request up — the lock owner; a BEGIN handled by worker A can be committed by
worker B.  Scopes may also carry a lock timeout:  acquisition that exceeds
it raises :class:`TransactionTimeoutError`, which keeps a bounded worker
pool from deadlocking when every worker is parked on a lock whose releaser
is stuck behind them in the queue.
* **recovery applier** — ``replay`` re-executes the redo operations of every
  committed transaction through the normal storage paths, rebuilding tables,
  indexes, annotation registries, and grants from an empty page store.

Atomicity model (redo-only, no-steal):

* nothing of an uncommitted transaction ever reaches the WAL *or* the data
  file (the buffer pool pins dirty pages while a transaction is open), so
  crash recovery never needs to undo anything;
* rollback applies in-memory before-images: row-level inverse operations
  plus registry inverses (drop a created table/index/annotation table), and
  restores the dependency tracker's outdated-bitmap snapshot taken at BEGIN;
* a statement that fails *inside* a transaction is undone back to its own
  start mark, so statements stay atomic within a surviving transaction.

Undo-ability is what gates which statements an *explicit* transaction may
contain: ``DROP TABLE`` / ``DROP INDEX`` / ``DROP ANNOTATION TABLE`` and the
authorization statements (GRANT/REVOKE, content approval) have no
before-image to restore and are rejected with :class:`TransactionError`
inside BEGIN...COMMIT (they work fine autocommitted).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import TransactionError, TransactionTimeoutError
from repro.sql import ast


def _row_dict(table: Any, row: Tuple[Any, ...]) -> dict:
    return dict(zip(table.schema.column_names, row))


# ---------------------------------------------------------------------------
# Lock scopes
# ---------------------------------------------------------------------------
# A scope is an opaque hashable identity that owns lock state and open
# transactions.  By default it is the calling thread; a server session
# installs its own identity for the duration of each request so ownership
# survives hopping between pooled worker threads.

_scope_state = threading.local()


def current_scope() -> Tuple[str, Any]:
    """The lock/transaction owner identity of the calling thread."""
    scope = getattr(_scope_state, "scope", None)
    if scope is not None:
        return scope
    return ("thread", threading.get_ident())


def current_lock_timeout() -> Optional[float]:
    """Lock-acquire timeout (seconds) installed by :func:`session_scope`."""
    return getattr(_scope_state, "timeout", None)


@contextmanager
def session_scope(scope_id: Any,
                  lock_timeout: Optional[float] = None) -> Iterator[None]:
    """Attribute lock/transaction ownership to ``scope_id`` for this block.

    The network server wraps each request in this so the *session* owns
    locks and transactions, regardless of which pooled worker thread runs
    the request.  ``lock_timeout`` bounds every lock acquisition made inside
    the block; on expiry :class:`TransactionTimeoutError` is raised.
    """
    previous = (getattr(_scope_state, "scope", None),
                getattr(_scope_state, "timeout", None))
    _scope_state.scope = ("session", scope_id)
    _scope_state.timeout = lock_timeout
    try:
        yield
    finally:
        _scope_state.scope, _scope_state.timeout = previous


class ReaderWriterLock:
    """Scope-keyed reader-writer lock with writer preference.

    * write is exclusive and re-entrant per scope (BEGIN then per-statement
      scopes nest);
    * read is shared among scopes and re-entrant; a scope that already holds
      write acquires read as a no-op pass-through (a reader inside its own
      transaction sees its own writes);
    * waiting writers block *new* readers (writer preference) so a stream of
      overlapping readers cannot starve commits — but re-entrant readers
      always pass, which keeps a scope from deadlocking on itself;
    * upgrading read → write is refused outright (:class:`TransactionError`)
      instead of deadlocking two upgraders against each other;
    * an acquisition that exceeds ``timeout`` raises
      :class:`TransactionTimeoutError` and leaves the lock untouched.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._writer: Optional[Tuple[str, Any]] = None
        self._write_depth = 0
        self._readers: Dict[Tuple[str, Any], int] = {}
        self._write_waiters = 0

    def acquire_read(self, scope: Tuple[str, Any],
                     timeout: Optional[float] = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._writer == scope or scope in self._readers:
                    self._readers[scope] = self._readers.get(scope, 0) + 1
                    return
                if self._writer is None and self._write_waiters == 0:
                    self._readers[scope] = 1
                    return
                if not self._wait(deadline):
                    raise TransactionTimeoutError(
                        f"timed out after {timeout:.3f}s waiting for shared "
                        f"read access (a writer holds or awaits the lock)")

    def release_read(self, scope: Tuple[str, Any]) -> None:
        with self._cond:
            depth = self._readers.get(scope, 0)
            if depth <= 0:
                raise TransactionError("read lock not held by this scope")
            if depth == 1:
                del self._readers[scope]
                self._cond.notify_all()
            else:
                self._readers[scope] = depth - 1

    def acquire_write(self, scope: Tuple[str, Any],
                      timeout: Optional[float] = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._writer == scope:
                self._write_depth += 1
                return
            if scope in self._readers:
                raise TransactionError(
                    "cannot upgrade a read lock to a write lock; release "
                    "the read access first")
            self._write_waiters += 1
            try:
                while self._writer is not None or self._readers:
                    if not self._wait(deadline):
                        raise TransactionTimeoutError(
                            f"timed out after {timeout:.3f}s waiting for "
                            f"exclusive write access")
                self._writer = scope
                self._write_depth = 1
            finally:
                self._write_waiters -= 1

    def release_write(self, scope: Tuple[str, Any]) -> None:
        with self._cond:
            if self._writer != scope:
                raise TransactionError("write lock not held by this scope")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def _wait(self, deadline: Optional[float]) -> bool:
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        return self._cond.wait(remaining)


class Transaction:
    """One open transaction: buffered redo ops, undo ops, and begin-state."""

    __slots__ = ("redo", "undo", "explicit", "scope", "tracker_state")

    def __init__(self, explicit: bool, scope: Tuple[str, Any],
                 tracker_state: Any):
        self.redo: List[Tuple[Any, ...]] = []
        self.undo: List[Tuple[Any, ...]] = []
        self.explicit = explicit
        self.scope = scope
        self.tracker_state = tracker_state


#: Statement types that cannot appear inside an explicit transaction: their
#: effects have no before-image, so ROLLBACK could not restore them.
_NOT_IN_TRANSACTION = (
    ast.DropTable, ast.DropIndex, ast.DropAnnotationTable,
    ast.Grant, ast.Revoke, ast.StartContentApproval, ast.StopContentApproval,
    ast.Detach,
)


class TransactionManager:
    """Journal + BEGIN/COMMIT/ROLLBACK + crash-recovery replay (see module doc)."""

    def __init__(self, catalog: Any, annotations: Any, indexes: Any,
                 tracker: Any, access: Any, pool: Any, wal: Any = None,
                 foreign: Any = None):
        self.catalog = catalog
        self.annotations = annotations
        self.indexes = indexes
        self.tracker = tracker
        self.access = access
        self.pool = pool
        #: The :class:`~repro.providers.manager.ForeignTableManager`, when
        #: foreign tables are wired in — attach/detach redo records replay
        #: through it.  May be set after construction (engine wiring).
        self.foreign = foreign
        #: The write-ahead log (:class:`~repro.storage.wal.FileWAL`), or
        #: ``None`` for in-memory databases — rollback still works without
        #: one, only durability is off.
        self.wal = wal
        #: Writers hold the exclusive side from BEGIN to COMMIT/ROLLBACK;
        #: opted-in readers (the server's snapshot-on-scan path) share the
        #: read side via :meth:`read_access`.  Ownership is scope-keyed so
        #: pooled worker threads can act on behalf of one client session.
        self._lock = ReaderWriterLock()
        self._txn: Optional[Transaction] = None
        #: Per-thread flag: while applying undo or replaying the WAL the
        #: storage hooks must not journal the journal's own repair work
        #: (thread-local so a recovering writer cannot mute other threads).
        self._suppress_state = threading.local()

    @property
    def _suppress(self) -> bool:
        return getattr(self._suppress_state, "value", False)

    @_suppress.setter
    def _suppress(self, value: bool) -> None:
        self._suppress_state.value = value

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def _current(self) -> Optional[Transaction]:
        txn = self._txn
        if txn is not None and txn.scope == current_scope():
            return txn
        return None

    def in_transaction(self) -> bool:
        """Whether the calling scope has an open explicit transaction."""
        txn = self._current()
        return txn is not None and txn.explicit

    @contextmanager
    def read_access(self) -> Iterator[None]:
        """Shared read access for the calling scope.

        Hold it across *execute + materialize* of a read-only statement and
        the result can never interleave with a writer's commit: concurrent
        readers proceed in parallel, writers wait (and vice versa).  No-op
        re-entrant when the scope already holds the write lock, so a reader
        inside its own transaction sees its own uncommitted writes.
        """
        scope = current_scope()
        self._lock.acquire_read(scope, timeout=current_lock_timeout())
        try:
            yield
        finally:
            self._lock.release_read(scope)

    def begin(self, explicit: bool = True) -> None:
        """Open a transaction, blocking while another writer holds one."""
        if self._current() is not None:
            raise TransactionError(
                "already in a transaction; COMMIT or ROLLBACK it first")
        scope = current_scope()
        self._lock.acquire_write(scope, timeout=current_lock_timeout())
        tracker_state = (self.tracker.snapshot_state()
                         if self.tracker is not None else None)
        self._txn = Transaction(explicit, scope, tracker_state)
        self.pool.begin_no_steal()

    def commit(self) -> bool:
        """Commit the calling scope's transaction; ``False`` if none is open.

        The commit frame is appended to the WAL *before* the write lock is
        released, but the fsync wait happens *after* — that is what lets
        group commit batch concurrent committers into one fsync while the
        engine keeps executing the next writer's statements.
        """
        txn = self._current()
        if txn is None:
            return False
        lsn = None
        if self.wal is not None and txn.redo:
            # May raise InjectedCrash at a WAL crash point; the transaction
            # then stays open and the database instance is abandoned, which
            # is exactly the state a process crash would leave.
            lsn = self.wal.append(txn.redo)
        self._txn = None
        self.pool.end_no_steal()
        self._lock.release_write(txn.scope)
        if lsn is not None:
            self.wal.sync(lsn)
        return True

    def rollback(self) -> bool:
        """Undo and close the calling scope's transaction; ``False`` if none."""
        txn = self._current()
        if txn is None:
            return False
        try:
            self._undo_to(txn, 0)
            if txn.tracker_state is not None:
                self.tracker.restore_state(txn.tracker_state)
        finally:
            self._txn = None
            self.pool.end_no_steal()
            self._lock.release_write(txn.scope)
        return True

    @contextmanager
    def statement(self, statement: Any):
        """Scope one mutating statement: autocommit or undo-to-mark.

        Outside a transaction the statement runs in an implicit transaction
        of its own (commit on success — one WAL frame —, rollback on error).
        Inside one, the statement's undo position is marked so a failure
        undoes only the failed statement, leaving the transaction usable.
        """
        txn = self._current()
        if txn is not None:
            if txn.explicit:
                self._check_allowed(statement)
            redo_mark, undo_mark = len(txn.redo), len(txn.undo)
            tracker_mark = (self.tracker.snapshot_state()
                            if self.tracker is not None else None)
            try:
                yield
            except BaseException:
                self._undo_to(txn, undo_mark)
                del txn.redo[redo_mark:]
                if tracker_mark is not None:
                    self.tracker.restore_state(tracker_mark)
                raise
            return
        self.begin(explicit=False)
        try:
            yield
        except BaseException:
            self.rollback()
            raise
        self.commit()

    def _check_allowed(self, statement: Any) -> None:
        if isinstance(statement, _NOT_IN_TRANSACTION):
            raise TransactionError(
                f"{type(statement).__name__} cannot run inside an explicit "
                f"transaction (its effects cannot be rolled back); COMMIT "
                f"first and run it autocommitted")

    # ------------------------------------------------------------------
    # Journal hooks (called by Table, SystemCatalog, IndexManager,
    # AnnotationManager, and the engine's GRANT/REVOKE handlers)
    # ------------------------------------------------------------------
    def _record(self, redo_op: Tuple[Any, ...],
                undo_op: Optional[Tuple[Any, ...]]) -> None:
        if self._suppress:
            return
        txn = self._current()
        if txn is not None:
            txn.redo.append(redo_op)
            if undo_op is not None:
                txn.undo.append(undo_op)
        elif self.wal is not None:
            # A write outside any statement scope (direct Python API):
            # durable immediately as a single-operation transaction.
            self.wal.commit([redo_op])

    def note_row_insert(self, table: Any, tuple_id: int,
                        row: Tuple[Any, ...]) -> None:
        row = tuple(row)
        self._record(("row_insert", table.name, tuple_id, row),
                     ("undo_insert", table.name, tuple_id, row))

    def note_row_update(self, table: Any, tuple_id: int,
                        old_row: Tuple[Any, ...],
                        new_row: Tuple[Any, ...]) -> None:
        old_row, new_row = tuple(old_row), tuple(new_row)
        self._record(("row_update", table.name, tuple_id, new_row),
                     ("undo_update", table.name, tuple_id, old_row, new_row))

    def note_row_delete(self, table: Any, tuple_id: int,
                        old_row: Tuple[Any, ...]) -> None:
        old_row = tuple(old_row)
        self._record(("row_delete", table.name, tuple_id),
                     ("undo_delete", table.name, tuple_id, old_row))

    def note_create_table(self, schema: Any) -> None:
        self._record(("create_table", schema),
                     ("undo_create_table", schema.name))

    def note_drop_table(self, name: str) -> None:
        self._record(("drop_table", name), None)

    def note_create_index(self, name: str, table: str,
                          columns: Tuple[str, ...], method: str) -> None:
        self._record(("create_index", name, table, tuple(columns), method),
                     ("undo_create_index", name))

    def note_drop_index(self, name: str) -> None:
        self._record(("drop_index", name), None)

    def note_ann_create(self, user_table: str, name: str, scheme: str,
                        category: str) -> None:
        self._record(("ann_create", user_table, name, scheme, category),
                     ("undo_ann_create", user_table, name))

    def note_ann_drop(self, user_table: str, name: str) -> None:
        self._record(("ann_drop", user_table, name), None)

    def note_attach(self, entry: Any) -> None:
        """Journal an ATTACH: redo re-registers the descriptor (schema
        included, so recovery never touches the backing source)."""
        self._record(("attach", entry.name, entry.uri, entry.provider_type,
                      dict(entry.options), entry.schema),
                     ("undo_attach", entry.name))

    def note_detach(self, name: str) -> None:
        self._record(("detach", name), None)

    def note_grant(self, privileges: List[str], table: str,
                   grantee: str) -> None:
        self._record(("grant", list(privileges), table, grantee), None)

    def note_revoke(self, privileges: List[str], table: str,
                    grantee: str) -> None:
        self._record(("revoke", list(privileges), table, grantee), None)

    # ------------------------------------------------------------------
    # Undo (rollback / failed-statement repair)
    # ------------------------------------------------------------------
    def _undo_to(self, txn: Transaction, mark: int) -> None:
        self._suppress = True
        try:
            while len(txn.undo) > mark:
                self._apply_undo(txn.undo.pop())
        finally:
            self._suppress = False

    def _apply_undo(self, op: Tuple[Any, ...]) -> None:
        kind = op[0]
        if kind == "undo_insert":
            _, name, tuple_id, row = op
            table = self.catalog.table(name)
            table.apply_delete(tuple_id)
            self.indexes.on_delete(name, tuple_id, _row_dict(table, row))
        elif kind == "undo_update":
            _, name, tuple_id, old_row, new_row = op
            table = self.catalog.table(name)
            table.apply_update(tuple_id, old_row)
            self.indexes.on_update(name, tuple_id, _row_dict(table, new_row),
                                   _row_dict(table, old_row))
        elif kind == "undo_delete":
            _, name, tuple_id, old_row = op
            table = self.catalog.table(name)
            table.apply_insert(tuple_id, old_row)
            self.indexes.on_insert(name, tuple_id, _row_dict(table, old_row))
        elif kind == "undo_create_table":
            _, name = op
            # An annotation registry undone just before may already have
            # dropped its backing tables; tolerate the gap.
            if self.catalog.has_table(name):
                self.indexes.drop_indexes_for(name)
                self.catalog.drop_table(name)
        elif kind == "undo_create_index":
            _, name = op
            try:
                self.indexes.drop_index(name)
            except Exception:
                pass
        elif kind == "undo_ann_create":
            _, user_table, name = op
            # Only the registry entry: the backing tables have their own
            # undo_create_table records later in the (reversed) undo list.
            self.annotations.forget(user_table, name)
        elif kind == "undo_attach":
            _, name = op
            if self.foreign is not None:
                self.foreign.forget(name)
        else:  # pragma: no cover - would indicate a journal bug
            raise TransactionError(f"unknown undo operation {kind!r}")

    # ------------------------------------------------------------------
    # Recovery replay
    # ------------------------------------------------------------------
    def replay(self, batches: Iterable[List[Tuple[Any, ...]]]) -> int:
        """Re-apply committed redo batches (WAL frames) in log order.

        Returns the number of operations applied.  The caller is expected to
        have reset the page store first: replay rebuilds every table from
        row zero through the normal insert/update/delete paths, so indexes
        and primary keys come out consistent by construction.
        """
        applied = 0
        self._suppress = True
        try:
            for ops in batches:
                for op in ops:
                    self._apply_redo(op)
                    applied += 1
        finally:
            self._suppress = False
        if applied:
            self.annotations.finish_recovery()
        return applied

    def _apply_redo(self, op: Tuple[Any, ...]) -> None:
        kind = op[0]
        if kind == "row_insert":
            _, name, tuple_id, row = op
            table = self.catalog.table(name)
            table.apply_insert(tuple_id, row)
            self.indexes.on_insert(name, tuple_id, _row_dict(table, row))
        elif kind == "row_update":
            _, name, tuple_id, new_row = op
            table = self.catalog.table(name)
            old_row = table.read_row(tuple_id)
            table.apply_update(tuple_id, new_row)
            self.indexes.on_update(name, tuple_id, _row_dict(table, old_row),
                                   _row_dict(table, new_row))
        elif kind == "row_delete":
            _, name, tuple_id = op
            table = self.catalog.table(name)
            old_row = table.read_row(tuple_id)
            table.apply_delete(tuple_id)
            self.indexes.on_delete(name, tuple_id, _row_dict(table, old_row))
        elif kind == "create_table":
            self.catalog.create_table(op[1])
        elif kind == "drop_table":
            _, name = op
            if self.catalog.has_table(name):
                self.indexes.drop_indexes_for(name)
                self.catalog.drop_table(name)
        elif kind == "create_index":
            _, name, table, columns, method = op
            self.indexes.create_index(name, table, columns, method)
        elif kind == "drop_index":
            _, name = op
            try:
                self.indexes.drop_index(name)
            except Exception:
                pass
        elif kind == "ann_create":
            _, user_table, name, scheme, category = op
            self.annotations.register_recovered(user_table, name, scheme,
                                                category)
        elif kind == "ann_drop":
            _, user_table, name = op
            self.annotations.forget(user_table, name)
        elif kind == "grant":
            _, privileges, table, grantee = op
            self.access.grant(privileges, table, grantee)
        elif kind == "revoke":
            _, privileges, table, grantee = op
            self.access.revoke(privileges, table, grantee)
        elif kind == "attach":
            _, name, uri, provider_type, options, schema = op
            if self.foreign is not None:
                self.foreign.register_recovered(name, uri, provider_type,
                                                options, schema)
        elif kind == "detach":
            _, name = op
            if self.foreign is not None:
                self.foreign.forget(name)
        else:
            raise TransactionError(f"unknown redo operation {kind!r} in WAL")
