"""Core package: database facade, sessions, configuration, and errors."""

from repro.core.errors import (
    AnnotationError,
    ApprovalError,
    AuthorizationError,
    BdbmsError,
    CatalogError,
    ConstraintViolationError,
    DependencyError,
    ExecutionError,
    PlanningError,
    ProvenanceError,
    SqlSyntaxError,
    StorageError,
    TransactionError,
    TypeMismatchError,
)

__all__ = [
    "BdbmsError",
    "StorageError",
    "CatalogError",
    "TypeMismatchError",
    "SqlSyntaxError",
    "PlanningError",
    "ExecutionError",
    "ConstraintViolationError",
    "AnnotationError",
    "ProvenanceError",
    "DependencyError",
    "AuthorizationError",
    "ApprovalError",
    "TransactionError",
]
