"""The bdbms facade: one object wiring every subsystem together.

:class:`Database` owns the storage engine, the catalog, and the four bdbms
managers (annotations, provenance, dependencies, authorization).  The
preferred SQL surface is the PEP 249 one — ``repro.connect(path)`` or
:meth:`Database.connect` hand out DB-API connections whose cursors bind
``?`` parameters and reuse cached plans.  The historical string entry points
(`execute`, `query`, `stream`) remain as thin delegating shims that warn
:class:`DeprecationWarning`; :class:`Session` is the legacy user-bound
facade, rebuilt on top of a :class:`~repro.dbapi.connection.Connection`.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import replace
from typing import Any, List, Optional, Union

from repro.annotations.manager import AnnotationManager
from repro.authorization.approval import ApprovalManager
from repro.authorization.grants import AccessControl
from repro.catalog.catalog import SystemCatalog
from repro.core.errors import ExecutionError, ProgrammingError
from repro.core.transactions import TransactionManager
from repro.dbapi.connection import Connection, Cursor
from repro.dependencies.tracker import DependencyTracker
from repro.executor.engine import Engine, EngineConfig, ExecutionSummary
from repro.executor.row import ResultSet, StreamingResultSet
from repro.index.manager import IndexManager
from repro.provenance.manager import ProvenanceManager
from repro.providers.manager import ForeignTableManager
from repro.sql.parser import parse_prepared, parse_script
from repro.storage.buffer_pool import DEFAULT_POOL_SIZE
from repro.storage.disk import IoStatistics, open_disk_manager
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.wal import FileWAL, wal_path_for

ExecutionResult = Union[ResultSet, ExecutionSummary]


def _warn_legacy(method: str) -> None:
    warnings.warn(
        f"{method} is a legacy shim; prefer the DB-API surface — "
        f"repro.connect() / Database.connect() cursors with '?' parameter "
        f"binding and cached plans (see docs/API.md)",
        DeprecationWarning, stacklevel=3)


class Database:
    """A bdbms database instance.

    Parameters
    ----------
    path:
        Path of the database file, or ``None`` / ``":memory:"`` for an
        in-memory database (the default, used by tests and benchmarks).
    page_size, pool_size:
        Storage engine knobs: page size in bytes and buffer-pool capacity in
        pages.
    config:
        Engine behaviour switches (see :class:`EngineConfig`): execution
        mode (batched ``"streaming"`` / ``"row"`` / ``"materialized"``),
        join strategy, index usage, batch size.
    batch_size:
        Convenience override for ``config.batch_size`` (rows per batch of
        the vectorized executor); validated eagerly.
    memory_budget_rows:
        Convenience override for ``config.memory_budget_rows``: the maximum
        rows a pipeline breaker (hash-join build, GROUP BY, DISTINCT, sort)
        buffers in memory before spilling to temp files.  ``None`` (default)
        disables spilling.
    """

    def __init__(self, path: Optional[str] = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 pool_size: int = DEFAULT_POOL_SIZE,
                 config: Optional[EngineConfig] = None,
                 batch_size: Optional[int] = None,
                 memory_budget_rows: Optional[int] = None):
        wal_path = None
        if path is not None and path != ":memory:":
            wal_path = wal_path_for(path)
        # A crash mid page write can leave the data file torn (size not a
        # page multiple).  With a WAL present that is recoverable — the log
        # is the authority and the data file gets rebuilt — so only then is
        # a torn file tolerated.
        self.disk = open_disk_manager(
            path, page_size,
            tolerate_torn=bool(wal_path and os.path.exists(wal_path)))
        self.catalog = SystemCatalog(self.disk, pool_size)
        self.access = AccessControl()
        self.annotations = AnnotationManager(self.catalog)
        self.tracker = DependencyTracker(self.catalog)
        self.provenance = ProvenanceManager(self.annotations, self.access)
        self.approval = ApprovalManager(self.catalog, self.access, self.tracker)
        self.indexes = IndexManager(self.catalog)
        self.foreign = ForeignTableManager(self.catalog)
        self.config = config or EngineConfig()
        if batch_size is not None:
            # Copy before overriding: the caller's config object may be
            # shared with other Database instances.
            self.config = replace(self.config, batch_size=batch_size)
        if memory_budget_rows is not None:
            self.config = replace(self.config,
                                  memory_budget_rows=memory_budget_rows)
        synchronous = self.config.synchronous == "full"
        self.disk.synchronous = synchronous
        #: The write-ahead log, or ``None`` for in-memory databases.
        self.wal: Optional[FileWAL] = None
        if wal_path is not None:
            self.wal = FileWAL(wal_path, synchronous=synchronous,
                               group_commit=self.config.group_commit)
        self.transactions = TransactionManager(
            catalog=self.catalog,
            annotations=self.annotations,
            indexes=self.indexes,
            tracker=self.tracker,
            access=self.access,
            pool=self.catalog.pool,
            wal=self.wal,
            foreign=self.foreign,
        )
        self.catalog.journal = self.transactions
        self.foreign.journal = self.transactions
        self.engine = Engine(
            catalog=self.catalog,
            annotations=self.annotations,
            provenance=self.provenance,
            tracker=self.tracker,
            approval=self.approval,
            access=self.access,
            indexes=self.indexes,
            config=self.config,
            transactions=self.transactions,
            foreign=self.foreign,
        )
        if self.wal is not None:
            self._recover()

    def _recover(self) -> None:
        """Rebuild state from the WAL on open (crash recovery).

        The catalog and the bdbms registries live in memory, so the WAL is
        the complete logical history of the database: every committed
        transaction since creation is one frame.  Recovery therefore resets
        the page store and replays the whole log through the normal storage
        paths; incomplete frames at the tail (a crash mid append) fail their
        length or checksum and are truncated away by ``read_frames``, which
        is exactly transaction atomicity.  The rebuilt pages are flushed so
        the data file again materializes the log's final state.
        """
        frames = self.wal.read_frames()
        if not frames:
            return
        self.disk.reset()
        self.transactions.replay(frames)
        self.flush()
        self.disk.sync()

    # ------------------------------------------------------------------
    # DB-API surface
    # ------------------------------------------------------------------
    def connect(self, user: str = "admin") -> Connection:
        """A PEP 249 connection over this database, bound to ``user``.

        Cursors of the connection execute SQL with qmark (``?``) parameter
        binding, reuse prepared statements and cached plans, and stream
        SELECT results lazily.  The connection does not own the database:
        closing it leaves the database open (module-level
        :func:`repro.connect` opens and owns one instead).
        """
        return Connection(self, user=user, owns_database=False)

    # ------------------------------------------------------------------
    # Legacy SQL entry points (thin shims over the engine)
    # ------------------------------------------------------------------
    def _parse_single(self, sql: str):
        """Parse one statement, rejecting unbound ``?`` placeholders.

        Placeholders only make sense with bound values, which the legacy
        string API cannot supply — failing here (with a pointer at the
        cursor API) beats a confusing error deep inside the executor.
        ``EXPLAIN`` is exempt: planning a parameterized statement without
        values is exactly what a generic-plan EXPLAIN is for.
        """
        from repro.sql import ast
        statement, parameter_count = parse_prepared(sql)
        if parameter_count and not isinstance(statement, ast.Explain):
            raise ProgrammingError(
                f"statement has {parameter_count} parameter placeholder(s) "
                f"but this API takes no parameters; use "
                f"Database.connect()/repro.connect() and "
                f"cursor.execute(sql, params)")
        return statement

    def execute(self, sql: str, user: str = "admin") -> ExecutionResult:
        """Parse and execute a single SQL / A-SQL statement.

        .. deprecated:: 0.2
           Legacy shim — prefer :meth:`connect` and cursors (parameter
           binding, prepared-plan reuse, PEP 249 errors).
        """
        _warn_legacy("Database.execute()")
        return self.engine.execute(self._parse_single(sql), user=user)

    def execute_script(self, sql: str, user: str = "admin") -> List[ExecutionResult]:
        """Execute a semicolon-separated script, returning one result each."""
        return [self.engine.execute(statement, user=user)
                for statement in parse_script(sql)]

    def query(self, sql: str, user: str = "admin") -> ResultSet:
        """Execute a statement that must be a query and return its result set.

        .. deprecated:: 0.2
           Legacy shim — prefer :meth:`connect` and cursors.
        """
        _warn_legacy("Database.query()")
        result = self.engine.execute(self._parse_single(sql), user=user)
        if not isinstance(result, ResultSet):
            raise ExecutionError(f"statement is not a query: {sql!r}")
        return result

    def stream(self, sql: str, user: str = "admin") -> StreamingResultSet:
        """Execute a query and return a lazy, row-at-a-time result.

        Rows are produced on demand from the streaming operator pipeline, so
        a consumer that stops early (for instance after a handful of rows of
        a million-row table) never materializes the rest.  Consume or discard
        the stream before issuing DML — it reads live table state.

        .. deprecated:: 0.2
           Legacy shim — cursors stream SELECT results lazily already.
        """
        from repro.sql import ast
        _warn_legacy("Database.stream()")
        statement = self._parse_single(sql)
        if not isinstance(statement, (ast.Select, ast.SetOperation)):
            raise ExecutionError(f"statement is not a query: {sql!r}")
        return self.engine.stream_query(statement, user=user)

    def analyze(self, table: Optional[str] = None,
                user: str = "admin") -> ExecutionSummary:
        """Recompute planner statistics for one table (or all of them)."""
        from repro.sql import ast
        result = self.engine.execute(ast.Analyze(table), user=user)
        assert isinstance(result, ExecutionSummary)
        return result

    def explain(self, sql: str, user: str = "admin") -> ExecutionSummary:
        """Plan a query without executing it; the summary holds the plan dump.

        Parameter placeholders are allowed: the generic plan is rendered
        with ``?N`` markers where bound values would go.
        """
        from repro.sql import ast
        statement, _ = parse_prepared(sql)
        if not isinstance(statement, ast.Explain):
            statement = ast.Explain(statement)
        result = self.engine.execute(statement, user=user)
        assert isinstance(result, ExecutionSummary)
        return result

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def statistics(self):
        """The planner statistics manager (see :mod:`repro.catalog.statistics`)."""
        return self.catalog.statistics

    def table(self, name: str):
        return self.catalog.table(name)

    def table_names(self) -> List[str]:
        return self.catalog.table_names()

    def foreign_table_names(self) -> List[str]:
        """Names of the attached foreign tables (ATTACH ... AS name)."""
        return self.foreign.names()

    def session(self, user: str) -> "Session":
        return Session(self, user)

    def io_statistics(self) -> IoStatistics:
        return self.disk.stats

    def reset_io_statistics(self) -> None:
        self.disk.stats.reset()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        """True while the calling thread has an explicit transaction open."""
        return self.transactions.in_transaction()

    def begin(self) -> None:
        """Open an explicit transaction (as the SQL ``BEGIN`` statement)."""
        self.transactions.begin()

    def commit(self) -> None:
        """Commit the open transaction; durable once this returns.

        Without an open transaction this is an autocommit durability point:
        every statement already committed itself through the WAL, so only
        the buffered pages are pushed to the data file — unless another
        thread holds a transaction open (its uncommitted pages must not
        reach disk).
        """
        if not self.transactions.commit():
            if not self.catalog.pool.no_steal_active:
                self.flush()
                self.disk.sync()

    def rollback(self) -> bool:
        """Undo the open transaction; returns False when none is open."""
        return self.transactions.rollback()

    def flush(self) -> None:
        """Write every dirty buffered page back to the disk manager."""
        self.catalog.pool.flush_all()

    def close(self) -> None:
        self.transactions.rollback()
        self.foreign.close()
        self.flush()
        if self.wal is not None:
            self.wal.close()
        self.disk.close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Database(tables={self.table_names()})"


class Session:
    """Legacy user-bound facade, rebuilt on top of :class:`Connection`.

    ``session.connection`` is a full PEP 249 connection for the same user
    (``session.cursor()`` is a shortcut onto it); the string-based
    ``execute``/``query`` methods keep their historical return types and are
    deprecated alongside the :class:`Database` shims they delegate to.
    """

    def __init__(self, database: Database, user: str):
        self.database = database
        self.user = user
        #: The PEP 249 connection this session rides on (shared engine,
        #: shared statement/plan caches, not owning the database).
        self.connection = Connection(database, user=user, owns_database=False)

    def cursor(self) -> Cursor:
        """A DB-API cursor bound to this session's user."""
        return self.connection.cursor()

    def execute(self, sql: str) -> ExecutionResult:
        return self.database.execute(sql, user=self.user)

    def execute_script(self, sql: str) -> List[ExecutionResult]:
        return self.database.execute_script(sql, user=self.user)

    def query(self, sql: str) -> ResultSet:
        return self.database.query(sql, user=self.user)

    def __repr__(self) -> str:
        return f"Session(user={self.user!r})"
