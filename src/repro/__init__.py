"""repro: a reproduction of bdbms (CIDR 2007), a DBMS for biological data.

``repro`` is a DB-API 2.0 (PEP 249) module: :func:`connect` opens a database
and returns a :class:`Connection` whose cursors bind qmark (``?``)
parameters, reuse prepared statements and cached query plans, and stream
SELECT results lazily:

>>> import repro
>>> conn = repro.connect()          # or repro.connect("genes.db")
>>> cur = conn.cursor()
>>> cur.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GSequence SEQUENCE)")
>>> cur.execute("INSERT INTO Gene VALUES (?, ?)", ("JW0080", "ATGATGGAAAA"))
>>> cur.execute("SELECT GID FROM Gene WHERE GID = ?", ("JW0080",))
>>> cur.fetchone().values
('JW0080',)

The lower-level :class:`Database` facade remains available (A-SQL annotation
statements, engine knobs, direct table access); its string entry points
(``db.execute(sql)``) are deprecated shims over the same engine.

Sub-packages mirror the paper's architecture: ``annotations``, ``provenance``,
``dependencies``, ``authorization`` (the four bdbms pillars), ``index`` (the
SP-GiST framework and the SBC-tree), and the relational substrate
(``storage``, ``catalog``, ``sql``, ``planner``, ``executor``, ``dbapi``).
"""

from repro.core.database import Database, Session
from repro.core.errors import (
    BdbmsError,
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
)
from repro.dbapi import (
    Connection,
    Cursor,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)
from repro.executor.engine import EngineConfig, ExecutionSummary
from repro.executor.prepared import PreparedStatement
from repro.executor.row import ResultSet, Row, StreamingResultSet

__version__ = "0.2.0"

__all__ = [
    # DB-API 2.0 module interface (PEP 249)
    "apilevel",
    "threadsafety",
    "paramstyle",
    "connect",
    "Connection",
    "Cursor",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    # Engine facade
    "Database",
    "Session",
    "BdbmsError",
    "EngineConfig",
    "ExecutionSummary",
    "PreparedStatement",
    "ResultSet",
    "Row",
    "StreamingResultSet",
    "__version__",
]
