"""repro: a reproduction of bdbms (CIDR 2007), a DBMS for biological data.

The public API centres on :class:`repro.Database`:

>>> from repro import Database
>>> db = Database()
>>> db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GSequence SEQUENCE)")
>>> db.execute("CREATE ANNOTATION TABLE GAnnotation ON Gene")
>>> db.execute("INSERT INTO Gene VALUES ('JW0080', 'ATGATGGAAAA')")
>>> db.execute(
...     "ADD ANNOTATION TO Gene.GAnnotation "
...     "VALUE '<Annotation>obtained from GenoBase</Annotation>' "
...     "ON (SELECT G.GSequence FROM Gene G)"
... )
>>> result = db.query("SELECT GID FROM Gene ANNOTATION(GAnnotation)")

Sub-packages mirror the paper's architecture: ``annotations``, ``provenance``,
``dependencies``, ``authorization`` (the four bdbms pillars), ``index`` (the
SP-GiST framework and the SBC-tree), and the relational substrate
(``storage``, ``catalog``, ``sql``, ``planner``, ``executor``).
"""

from repro.core.database import Database, Session
from repro.core.errors import BdbmsError
from repro.executor.engine import EngineConfig, ExecutionSummary
from repro.executor.row import ResultSet, StreamingResultSet

__version__ = "0.1.0"

__all__ = [
    "Database",
    "Session",
    "BdbmsError",
    "EngineConfig",
    "ExecutionSummary",
    "ResultSet",
    "StreamingResultSet",
    "__version__",
]
