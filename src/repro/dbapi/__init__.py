"""DB-API 2.0 (PEP 249) interface to the bdbms reproduction.

The module-level attributes required by PEP 249 live here and are re-exported
from the top-level ``repro`` package, which is the canonical DB-API module::

    import repro
    conn = repro.connect("genes.db", user="curator")
    cur = conn.cursor()
    cur.execute("SELECT GName FROM Gene WHERE GID = ?", ("JW0080",))
    for row in cur:
        ...

Parameter style is ``qmark`` (``?`` placeholders bound positionally).
"""

from repro.core.errors import (
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
)
from repro.dbapi.connection import Connection, Cursor, connect

#: PEP 249: DB-API level supported.
apilevel = "2.0"
#: PEP 249: threads may share the module, but not connections.  Connections
#: from separate ``repro.connect()`` calls are fully independent (each owns
#: its database).  Connections layered over one shared ``Database`` via
#: ``Database.connect()`` share that database's single-threaded engine: the
#: prepared planning/binding window is serialized by an engine lock, but the
#: operator pipeline and storage layer are not thread-safe — treat a shared
#: Database like a shared connection and confine it to one thread.
threadsafety = 1
#: PEP 249: qmark parameter style ("... WHERE name = ?").
paramstyle = "qmark"

__all__ = [
    "apilevel",
    "threadsafety",
    "paramstyle",
    "connect",
    "Connection",
    "Cursor",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
]
