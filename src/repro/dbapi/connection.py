"""PEP 249 (DB-API 2.0) connections and cursors over the bdbms engine.

``connect()`` opens a database and returns a :class:`Connection`; cursors
execute SQL with qmark (``?``) parameter binding through the engine's
prepared-statement machinery:

* the SQL text is parsed once per connection (statement LRU);
* query plans are cached engine-wide per (SQL text, config fingerprint) and
  invalidated by the catalog schema version (DDL / ANALYZE), so re-executing
  a prepared query skips tokenize + parse + planning;
* SELECT results ride the lazy :class:`~repro.executor.row.StreamingResultSet`
  — ``fetchone``/iteration never materializes more rows than consumed.

Errors surface as the PEP 249 hierarchy (``repro.ProgrammingError``,
``repro.IntegrityError``, ...), every class of which still derives from
:class:`~repro.core.errors.BdbmsError`.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import (
    BdbmsError,
    Error,
    InterfaceError,
    NotSupportedError,
    ProgrammingError,
    map_error,
)
from repro.executor.prepared import PreparedStatement
from repro.executor.row import ColumnInfo, OutputSchema, Row, StreamingResultSet
from repro.sql import ast
from repro.sql.parameters import bind_statement, validate_parameters

#: Cursors with an open SELECT stream expose one 7-tuple per output column:
#: (name, type_code, display_size, internal_size, precision, scale, null_ok).
#: Only ``name`` is known in general; the rest are ``None`` as PEP 249 allows.
Description = Tuple[Tuple[Any, ...], ...]

#: Capacity of the per-connection SQL-text -> PreparedStatement LRU.
STATEMENT_CACHE_SIZE = 128


@contextmanager
def translate_errors():
    """Re-raise internal errors as their PEP 249 equivalents (chained)."""
    try:
        yield
    except Error:
        raise
    except BdbmsError as exc:
        raise map_error(exc) from exc


def connect(path: Optional[str] = None, *, user: str = "admin",
            **database_kwargs: Any) -> "Connection":
    """Open a database file (or an in-memory database) as a DB-API connection.

    ``path`` and the keyword arguments mirror
    :class:`repro.core.database.Database` (``page_size``, ``pool_size``,
    ``config``, ``batch_size``, ``memory_budget_rows``); ``user`` is the
    principal all statements of this connection run as.  Closing the
    connection closes the underlying database.

    >>> import repro
    >>> with repro.connect() as conn:
    ...     cur = conn.cursor()
    ...     cur.execute("CREATE TABLE g (id INTEGER PRIMARY KEY, name TEXT)")
    ...     cur.execute("INSERT INTO g VALUES (?, ?)", (1, "mraW"))
    ...     cur.execute("SELECT name FROM g WHERE id = ?", (1,))
    ...     cur.fetchone().values
    ('mraW',)
    """
    from repro.core.database import Database
    with translate_errors():
        database = Database(path, **database_kwargs)
    return Connection(database, user=user, owns_database=True)


class Connection:
    """A PEP 249 connection bound to one user identity.

    Wraps a :class:`~repro.core.database.Database` — either one it opened
    itself (module-level :func:`connect`) or a shared one
    (:meth:`Database.connect`); only an owning connection closes the
    database on :meth:`close`.
    """

    #: PEP 249 optional extension: the exception classes as attributes, so
    #: code holding only a connection can catch ``conn.ProgrammingError``.
    from repro.core import errors as _errors
    Warning = _errors.Warning
    Error = _errors.Error
    InterfaceError = _errors.InterfaceError
    DatabaseError = _errors.DatabaseError
    DataError = _errors.DataError
    OperationalError = _errors.OperationalError
    IntegrityError = _errors.IntegrityError
    InternalError = _errors.InternalError
    ProgrammingError = _errors.ProgrammingError
    NotSupportedError = _errors.NotSupportedError
    del _errors

    def __init__(self, database: Any, *, user: str = "admin",
                 owns_database: bool = False):
        self._database = database
        self._engine = database.engine
        self.user = user
        self._owns_database = owns_database
        self._closed = False
        self._cursors: "weakref.WeakSet[Cursor]" = weakref.WeakSet()
        self._statements: "OrderedDict[str, PreparedStatement]" = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def database(self):
        """The underlying :class:`Database` (engine knobs, table access)."""
        return self._database

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def _prepare(self, sql: str) -> PreparedStatement:
        """SQL text -> PreparedStatement, through the per-connection LRU."""
        if not isinstance(sql, str):
            raise InterfaceError(
                f"SQL must be a string, got {type(sql).__name__}")
        prepared = self._statements.get(sql)
        if prepared is not None:
            self._statements.move_to_end(sql)
            return prepared
        with translate_errors():
            prepared = self._engine.prepare(sql)
        self._statements[sql] = prepared
        while len(self._statements) > STATEMENT_CACHE_SIZE:
            self._statements.popitem(last=False)
        return prepared

    # ------------------------------------------------------------------
    # PEP 249 interface
    # ------------------------------------------------------------------
    def cursor(self) -> "Cursor":
        self._check_open()
        cursor = Cursor(self)
        self._cursors.add(cursor)
        return cursor

    def commit(self) -> None:
        """Commit the open transaction; durable once this returns.

        An explicit transaction (``BEGIN`` on any cursor) is written to the
        write-ahead log and fsynced before this returns (under
        ``synchronous="full"``).  Without an open transaction every
        statement already committed itself, so this is just a durability
        point for the buffered pages — never an error, per PEP 249.
        """
        self._check_open()
        with translate_errors():
            self._database.commit()

    def rollback(self) -> None:
        """Undo the open transaction (rows, schema, and annotations are
        restored from before-images).  A no-op without an open transaction,
        matching sqlite3."""
        self._check_open()
        with translate_errors():
            self._database.rollback()

    def close(self) -> None:
        """Roll back any open transaction, close every cursor, drop cached
        statements, and (when owning) close the underlying database.
        Idempotent."""
        if self._closed:
            return
        self._closed = True
        for cursor in list(self._cursors):
            cursor.close()
        self._statements.clear()
        if self._owns_database:
            self._database.close()
        else:
            # A shared database stays open, but this connection's
            # uncommitted work must not leak into it.
            self._database.rollback()

    # -- conveniences (sqlite3-style shortcuts) -------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        """Shortcut: a fresh cursor with ``execute`` already called."""
        return self.cursor().execute(sql, params)

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        return self.cursor().executemany(sql, seq_of_params)

    def executescript(self, script: str) -> "Cursor":
        return self.cursor().executescript(script)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Connection":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """sqlite3-style transaction semantics, plus close.

        A clean exit commits the open transaction; an exception rolls it
        back (and propagates).  The connection is then closed either way.
        """
        if not self._closed:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Connection(user={self.user!r}, {state})"


class Cursor:
    """A PEP 249 cursor: execute statements, fetch results, iterate lazily.

    Rows are :class:`~repro.executor.row.Row` objects — sequences (indexable,
    iterable, ``len()``-able) whose ``.values`` is the plain value tuple and
    whose ``.annotations`` carries the propagated A-SQL annotations, so the
    paper's annotation semantics survive the standard API.
    """

    def __init__(self, connection: Connection):
        self.connection = connection
        #: Default ``fetchmany`` size (PEP 249; mutable per cursor).
        self.arraysize = 1
        self._closed = False
        self._result_schema = None
        self._rowcount = -1
        self._lastrowid: Optional[int] = None
        self._stream = None

    # ------------------------------------------------------------------
    @property
    def description(self) -> Optional[Description]:
        """Column descriptions of the last SELECT, ``None`` for DML.

        Built on demand from the result schema: a tight execute/fetch loop
        that never reads it does not pay for the 7-tuples.
        """
        if self._result_schema is None:
            return None
        return tuple((column.name, None, None, None, None, None, None)
                     for column in self._result_schema.columns)

    @property
    def rowcount(self) -> int:
        """Rows affected by the last DML statement; ``-1`` for queries
        (the lazy stream's length is unknown until drained)."""
        return self._rowcount

    @property
    def lastrowid(self) -> Optional[int]:
        """Tuple id of the last row inserted by the last INSERT, if any."""
        return self._lastrowid

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        if self.connection.closed:
            raise InterfaceError("connection is closed")

    def _reset_results(self) -> None:
        self._result_schema = None
        self._rowcount = -1
        self._lastrowid = None
        self._stream = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        """Execute one statement with qmark parameters bound.

        Queries leave a lazy result stream on the cursor (``fetchone`` /
        ``fetchmany`` / ``fetchall`` / iteration); DML sets ``rowcount``
        and ``lastrowid``.  Returns the cursor (sqlite3-style chaining).
        """
        self._check_open()
        prepared = self.connection._prepare(sql)
        self._reset_results()
        engine = self.connection._engine
        with translate_errors():
            if prepared.is_query:
                stream = engine.stream_prepared(prepared, params,
                                                user=self.connection.user)
                self._stream = stream
                self._result_schema = stream.schema
            else:
                summary = engine.execute_prepared(prepared, params,
                                                  user=self.connection.user)
                if isinstance(prepared.statement, ast.Explain):
                    # EXPLAIN reads like a query: one "plan" row per line
                    # of the plan dump (generic plans render ?N markers).
                    self._result_schema = OutputSchema([ColumnInfo("plan")])
                    self._stream = StreamingResultSet(
                        self._result_schema,
                        [Row((line,)) for line in summary.message.splitlines()])
                    return self
                self._rowcount = summary.rows_affected
                tuple_ids = summary.details.get("tuple_ids") or ()
                if isinstance(prepared.statement, ast.Insert) and tuple_ids:
                    self._lastrowid = tuple_ids[-1]
        return self

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        """Execute one DML statement once per parameter set.

        INSERTs take the batched fast path: every bound VALUES row is
        collected into a *single* multi-row INSERT executed in one engine
        call (one pass through validation, index maintenance bookkeeping,
        and statistics), which is how bulk loads ride the vectorized
        pipeline instead of paying per-call dispatch.
        """
        self._check_open()
        prepared = self.connection._prepare(sql)
        self._reset_results()
        engine = self.connection._engine
        with translate_errors():
            if prepared.is_query:
                raise ProgrammingError(
                    "executemany() cannot be used with SELECT; iterate "
                    "execute() instead")
            total = 0
            if isinstance(prepared.statement, ast.Insert):
                rows: List[List[ast.Expression]] = []
                for params in seq_of_params:
                    bound_params = validate_parameters(
                        params, prepared.parameter_count)
                    bound = bind_statement(prepared.statement, bound_params)
                    rows.extend(bound.rows)
                if rows:
                    statement = ast.Insert(prepared.statement.table,
                                           prepared.statement.columns, rows)
                    summary = engine.execute(statement,
                                             user=self.connection.user)
                    total = summary.rows_affected
                    tuple_ids = summary.details.get("tuple_ids") or ()
                    if tuple_ids:
                        self._lastrowid = tuple_ids[-1]
            else:
                for params in seq_of_params:
                    summary = engine.execute_prepared(
                        prepared, params, user=self.connection.user)
                    total += summary.rows_affected
            self._rowcount = total
        return self

    def executescript(self, script: str) -> "Cursor":
        """Execute a semicolon-separated, unparameterized script."""
        self._check_open()
        self._reset_results()
        with translate_errors():
            results = self.connection.database.execute_script(
                script, user=self.connection.user)
        self._rowcount = sum(getattr(result, "rows_affected", 0)
                             for result in results)
        return self

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    def _result_stream(self):
        if self._stream is None:
            raise ProgrammingError(
                "no result set: execute a SELECT before fetching")
        return self._stream

    def fetchone(self) -> Optional[Row]:
        """The next row of the stream, or ``None`` when exhausted."""
        self._check_open()
        stream = self._result_stream()
        with translate_errors():
            return next(iter(stream), None)

    def fetchmany(self, size: Optional[int] = None) -> List[Row]:
        self._check_open()
        stream = self._result_stream()
        with translate_errors():
            return stream.fetchmany(self.arraysize if size is None else size)

    def fetchall(self) -> List[Row]:
        self._check_open()
        stream = self._result_stream()
        with translate_errors():
            return list(stream)

    def __iter__(self) -> "Cursor":
        return self

    def __next__(self) -> Row:
        self._check_open()
        stream = self._result_stream()
        with translate_errors():
            return next(iter(stream))

    # ------------------------------------------------------------------
    def setinputsizes(self, sizes: Sequence[Any]) -> None:  # pragma: no cover
        """PEP 249 no-op: parameter types are inferred from the values."""

    def setoutputsize(self, size: int,
                      column: Optional[int] = None) -> None:  # pragma: no cover
        """PEP 249 no-op: values are never truncated."""

    def close(self) -> None:
        """Discard any pending result stream.  Idempotent."""
        self._closed = True
        self._stream = None

    def __enter__(self) -> "Cursor":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Cursor({state}, rowcount={self._rowcount})"
