"""Network DB-API client: ``repro.client.connect`` speaks the wire protocol.

Mirrors the in-process DB-API surface (:mod:`repro.dbapi.connection`) over a
TCP connection to a :class:`repro.server.DatabaseServer`: same Connection /
Cursor methods, same qmark parameters, same PEP 249 exception hierarchy, and
the same :class:`~repro.executor.row.Row` result objects — annotations
included, reconstructed from their wire form so ``row.annotations`` works
identically on both sides.

Differences from in-process connections, by design:

* Results are materialized server-side under the shared read lock
  (snapshot-on-scan) and fetched here in batches, so a streaming client
  still observes one committed state per statement.
* Server rejections carry ``exc.code`` (``"server_busy"``, ``"lock_timeout"``,
  ...) and ``exc.retryable``; a retryable error did no work server-side and
  the statement may simply be re-sent.
* ``connection.database`` does not exist — the database lives in the server
  process.

>>> from repro.server import start_server
>>> import repro.client
>>> server = start_server()
>>> with repro.client.connect(port=server.port) as conn:
...     _ = conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)")
...     _ = conn.execute("INSERT INTO t VALUES (?, ?)", (1, "hi"))
...     conn.execute("SELECT x FROM t").fetchone().values
('hi',)
>>> server.shutdown()
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import errors as _errors
from repro.core.errors import (
    Error,
    InterfaceError,
    OperationalError,
    ProgrammingError,
)
from repro.executor.row import Row
from repro.server import protocol
from repro.sql.parameters import SUPPORTED_PARAMETER_TYPES, _SUPPORTED_NAMES

#: PEP 249 module-level attributes (parity with the ``repro`` package).
apilevel = "2.0"
threadsafety = 1  # threads may share the module, not connections
paramstyle = "qmark"

#: Rows requested per fetch frame when the consumer reads one at a time.
PREFETCH_ROWS = 128

Description = Tuple[Tuple[Any, ...], ...]


def connect(host: str = "127.0.0.1", port: int = 7474, *,
            user: str = "admin", token: Optional[str] = None,
            timeout: Optional[float] = 30.0) -> "NetworkConnection":
    """Open a connection to a repro server and perform the handshake.

    ``timeout`` bounds every socket operation (connect, send, receive); a
    server that stops responding surfaces as :class:`OperationalError`
    rather than a hang.
    """
    return NetworkConnection(host, port, user=user, token=token,
                             timeout=timeout)


def _check_params(params: Any) -> Tuple[Any, ...]:
    """Client-side half of ``validate_parameters``: shape and value types.

    The placeholder *count* is only known server-side (the client never
    parses SQL), but a mapping or an unrepresentable value can and should
    fail before a network round trip — with the same messages the
    in-process driver produces.
    """
    if params is None:
        return ()
    from collections.abc import Sequence as _Sequence
    if isinstance(params, (str, bytes)) or not isinstance(params, _Sequence):
        raise ProgrammingError(
            f"parameters must be given as a sequence (list or tuple), "
            f"got {type(params).__name__}: this dialect uses qmark ('?') "
            f"placeholders, not named ones")
    params = tuple(params)
    for position, value in enumerate(params):
        if not isinstance(value, SUPPORTED_PARAMETER_TYPES):
            raise ProgrammingError(
                f"parameter {position + 1} has unsupported type "
                f"{type(value).__name__!r}; supported types: "
                f"{_SUPPORTED_NAMES}")
    return params


def _raise_response_error(error: Dict[str, Any]) -> None:
    """Re-raise a server error object as its PEP 249 class, annotated with
    the server's ``code`` and ``retryable`` flag."""
    cls = getattr(_errors, error.get("type", ""), None)
    if not (isinstance(cls, type) and issubclass(cls, Error)):
        cls = OperationalError
    exc = cls(error.get("message", "server error"))
    exc.code = error.get("code")
    exc.retryable = bool(error.get("retryable", False))
    raise exc


class NetworkConnection:
    """A PEP 249 connection over the wire protocol."""

    #: PEP 249 optional extension: exception classes as attributes.
    Warning = _errors.Warning
    Error = _errors.Error
    InterfaceError = _errors.InterfaceError
    DatabaseError = _errors.DatabaseError
    DataError = _errors.DataError
    OperationalError = _errors.OperationalError
    IntegrityError = _errors.IntegrityError
    InternalError = _errors.InternalError
    ProgrammingError = _errors.ProgrammingError
    NotSupportedError = _errors.NotSupportedError

    def __init__(self, host: str, port: int, *, user: str = "admin",
                 token: Optional[str] = None,
                 timeout: Optional[float] = 30.0):
        self.user = user
        self._closed = False
        #: One request/response exchange at a time per connection.
        self._io_lock = threading.RLock()
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as exc:
            raise OperationalError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        self._sock.settimeout(timeout)
        try:
            hello: Dict[str, Any] = {"op": "hello", "user": user}
            if token is not None:
                hello["token"] = token
            reply = self.request(hello)
            self.session_id = reply.get("session")
            self.protocol_version = reply.get("protocol")
        except BaseException:
            self._sock.close()
            self._closed = True
            raise

    # ------------------------------------------------------------------
    # Wire I/O
    # ------------------------------------------------------------------
    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and return its (ok) response; raises on error
        responses and on transport failures."""
        with self._io_lock:
            self._check_open()
            try:
                self._sock.sendall(protocol.encode_frame(message))
                response = self._read_frame()
            except socket.timeout as exc:
                raise OperationalError("server did not respond in time") \
                    from exc
            except OSError as exc:
                self._closed = True
                raise OperationalError(f"connection lost: {exc}") from exc
        if response is None:
            self._closed = True
            raise OperationalError("server closed the connection")
        if not response.get("ok"):
            _raise_response_error(response.get("error") or {})
        return response

    def _read_frame(self) -> Optional[Dict[str, Any]]:
        prefix = self._recv_exact(4)
        if prefix is None:
            return None
        length = protocol.read_length(prefix)
        payload = self._recv_exact(length)
        if payload is None:
            return None
        return protocol.decode_payload(payload)

    def _recv_exact(self, count: int) -> Optional[bytes]:
        chunks: List[bytes] = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------
    # PEP 249 interface
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def cursor(self) -> "NetworkCursor":
        self._check_open()
        return NetworkCursor(self)

    def commit(self) -> None:
        self.request({"op": "commit"})

    def rollback(self) -> None:
        self.request({"op": "rollback"})

    def close(self) -> None:
        """Tell the server goodbye and drop the socket.  Idempotent.  The
        server rolls back any open transaction on disconnect either way."""
        if self._closed:
            return
        try:
            with self._io_lock:
                self._sock.sendall(protocol.encode_frame({"op": "close"}))
                self._read_frame()
        except OSError:
            pass
        finally:
            self._closed = True
            self._sock.close()

    # -- conveniences (sqlite3-style shortcuts) -------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> "NetworkCursor":
        return self.cursor().execute(sql, params)

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "NetworkCursor":
        return self.cursor().executemany(sql, seq_of_params)

    def executescript(self, script: str) -> "NetworkCursor":
        return self.cursor().executescript(script)

    # ------------------------------------------------------------------
    def __enter__(self) -> "NetworkConnection":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if not self._closed:
            try:
                if exc_type is None:
                    self.commit()
                else:
                    self.rollback()
            finally:
                self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"NetworkConnection(user={self.user!r}, {state})"


class NetworkCursor:
    """A PEP 249 cursor fetching batches from a server-side result."""

    def __init__(self, connection: NetworkConnection):
        self.connection = connection
        self.arraysize = 1
        self._closed = False
        self._columns: Optional[List[str]] = None
        self._rowcount = -1
        self._lastrowid: Optional[int] = None
        self._result_id: Optional[int] = None
        self._buffer: List[Row] = []
        self._exhausted = True

    # ------------------------------------------------------------------
    @property
    def description(self) -> Optional[Description]:
        if self._columns is None:
            return None
        return tuple((name, None, None, None, None, None, None)
                     for name in self._columns)

    @property
    def rowcount(self) -> int:
        return self._rowcount

    @property
    def lastrowid(self) -> Optional[int]:
        return self._lastrowid

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        if self.connection.closed:
            raise InterfaceError("connection is closed")

    def _reset_results(self) -> None:
        self._free_result()
        self._columns = None
        self._rowcount = -1
        self._lastrowid = None
        self._buffer = []
        self._exhausted = True

    def _free_result(self) -> None:
        if self._result_id is not None and not self._exhausted \
                and not self.connection.closed:
            try:
                self.connection.request({"op": "close_result",
                                         "result_id": self._result_id})
            except Error:
                pass
        self._result_id = None

    def _apply_response(self, response: Dict[str, Any]) -> None:
        if response.get("kind") == "rows":
            self._result_id = response["result_id"]
            self._columns = response["columns"]
            # Parity with the in-process cursor: queries report -1 (the
            # in-process stream's length is unknown; keep one behavior).
            self._rowcount = -1
            self._exhausted = False
        else:
            self._rowcount = response.get("rowcount", -1)
            self._lastrowid = response.get("lastrowid")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> "NetworkCursor":
        self._check_open()
        if not isinstance(sql, str):
            raise InterfaceError(
                f"SQL must be a string, got {type(sql).__name__}")
        request = {"op": "execute", "sql": sql,
                   "params": protocol.encode_values(_check_params(params))}
        self._reset_results()
        self._apply_response(self.connection.request(request))
        return self

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "NetworkCursor":
        self._check_open()
        request = {"op": "executemany", "sql": sql,
                   "params": [protocol.encode_values(_check_params(params))
                              for params in seq_of_params]}
        self._reset_results()
        self._apply_response(self.connection.request(request))
        return self

    def executescript(self, script: str) -> "NetworkCursor":
        self._check_open()
        self._reset_results()
        self._apply_response(self.connection.request(
            {"op": "script", "sql": script}))
        return self

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    def _check_results(self) -> None:
        if self._columns is None:
            raise ProgrammingError(
                "no result set: execute a SELECT before fetching")

    def _fetch_from_server(self, count: int) -> None:
        """Pull up to ``count`` more rows into the local buffer (0 = all)."""
        if self._exhausted or self._result_id is None:
            return
        response = self.connection.request(
            {"op": "fetch", "result_id": self._result_id, "count": count})
        for encoded in response.get("rows", []):
            values, annotations = protocol.decode_row(encoded)
            self._buffer.append(Row(values, annotations))
        if response.get("done"):
            self._exhausted = True
            self._result_id = None  # the server auto-freed it

    def fetchone(self) -> Optional[Row]:
        self._check_open()
        self._check_results()
        if not self._buffer:
            self._fetch_from_server(max(self.arraysize, PREFETCH_ROWS))
        if not self._buffer:
            return None
        return self._buffer.pop(0)

    def fetchmany(self, size: Optional[int] = None) -> List[Row]:
        self._check_open()
        self._check_results()
        size = self.arraysize if size is None else size
        if size <= 0:
            return []
        while len(self._buffer) < size and not self._exhausted:
            self._fetch_from_server(size - len(self._buffer))
        out, self._buffer = self._buffer[:size], self._buffer[size:]
        return out

    def fetchall(self) -> List[Row]:
        self._check_open()
        self._check_results()
        while not self._exhausted:
            self._fetch_from_server(0)
        out, self._buffer = self._buffer, []
        return out

    def __iter__(self) -> "NetworkCursor":
        return self

    def __next__(self) -> Row:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # ------------------------------------------------------------------
    def setinputsizes(self, sizes: Sequence[Any]) -> None:  # pragma: no cover
        """PEP 249 no-op: parameter types are inferred from the values."""

    def setoutputsize(self, size: int,
                      column: Optional[int] = None) -> None:  # pragma: no cover
        """PEP 249 no-op: values are never truncated."""

    def close(self) -> None:
        """Free the server-side result, if any.  Idempotent."""
        if self._closed:
            return
        self._free_result()
        self._closed = True
        self._buffer = []

    def __enter__(self) -> "NetworkCursor":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"NetworkCursor({state}, rowcount={self._rowcount})"


__all__ = ["connect", "NetworkConnection", "NetworkCursor",
           "apilevel", "threadsafety", "paramstyle"]
