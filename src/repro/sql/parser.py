"""Recursive-descent parser for SQL and A-SQL.

``parse_statement`` parses a single statement; ``parse_script`` parses a
semicolon-separated script.  A-SQL statements (Figures 4 and 6 of the paper)
and the A-SQL SELECT extensions (Figure 7) are parsed by the same parser —
A-SQL is a strict superset of the supported SQL subset.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.errors import ProgrammingError, SqlSyntaxError
from repro.sql import ast
from repro.sql.tokens import Token, TokenType, tokenize


def parse_statement(text: str) -> Any:
    """Parse a single SQL / A-SQL statement and return its AST node."""
    return parse_prepared(text)[0]


def parse_prepared(text: str) -> Tuple[Any, int]:
    """Parse a single statement, returning ``(node, parameter_count)``.

    ``parameter_count`` is the number of qmark (``?``) placeholders found;
    each becomes an :class:`~repro.sql.ast.Parameter` node carrying its
    zero-based position.  A second statement after a semicolon raises
    :class:`ProgrammingError` (one statement per call — scripts go through
    :func:`parse_script` / ``execute_script``).
    """
    parser = Parser(tokenize(text))
    statement = parser.parse_statement()
    had_semicolon = parser.match_punct(";")
    parser.skip_semicolons()
    if had_semicolon and not parser.at_end():
        token = parser.peek()
        raise ProgrammingError(
            f"multi-statement strings are not allowed here (second statement "
            f"starts at {token.value!r}, position {token.position}); execute "
            f"one statement at a time, or use execute_script() / "
            f"Cursor.executescript() for scripts"
        )
    parser.expect_end()
    return statement, parser.parameter_count


def parse_script(text: str) -> List[Any]:
    """Parse a script of semicolon-separated statements.

    Scripts are unparameterized: a ``?`` placeholder raises
    :class:`ProgrammingError` (there is no way to bind values to a script).
    """
    parser = Parser(tokenize(text))
    statements: List[Any] = []
    parser.skip_semicolons()
    while not parser.at_end():
        statements.append(parser.parse_statement())
        parser.skip_semicolons()
    if parser.parameter_count:
        raise ProgrammingError(
            f"parameter placeholders are not allowed in scripts (found "
            f"{parser.parameter_count}); execute parameterized statements "
            f"one at a time through a cursor"
        )
    return statements


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone scalar expression (used by tests and tools)."""
    parser = Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_end()
    return expr


class Parser:
    """Token-stream parser.  Each ``parse_*`` method consumes its production."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0
        #: Number of qmark placeholders consumed so far; each ``?`` becomes a
        #: :class:`ast.Parameter` carrying its zero-based position.
        self.parameter_count = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.END:
            self._pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().type is TokenType.END

    def check_keyword(self, *names: str) -> bool:
        return self.peek().is_keyword(*names)

    def match_keyword(self, *names: str) -> bool:
        if self.check_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, *names: str) -> Token:
        if not self.check_keyword(*names):
            raise SqlSyntaxError(
                f"expected {' or '.join(names)}, found {self.peek().value!r}",
                self.peek().position,
            )
        return self.advance()

    def check_punct(self, value: str) -> bool:
        token = self.peek()
        return token.type is TokenType.PUNCTUATION and token.value == value

    def match_punct(self, value: str) -> bool:
        if self.check_punct(value):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        if not self.check_punct(value):
            raise SqlSyntaxError(
                f"expected {value!r}, found {self.peek().value!r}",
                self.peek().position,
            )
        return self.advance()

    def check_operator(self, *values: str) -> bool:
        token = self.peek()
        return token.type is TokenType.OPERATOR and token.value in values

    def match_operator(self, *values: str) -> Optional[str]:
        if self.check_operator(*values):
            return self.advance().value
        return None

    def expect_identifier(self) -> str:
        token = self.peek()
        # Allow non-reserved use of a handful of keywords as identifiers
        # (e.g. a column named "value" or "key").
        if token.type is TokenType.IDENTIFIER:
            return self.advance().value
        if token.type is TokenType.KEYWORD and token.value in (
            "VALUE", "KEY", "CONTENT", "START", "STOP", "APPROVAL", "COLUMNS",
            "INDEX", "ANNOTATION", "ANNOTATIONS", "TABLE", "TYPE",
        ):
            return self.advance().value
        raise SqlSyntaxError(
            f"expected identifier, found {token.value!r}", token.position
        )

    def expect_string(self) -> str:
        token = self.peek()
        if token.type is not TokenType.STRING:
            raise SqlSyntaxError(
                f"expected string literal, found {token.value!r}", token.position
            )
        return self.advance().value

    def expect_end(self) -> None:
        if not self.at_end():
            token = self.peek()
            raise SqlSyntaxError(
                f"unexpected trailing input: {token.value!r}", token.position
            )

    def skip_semicolons(self) -> None:
        while self.match_punct(";"):
            pass

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> Any:
        token = self.peek()
        if token.is_keyword("SELECT"):
            return self.parse_query_expression()
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("ADD"):
            return self._parse_add_annotation()
        if token.is_keyword("ARCHIVE"):
            return self._parse_archive_restore(archive=True)
        if token.is_keyword("RESTORE"):
            return self._parse_archive_restore(archive=False)
        if token.is_keyword("GRANT"):
            return self._parse_grant()
        if token.is_keyword("REVOKE"):
            return self._parse_revoke()
        if token.is_keyword("START"):
            return self._parse_start_approval()
        if token.is_keyword("STOP"):
            return self._parse_stop_approval()
        if token.is_keyword("ANALYZE"):
            self.advance()
            table = None
            if not self.at_end() and not self.check_punct(";"):
                table = self.expect_identifier()
            return ast.Analyze(table)
        if token.is_keyword("EXPLAIN"):
            self.advance()
            return ast.Explain(self.parse_statement())
        if token.is_keyword("BEGIN"):
            self.advance()
            self.match_keyword("TRANSACTION")
            return ast.Begin()
        if token.is_keyword("COMMIT"):
            self.advance()
            self.match_keyword("TRANSACTION")
            return ast.Commit()
        if token.is_keyword("ROLLBACK"):
            self.advance()
            self.match_keyword("TRANSACTION")
            return ast.Rollback()
        if token.is_keyword("ATTACH"):
            return self._parse_attach()
        if token.is_keyword("DETACH"):
            return self._parse_detach()
        raise SqlSyntaxError(
            f"cannot parse statement starting with {token.value!r}", token.position
        )

    # -- ATTACH / DETACH --------------------------------------------------
    def _parse_attach(self) -> ast.Attach:
        """ATTACH '<uri>' AS <name> (TYPE <provider> [, <key> <value>]...)"""
        self.expect_keyword("ATTACH")
        uri = self.expect_string()
        self.expect_keyword("AS")
        name = self.expect_identifier()
        self.expect_punct("(")
        provider_type: Optional[str] = None
        options: dict = {}
        while True:
            key = self._parse_option_key()
            value = self._parse_option_value()
            if key.lower() == "type":
                provider_type = str(value)
            else:
                options[key.lower()] = value
            if not self.match_punct(","):
                break
        self.expect_punct(")")
        if provider_type is None:
            raise SqlSyntaxError(
                "ATTACH requires a TYPE option naming the provider "
                "(e.g. TYPE csv)", self.peek().position)
        return ast.Attach(uri, name, provider_type, options)

    def _parse_option_key(self) -> str:
        token = self.peek()
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            return self.advance().value
        raise SqlSyntaxError(
            f"expected option name, found {token.value!r}", token.position)

    def _parse_option_value(self) -> Any:
        token = self.peek()
        if token.type is TokenType.STRING:
            return self.advance().value
        if token.type is TokenType.NUMBER:
            self.advance()
            if any(c in token.value for c in ".eE"):
                return float(token.value)
            return int(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return True
        if token.is_keyword("FALSE"):
            self.advance()
            return False
        if token.is_keyword("NULL"):
            self.advance()
            return None
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            return self.advance().value
        raise SqlSyntaxError(
            f"expected option value, found {token.value!r}", token.position)

    def _parse_detach(self) -> ast.Detach:
        self.expect_keyword("DETACH")
        self.match_keyword("TABLE")
        name = self.expect_identifier()
        return ast.Detach(name)

    # -- CREATE ... -------------------------------------------------------
    def _parse_create(self) -> Any:
        self.expect_keyword("CREATE")
        if self.check_keyword("ANNOTATION"):
            self.advance()
            self.expect_keyword("TABLE")
            annotation_table = self.expect_identifier()
            self.expect_keyword("ON")
            on_table = self.expect_identifier()
            return ast.CreateAnnotationTable(annotation_table, on_table)
        if self.check_keyword("INDEX"):
            self.advance()
            name = self.expect_identifier()
            self.expect_keyword("ON")
            table = self.expect_identifier()
            self.expect_punct("(")
            columns = [self.expect_identifier()]
            while self.match_punct(","):
                columns.append(self.expect_identifier())
            self.expect_punct(")")
            method = "btree"
            if self.match_keyword("USING"):
                method = self.expect_identifier().lower()
            return ast.CreateIndex(name, table, columns, method)
        self.expect_keyword("TABLE")
        name = self.expect_identifier()
        self.expect_punct("(")
        columns = [self._parse_column_def()]
        while self.match_punct(","):
            columns.append(self._parse_column_def())
        self.expect_punct(")")
        return ast.CreateTable(name, columns)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_identifier()
        type_token = self.peek()
        if type_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise SqlSyntaxError(
                f"expected type name after column {name!r}", type_token.position
            )
        type_name = self.advance().value
        # Swallow an optional length argument, e.g. VARCHAR(100).
        if self.match_punct("("):
            while not self.match_punct(")"):
                self.advance()
        column = ast.ColumnDef(name=name, type_name=type_name)
        while True:
            if self.match_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                column.primary_key = True
                column.nullable = False
            elif self.match_keyword("NOT"):
                self.expect_keyword("NULL")
                column.nullable = False
            elif self.match_keyword("NULL"):
                column.nullable = True
            elif self.match_keyword("DEFAULT"):
                column.default = self._literal_value(self.parse_primary())
            elif self.match_keyword("UNIQUE"):
                # UNIQUE is accepted and treated as advisory.
                continue
            else:
                break
        return column

    @staticmethod
    def _literal_value(expr: ast.Expression) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.operand, ast.Literal):
            value = expr.operand.value
            return -value if expr.op == "-" else value
        raise SqlSyntaxError("DEFAULT requires a literal value")

    # -- DROP ... ----------------------------------------------------------
    def _parse_drop(self) -> Any:
        self.expect_keyword("DROP")
        if self.check_keyword("ANNOTATION"):
            self.advance()
            self.expect_keyword("TABLE")
            annotation_table = self.expect_identifier()
            self.expect_keyword("ON")
            on_table = self.expect_identifier()
            return ast.DropAnnotationTable(annotation_table, on_table)
        if self.check_keyword("INDEX"):
            self.advance()
            return ast.DropIndex(self.expect_identifier())
        self.expect_keyword("TABLE")
        return ast.DropTable(self.expect_identifier())

    # -- INSERT / UPDATE / DELETE ------------------------------------------
    def _parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: List[str] = []
        if self.match_punct("("):
            columns.append(self.expect_identifier())
            while self.match_punct(","):
                columns.append(self.expect_identifier())
            self.expect_punct(")")
        self.expect_keyword("VALUES")
        rows: List[List[ast.Expression]] = [self._parse_value_row()]
        while self.match_punct(","):
            rows.append(self._parse_value_row())
        return ast.Insert(table, columns, rows)

    def _parse_value_row(self) -> List[ast.Expression]:
        self.expect_punct("(")
        row = [self.parse_expr()]
        while self.match_punct(","):
            row.append(self.parse_expr())
        self.expect_punct(")")
        return row

    def _parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments: List[Tuple[str, ast.Expression]] = []
        while True:
            column = self.expect_identifier()
            if not self.match_operator("="):
                raise SqlSyntaxError("expected '=' in UPDATE assignment",
                                     self.peek().position)
            assignments.append((column, self.parse_expr()))
            if not self.match_punct(","):
                break
        where = self.parse_expr() if self.match_keyword("WHERE") else None
        return ast.Update(table, assignments, where)

    def _parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = self.parse_expr() if self.match_keyword("WHERE") else None
        return ast.Delete(table, where)

    # -- A-SQL annotation statements -----------------------------------------
    def _parse_annotation_table_names(self) -> List[str]:
        names = [self._parse_annotation_table_name()]
        while self.match_punct(","):
            names.append(self._parse_annotation_table_name())
        return names

    def _parse_annotation_table_name(self) -> str:
        # The paper writes annotation tables as  UserTable.AnnTable ; both the
        # qualified and the bare form are accepted.
        first = self.expect_identifier()
        if self.match_punct("."):
            second = self.expect_identifier()
            return f"{first}.{second}"
        return first

    def _parse_add_annotation(self) -> ast.AddAnnotation:
        self.expect_keyword("ADD")
        self.expect_keyword("ANNOTATION")
        self.expect_keyword("TO")
        tables = self._parse_annotation_table_names()
        self.expect_keyword("VALUE")
        body = self.expect_string()
        self.expect_keyword("ON")
        target = self._parse_enclosed_statement()
        return ast.AddAnnotation(tables, body, target)

    def _parse_archive_restore(self, archive: bool) -> Any:
        self.expect_keyword("ARCHIVE" if archive else "RESTORE")
        self.expect_keyword("ANNOTATION")
        self.expect_keyword("FROM")
        tables = self._parse_annotation_table_names()
        time_from = time_to = None
        if self.match_keyword("BETWEEN"):
            time_from = self.expect_string()
            self.expect_keyword("AND")
            time_to = self.expect_string()
        self.expect_keyword("ON")
        target = self._parse_enclosed_statement()
        node_cls = ast.ArchiveAnnotation if archive else ast.RestoreAnnotation
        return node_cls(tables, target, time_from, time_to)

    def _parse_enclosed_statement(self) -> Any:
        """Parse the statement after ON, optionally wrapped in parentheses."""
        if self.match_punct("("):
            inner = self.parse_statement()
            self.expect_punct(")")
            return inner
        return self.parse_statement()

    # -- authorization -----------------------------------------------------
    def _parse_privileges(self) -> List[str]:
        privileges = []
        while True:
            token = self.peek()
            if token.type in (TokenType.KEYWORD, TokenType.IDENTIFIER):
                privileges.append(self.advance().value.upper())
            else:
                raise SqlSyntaxError("expected privilege name", token.position)
            if not self.match_punct(","):
                break
        return privileges

    def _parse_grant(self) -> ast.Grant:
        self.expect_keyword("GRANT")
        privileges = self._parse_privileges()
        self.expect_keyword("ON")
        table = self.expect_identifier()
        self.expect_keyword("TO")
        grantee = self.expect_identifier()
        return ast.Grant(privileges, table, grantee)

    def _parse_revoke(self) -> ast.Revoke:
        self.expect_keyword("REVOKE")
        privileges = self._parse_privileges()
        self.expect_keyword("ON")
        table = self.expect_identifier()
        self.expect_keyword("FROM")
        grantee = self.expect_identifier()
        return ast.Revoke(privileges, table, grantee)

    def _parse_start_approval(self) -> ast.StartContentApproval:
        self.expect_keyword("START")
        self.expect_keyword("CONTENT")
        self.expect_keyword("APPROVAL")
        self.expect_keyword("ON")
        table = self.expect_identifier()
        columns = self._parse_optional_columns()
        self.expect_keyword("APPROVED")
        self.expect_keyword("BY")
        approver = self.expect_identifier()
        return ast.StartContentApproval(table, approver, columns)

    def _parse_stop_approval(self) -> ast.StopContentApproval:
        self.expect_keyword("STOP")
        self.expect_keyword("CONTENT")
        self.expect_keyword("APPROVAL")
        self.expect_keyword("ON")
        table = self.expect_identifier()
        columns = self._parse_optional_columns()
        return ast.StopContentApproval(table, columns)

    def _parse_optional_columns(self) -> List[str]:
        if not self.match_keyword("COLUMNS"):
            return []
        has_paren = self.match_punct("(")
        columns = [self.expect_identifier()]
        while self.match_punct(","):
            columns.append(self.expect_identifier())
        if has_paren:
            self.expect_punct(")")
        return columns

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def parse_query_expression(self) -> Any:
        """Parse a SELECT with optional set operations (left-associative)."""
        left = self.parse_select()
        while self.check_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self.advance().value
            include_all = self.match_keyword("ALL")
            right = self.parse_select()
            left = ast.SetOperation(op, left, right, include_all)
        return left

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        select = ast.Select(items=[])
        select.distinct = self.match_keyword("DISTINCT")
        select.items.append(self._parse_select_item())
        while self.match_punct(","):
            select.items.append(self._parse_select_item())
        if self.match_keyword("FROM"):
            select.from_tables.append(self._parse_table_ref())
            while True:
                if self.match_punct(","):
                    select.from_tables.append(self._parse_table_ref())
                    continue
                join = self._maybe_parse_join()
                if join is None:
                    break
                select.joins.append(join)
        if self.match_keyword("WHERE"):
            select.where = self.parse_expr()
        if self.match_keyword("AWHERE"):
            select.awhere = self.parse_expr()
        if self.match_keyword("GROUP"):
            self.expect_keyword("BY")
            select.group_by.append(self.parse_expr())
            while self.match_punct(","):
                select.group_by.append(self.parse_expr())
        if self.match_keyword("HAVING"):
            select.having = self.parse_expr()
        if self.match_keyword("AHAVING"):
            select.ahaving = self.parse_expr()
        if self.match_keyword("FILTER"):
            select.filter = self.parse_expr()
        if self.match_keyword("ORDER"):
            self.expect_keyword("BY")
            select.order_by.append(self._parse_order_item())
            while self.match_punct(","):
                select.order_by.append(self._parse_order_item())
        if self.match_keyword("LIMIT"):
            select.limit = self._expect_count("LIMIT")
        if self.match_keyword("OFFSET"):
            select.offset = self._expect_count("OFFSET")
        return select

    def _expect_number(self) -> float:
        token = self.peek()
        if token.type is not TokenType.NUMBER:
            raise SqlSyntaxError(f"expected number, found {token.value!r}",
                                 token.position)
        self.advance()
        return float(token.value)

    def _expect_count(self, clause: str) -> int:
        """A LIMIT/OFFSET row count: a non-negative integer literal."""
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            raise SqlSyntaxError(
                f"{clause} requires a non-negative integer", token.position)
        value = self._expect_number()
        if value != int(value):
            raise SqlSyntaxError(
                f"{clause} requires an integer, got {token.value!r}",
                token.position)
        return int(value)

    def _parse_select_item(self) -> ast.SelectItem:
        if self.check_operator("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        expr = self.parse_expr()
        item = ast.SelectItem(expr)
        if self.match_keyword("PROMOTE"):
            self.expect_punct("(")
            item.promote.append(self._parse_column_ref())
            while self.match_punct(","):
                item.promote.append(self._parse_column_ref())
            self.expect_punct(")")
        if self.match_keyword("AS"):
            item.alias = self.expect_identifier()
        elif self.peek().type is TokenType.IDENTIFIER:
            item.alias = self.advance().value
        return item

    def _parse_column_ref(self) -> ast.ColumnRef:
        first = self.expect_identifier()
        if self.match_punct("."):
            return ast.ColumnRef(self.expect_identifier(), table=first)
        return ast.ColumnRef(first)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self.expect_identifier()
        ref = ast.TableRef(name)
        if self.check_keyword("ANNOTATION", "ANNOTATIONS") and self.peek(1).value == "(":
            self.advance()
            self.expect_punct("(")
            ref.annotation_tables.append(self._parse_annotation_table_name())
            while self.match_punct(","):
                ref.annotation_tables.append(self._parse_annotation_table_name())
            self.expect_punct(")")
        if self.match_keyword("AS"):
            ref.alias = self.expect_identifier()
        elif self.peek().type is TokenType.IDENTIFIER:
            ref.alias = self.advance().value
        return ref

    def _maybe_parse_join(self) -> Optional[ast.Join]:
        join_type = None
        if self.check_keyword("JOIN"):
            join_type = "INNER"
            self.advance()
        elif self.check_keyword("INNER") and self.peek(1).is_keyword("JOIN"):
            self.advance()
            self.advance()
            join_type = "INNER"
        elif self.check_keyword("LEFT"):
            self.advance()
            self.match_keyword("OUTER")
            self.expect_keyword("JOIN")
            join_type = "LEFT"
        elif self.check_keyword("CROSS") and self.peek(1).is_keyword("JOIN"):
            self.advance()
            self.advance()
            join_type = "CROSS"
        if join_type is None:
            return None
        table = self._parse_table_ref()
        condition = None
        if join_type != "CROSS":
            self.expect_keyword("ON")
            condition = self.parse_expr()
        return ast.Join(table, condition, join_type)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.match_keyword("DESC"):
            ascending = False
        else:
            self.match_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self.match_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self.match_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self.match_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        op = self.match_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if op is not None:
            normalized = "<>" if op == "!=" else op
            return ast.BinaryOp(normalized, left, self._parse_additive())
        if self.check_keyword("IS"):
            self.advance()
            negated = self.match_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = False
        if self.check_keyword("NOT") and self.peek(1).is_keyword("LIKE", "IN", "BETWEEN"):
            self.advance()
            negated = True
        if self.match_keyword("LIKE"):
            return ast.Like(left, self._parse_additive(), negated)
        if self.match_keyword("IN"):
            self.expect_punct("(")
            items = [self.parse_expr()]
            while self.match_punct(","):
                items.append(self.parse_expr())
            self.expect_punct(")")
            return ast.InList(left, items, negated)
        if self.match_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            op = self.match_operator("+", "-", "||")
            if op is None:
                break
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            op = self.match_operator("*", "/", "%")
            if op is None:
                break
            left = ast.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        op = self.match_operator("-", "+")
        if op is not None:
            return ast.UnaryOp(op, self._parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expression:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if any(c in text for c in ".eE"):
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PUNCTUATION and token.value == "?":
            self.advance()
            parameter = ast.Parameter(self.parameter_count)
            self.parameter_count += 1
            return parameter
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if self.check_punct("("):
            self.advance()
            if self.check_keyword("SELECT"):
                raise SqlSyntaxError(
                    "scalar subqueries are not supported", token.position
                )
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            return self._parse_identifier_expression()
        raise SqlSyntaxError(f"unexpected token {token.value!r}", token.position)

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self.expect_identifier()
        # Function call
        if self.check_punct("("):
            self.advance()
            distinct = self.match_keyword("DISTINCT")
            args: List[ast.Expression] = []
            if self.check_operator("*"):
                self.advance()
                args.append(ast.Star())
            elif not self.check_punct(")"):
                args.append(self.parse_expr())
                while self.match_punct(","):
                    args.append(self.parse_expr())
            self.expect_punct(")")
            return ast.FunctionCall(name.upper(), args, distinct)
        # Qualified reference: table.column or table.*
        if self.match_punct("."):
            if self.check_operator("*"):
                self.advance()
                return ast.Star(table=name)
            return ast.ColumnRef(self.expect_identifier(), table=name)
        return ast.ColumnRef(name)
