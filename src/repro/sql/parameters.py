"""Parameter binding for prepared statements (qmark / PEP 249 style).

A prepared statement keeps its parsed AST — with :class:`ast.Parameter`
placeholders intact — for its whole lifetime, so the engine can cache the
plan built from it.  At execution time the bound values are *substituted*
into fresh expression trees (:func:`substitute_parameters`); subtrees without
placeholders are shared, not copied, so binding a typical statement touches a
handful of nodes.

Validation is eager (:func:`validate_parameters`): a wrong parameter count or
a value the storage layer cannot represent fails with the placeholder index
in the message before any planning or execution happens.
"""

from __future__ import annotations

from dataclasses import replace
from datetime import datetime
from typing import Any, Optional, Sequence, Tuple

from repro.core.errors import ProgrammingError
from repro.sql import ast

#: Python types the storage layer can represent (the SQL NULL plus the value
#: forms of INTEGER/FLOAT/BOOLEAN/TEXT-like/TIMESTAMP columns).
SUPPORTED_PARAMETER_TYPES = (type(None), bool, int, float, str, datetime)

_SUPPORTED_NAMES = "NULL, bool, int, float, str, datetime"


def validate_parameters(params: Any, expected_count: int) -> Tuple[Any, ...]:
    """Check count and types eagerly; return the parameters as a tuple.

    Raises :class:`ProgrammingError` naming the offending placeholder when a
    value's type has no SQL representation, or stating both counts when the
    arity is wrong.  ``None`` is accepted as "no parameters".
    """
    if params is None:
        params = ()
    if type(params) is not tuple:                  # fast path: already a tuple
        if isinstance(params, (str, bytes)) or not isinstance(params, Sequence):
            raise ProgrammingError(
                f"parameters must be given as a sequence (list or tuple), "
                f"got {type(params).__name__}: this dialect uses qmark ('?') "
                f"placeholders, not named ones")
        params = tuple(params)
    if len(params) != expected_count:
        raise ProgrammingError(
            f"statement expects {expected_count} parameter(s) "
            f"({expected_count} '?' placeholder(s)) but {len(params)} "
            f"value(s) were supplied")
    for position, value in enumerate(params):
        if not isinstance(value, SUPPORTED_PARAMETER_TYPES):
            raise ProgrammingError(
                f"parameter {position + 1} has unsupported type "
                f"{type(value).__name__!r}; supported types: {_SUPPORTED_NAMES}")
    return params


def substitute_parameters(expr: ast.Expression,
                          params: Sequence[Any]) -> ast.Expression:
    """Return ``expr`` with every :class:`ast.Parameter` replaced by a
    :class:`ast.Literal` of the bound value.

    Subtrees containing no placeholder are returned *by reference* (the
    common case — only the parameterized conjuncts of a WHERE clause are
    rebuilt), which also preserves literal identity for caches keyed on
    literal nodes (e.g. the constant-pattern LIKE fast path).
    """
    if isinstance(expr, ast.Parameter):
        return ast.Literal(params[expr.index])
    if isinstance(expr, ast.BinaryOp):
        left = substitute_parameters(expr.left, params)
        right = substitute_parameters(expr.right, params)
        if left is expr.left and right is expr.right:
            return expr
        return ast.BinaryOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = substitute_parameters(expr.operand, params)
        return expr if operand is expr.operand else ast.UnaryOp(expr.op, operand)
    if isinstance(expr, ast.FunctionCall):
        args = [substitute_parameters(arg, params) for arg in expr.args]
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return ast.FunctionCall(expr.name, args, expr.distinct)
    if isinstance(expr, ast.IsNull):
        operand = substitute_parameters(expr.operand, params)
        if operand is expr.operand:
            return expr
        return ast.IsNull(operand, expr.negated)
    if isinstance(expr, ast.Like):
        operand = substitute_parameters(expr.operand, params)
        pattern = substitute_parameters(expr.pattern, params)
        if operand is expr.operand and pattern is expr.pattern:
            return expr
        return ast.Like(operand, pattern, expr.negated)
    if isinstance(expr, ast.InList):
        operand = substitute_parameters(expr.operand, params)
        items = [substitute_parameters(item, params) for item in expr.items]
        if operand is expr.operand \
                and all(new is old for new, old in zip(items, expr.items)):
            return expr
        return ast.InList(operand, items, expr.negated)
    if isinstance(expr, ast.Between):
        operand = substitute_parameters(expr.operand, params)
        low = substitute_parameters(expr.low, params)
        high = substitute_parameters(expr.high, params)
        if operand is expr.operand and low is expr.low and high is expr.high:
            return expr
        return ast.Between(operand, low, high, expr.negated)
    # Literal, ColumnRef, Star: no placeholders below.
    return expr


def _substitute_optional(expr: Optional[ast.Expression],
                         params: Sequence[Any]) -> Optional[ast.Expression]:
    return None if expr is None else substitute_parameters(expr, params)


def bind_select_clauses(select: ast.Select,
                        params: Sequence[Any]) -> ast.Select:
    """A shallow copy of ``select`` with the post-planning clauses bound.

    The engine plans against the *template* select (so the plan stays
    reusable) and executes projection/grouping/ordering/annotation clauses
    from this bound copy.  ``where``, ``from_tables`` and ``joins`` are left
    untouched — their parameterized conjuncts live on in the plan tree,
    which is bound separately (see ``repro.executor.prepared.bind_plan``).
    Identity-preserving: when no clause holds a placeholder (the common
    point-query shape, whose parameters all sit in WHERE), the original
    select is returned with zero allocation.
    """
    if not params:
        return select
    changed = False
    items = []
    for item in select.items:
        expr = substitute_parameters(item.expr, params)
        if expr is item.expr:
            items.append(item)
        else:
            changed = True
            items.append(ast.SelectItem(expr, item.alias, item.promote))
    group_by = [substitute_parameters(expr, params) for expr in select.group_by]
    changed = changed or any(new is not old
                             for new, old in zip(group_by, select.group_by))
    order_by = []
    for item in select.order_by:
        expr = substitute_parameters(item.expr, params)
        if expr is item.expr:
            order_by.append(item)
        else:
            changed = True
            order_by.append(ast.OrderItem(expr, item.ascending))
    having = _substitute_optional(select.having, params)
    ahaving = _substitute_optional(select.ahaving, params)
    awhere = _substitute_optional(select.awhere, params)
    filter_ = _substitute_optional(select.filter, params)
    changed = changed or having is not select.having \
        or ahaving is not select.ahaving or awhere is not select.awhere \
        or filter_ is not select.filter
    if not changed:
        return select
    return replace(select, items=items, group_by=group_by, having=having,
                   ahaving=ahaving, awhere=awhere, filter=filter_,
                   order_by=order_by)


def bind_statement(statement: Any, params: Sequence[Any]) -> Any:
    """Bind the parameters of a DML statement into a substituted copy.

    Queries are *not* bound here — the engine binds them after (cached)
    planning so the plan never bakes in one execution's values.  Statement
    types outside INSERT/UPDATE/DELETE cannot carry parameters at all.
    """
    if not params:
        return statement
    if isinstance(statement, ast.Insert):
        return ast.Insert(
            statement.table, statement.columns,
            [[substitute_parameters(expr, params) for expr in row]
             for row in statement.rows])
    if isinstance(statement, ast.Update):
        return ast.Update(
            statement.table,
            [(column, substitute_parameters(expr, params))
             for column, expr in statement.assignments],
            _substitute_optional(statement.where, params))
    if isinstance(statement, ast.Delete):
        return ast.Delete(statement.table,
                          _substitute_optional(statement.where, params))
    raise ProgrammingError(
        f"parameter placeholders are not supported in "
        f"{type(statement).__name__} statements")
