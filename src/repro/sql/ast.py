"""Abstract syntax tree for SQL and A-SQL statements.

The node set covers the standard SQL subset needed by the paper's examples
plus every A-SQL construct from Figures 4, 6, 7 and the authorization
commands from Figure 11.  Nodes are plain dataclasses; the planner walks them
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Expression:
    """Base class for scalar expressions."""


@dataclass
class Literal(Expression):
    value: Any


@dataclass
class Parameter(Expression):
    """A qmark (``?``) placeholder of a prepared statement.

    ``index`` is the zero-based position of the placeholder in the statement
    text; execution substitutes the bound value for it (see
    :mod:`repro.sql.parameters`).  The planner treats a parameter like a
    literal of *unknown* value: equality predicates still estimate ``1/NDV``
    selectivity and still qualify for index lookups (the key is resolved at
    bind time), while range predicates fall back to default selectivities.
    """

    index: int


@dataclass
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` or ``alias.*`` in a projection list."""

    table: Optional[str] = None


@dataclass
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression


@dataclass
class UnaryOp(Expression):
    op: str
    operand: Expression


@dataclass
class FunctionCall(Expression):
    name: str
    args: List[Expression]
    distinct: bool = False

    @property
    def is_star(self) -> bool:
        return len(self.args) == 1 and isinstance(self.args[0], Star)


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    operand: Expression
    items: List[Expression]
    negated: bool = False


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------
@dataclass
class SelectItem:
    """One entry of the projection list.

    ``promote`` holds the column names given in the A-SQL ``PROMOTE`` clause:
    annotations over those columns are copied onto this projected column
    (paper Section 3.4).
    """

    expr: Expression
    alias: Optional[str] = None
    promote: List[ColumnRef] = field(default_factory=list)


@dataclass
class TableRef:
    """A table in the FROM clause, optionally with ANNOTATION(...) tables."""

    name: str
    alias: Optional[str] = None
    #: Annotation tables named in the A-SQL ``ANNOTATION(S1, S2, ...)`` clause.
    annotation_tables: List[str] = field(default_factory=list)

    @property
    def effective_name(self) -> str:
        return self.alias or self.name


@dataclass
class Join:
    table: TableRef
    condition: Optional[Expression]
    join_type: str = "INNER"  # INNER | LEFT | CROSS


@dataclass
class OrderItem:
    expr: Expression
    ascending: bool = True


@dataclass
class Select:
    """A (possibly annotation-aware) SELECT statement.

    ``awhere``, ``ahaving`` and ``filter`` are the A-SQL additions: predicates
    evaluated over the *annotations* of a tuple rather than its data values.
    """

    items: List[SelectItem]
    from_tables: List[TableRef] = field(default_factory=list)
    joins: List[Join] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    # -- A-SQL extensions (Figure 7) --
    awhere: Optional[Expression] = None
    ahaving: Optional[Expression] = None
    filter: Optional[Expression] = None


@dataclass
class SetOperation:
    """UNION / INTERSECT / EXCEPT between two query expressions."""

    op: str
    left: Any  # Select or SetOperation
    right: Any
    all: bool = False


# ---------------------------------------------------------------------------
# Data definition and manipulation
# ---------------------------------------------------------------------------
@dataclass
class ColumnDef:
    name: str
    type_name: str
    nullable: bool = True
    primary_key: bool = False
    default: Any = None


@dataclass
class CreateTable:
    name: str
    columns: List[ColumnDef]
    if_not_exists: bool = False


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class CreateIndex:
    name: str
    table: str
    columns: List[str]
    method: str = "btree"  # btree | hash | trie | kdtree | quadtree | sbc


@dataclass
class DropIndex:
    name: str


@dataclass
class Insert:
    table: str
    columns: List[str]
    rows: List[List[Expression]]


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Expression]]
    where: Optional[Expression] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expression] = None


@dataclass
class Attach:
    """ATTACH '<uri>' AS <name> (TYPE <provider> [, <key> <value>]...).

    Registers a foreign table served by a pluggable table provider;
    ``options`` carries the remaining key/value pairs (string, numeric,
    boolean, or bare-identifier values) verbatim for the provider.
    """

    uri: str
    name: str
    provider_type: str
    options: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Detach:
    """DETACH <name>: unregister an attached foreign table."""

    name: str
    if_exists: bool = False


@dataclass
class Analyze:
    """ANALYZE [<table>]: (re)compute planner statistics."""

    table: Optional[str] = None


@dataclass
class Explain:
    """EXPLAIN <query>: plan the query and return the plan without running it."""

    target: Any = None


# ---------------------------------------------------------------------------
# Transaction control
# ---------------------------------------------------------------------------
@dataclass
class Begin:
    """BEGIN [TRANSACTION]: open an explicit transaction."""


@dataclass
class Commit:
    """COMMIT [TRANSACTION]: durably commit the open transaction."""


@dataclass
class Rollback:
    """ROLLBACK [TRANSACTION]: undo the open transaction."""


# ---------------------------------------------------------------------------
# A-SQL statements (Figures 4 and 6)
# ---------------------------------------------------------------------------
@dataclass
class CreateAnnotationTable:
    """CREATE ANNOTATION TABLE <ann_table> ON <user_table>."""

    annotation_table: str
    on_table: str


@dataclass
class DropAnnotationTable:
    """DROP ANNOTATION TABLE <ann_table> ON <user_table>."""

    annotation_table: str
    on_table: str


@dataclass
class AddAnnotation:
    """ADD ANNOTATION TO <ann_tables> VALUE <body> ON <statement>.

    ``target`` is the enclosed statement: a Select (annotate existing data) or
    an Insert/Update/Delete (annotate the affected rows of a DML statement,
    per Section 3.2).
    """

    annotation_tables: List[str]
    body: str
    target: Any


@dataclass
class ArchiveAnnotation:
    """ARCHIVE ANNOTATION FROM <ann_tables> [BETWEEN t1 AND t2] ON <select>."""

    annotation_tables: List[str]
    target: Any
    time_from: Optional[str] = None
    time_to: Optional[str] = None


@dataclass
class RestoreAnnotation:
    """RESTORE ANNOTATION FROM <ann_tables> [BETWEEN t1 AND t2] ON <select>."""

    annotation_tables: List[str]
    target: Any
    time_from: Optional[str] = None
    time_to: Optional[str] = None


# ---------------------------------------------------------------------------
# Authorization statements (Section 6, Figure 11)
# ---------------------------------------------------------------------------
@dataclass
class Grant:
    privileges: List[str]
    table: str
    grantee: str


@dataclass
class Revoke:
    privileges: List[str]
    table: str
    grantee: str


@dataclass
class StartContentApproval:
    table: str
    approver: str
    columns: List[str] = field(default_factory=list)


@dataclass
class StopContentApproval:
    table: str
    columns: List[str] = field(default_factory=list)


#: Union of every statement node, for documentation purposes.
Statement = Any
