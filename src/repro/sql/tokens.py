"""Tokenizer for the SQL / A-SQL dialect of the bdbms reproduction.

The tokenizer is a straightforward single-pass scanner producing a list of
tokens.  Keywords are recognised case-insensitively; identifiers may be
quoted with double quotes, string literals with single quotes (doubled single
quotes escape), and numeric literals cover integers and decimals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.core.errors import SqlSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    STRING = "STRING"
    NUMBER = "NUMBER"
    OPERATOR = "OPERATOR"
    PUNCTUATION = "PUNCTUATION"
    END = "END"


#: Keywords of the supported SQL subset plus every A-SQL extension keyword
#: introduced by the paper (Figures 4, 6, 7, 11) and the authorization
#: commands (GRANT/REVOKE, START/STOP CONTENT APPROVAL).
KEYWORDS = {
    # standard SQL
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "ASC", "DESC", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "NULL", "IS",
    "IN", "LIKE", "BETWEEN", "EXISTS", "UNION", "INTERSECT", "EXCEPT", "ALL",
    "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON",
    "CREATE", "DROP", "TABLE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "PRIMARY", "KEY", "UNIQUE", "DEFAULT", "TRUE", "FALSE",
    "INDEX", "USING", "ANALYZE", "EXPLAIN",
    "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION",
    # A-SQL (annotation management, Figures 4, 6, 7)
    "ANNOTATION", "ANNOTATIONS", "ADD", "VALUE", "ARCHIVE", "RESTORE",
    "PROMOTE", "AWHERE", "AHAVING", "FILTER", "TO",
    # authorization (Section 6, Figure 11) and provenance
    "GRANT", "REVOKE", "APPROVED", "START", "STOP", "CONTENT", "APPROVAL",
    "COLUMNS",
    # foreign tables (pluggable table providers)
    "ATTACH", "DETACH", "TYPE",
}

#: Multi-character operators must be listed before their prefixes.
_OPERATORS = ["<>", "!=", ">=", "<=", "=", "<", ">", "||", "+", "-", "*", "/", "%"]
_PUNCTUATION = ["(", ")", ",", ".", ";", "?"]


@dataclass
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list ending with an END token."""
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        # -- comments ---------------------------------------------------
        if ch == "-" and text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        # -- string literal ----------------------------------------------
        if ch == "'":
            value, i = _scan_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        # -- quoted identifier --------------------------------------------
        if ch == '"':
            end = text.find('"', i + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENTIFIER, text[i + 1:end], i))
            i = end + 1
            continue
        # -- number --------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isdigit() or text[i] in ".eE+-"):
                # Stop '+'/'-' unless directly after an exponent marker.
                if text[i] in "+-" and text[i - 1] not in "eE":
                    break
                i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        # -- identifier / keyword -------------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        # -- operators and punctuation ----------------------------------------
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, "", n))
    return tokens


def _scan_string(text: str, start: int) -> tuple:
    """Scan a single-quoted string starting at ``start``; '' escapes a quote."""
    i = start + 1
    parts: List[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", start)
