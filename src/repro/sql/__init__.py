"""SQL and A-SQL front end: tokenizer, AST, and parser."""

from repro.sql import ast
from repro.sql.parser import (
    parse_expression,
    parse_prepared,
    parse_script,
    parse_statement,
)
from repro.sql.tokens import Token, TokenType, tokenize

__all__ = [
    "ast",
    "parse_expression",
    "parse_prepared",
    "parse_script",
    "parse_statement",
    "Token",
    "TokenType",
    "tokenize",
]
