"""Light-weight planning utilities: conjunct analysis and predicate pushdown.

The engine evaluates queries with a straightforward pipeline (scan -> join ->
filter -> group -> project -> order).  To keep joins tractable, the planner
splits the WHERE clause into conjuncts, determines which tables each conjunct
references, and pushes single-table conjuncts down to the corresponding scan
— the classical selection-pushdown rewrite.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.sql import ast


def split_conjuncts(expr: Optional[ast.Expression]) -> List[ast.Expression]:
    """Split an expression into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def combine_conjuncts(conjuncts: Sequence[ast.Expression]) -> Optional[ast.Expression]:
    """Re-assemble conjuncts into a single AND expression (or ``None``)."""
    result: Optional[ast.Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.BinaryOp("AND", result, conjunct)
    return result


def referenced_columns(expr: ast.Expression) -> List[ast.ColumnRef]:
    """Collect every column reference appearing in ``expr``."""
    found: List[ast.ColumnRef] = []

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.ColumnRef):
            found.append(node)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                if not isinstance(arg, ast.Star):
                    walk(arg)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)

    walk(expr)
    return found


def referenced_qualifiers(expr: ast.Expression) -> Set[str]:
    """The set of table qualifiers referenced by ``expr`` (lower-cased)."""
    return {
        ref.table.lower() for ref in referenced_columns(expr) if ref.table is not None
    }


def push_down_conjuncts(
    where: Optional[ast.Expression],
    table_refs: Sequence[ast.TableRef],
    resolvable: Dict[str, Set[str]],
) -> Tuple[Dict[str, List[ast.Expression]], List[ast.Expression]]:
    """Partition WHERE conjuncts into per-table pushdowns and residual conjuncts.

    ``resolvable`` maps each table's effective (alias or real) lower-cased
    name to the set of lower-cased column names it exposes.  A conjunct is
    pushed to a table when every column it references resolves against that
    table alone; everything else (join predicates, multi-table conditions)
    stays in the residual list evaluated after the join.
    """
    pushed: Dict[str, List[ast.Expression]] = {name: [] for name in resolvable}
    residual: List[ast.Expression] = []
    for conjunct in split_conjuncts(where):
        refs = referenced_columns(conjunct)
        homes: Set[str] = set()
        resolvable_everywhere = True
        for ref in refs:
            candidates = []
            for table_name, columns in resolvable.items():
                if ref.table is not None:
                    if ref.table.lower() == table_name and ref.name.lower() in columns:
                        candidates.append(table_name)
                elif ref.name.lower() in columns:
                    candidates.append(table_name)
            if len(candidates) != 1:
                resolvable_everywhere = False
                break
            homes.add(candidates[0])
        if resolvable_everywhere and len(homes) == 1 and refs:
            pushed[next(iter(homes))].append(conjunct)
        else:
            residual.append(conjunct)
    return pushed, residual


#: Key of an equality lookup: (table qualifier or None, column name), both
#: lower-cased.  Keeping the qualifier prevents a lookup on ``a.id`` from
#: being misapplied to another joined table that also has an ``id`` column.
LookupKey = Tuple[Optional[str], str]


def equality_lookups(conjuncts: Sequence[ast.Expression]) -> Dict[LookupKey, Any]:
    """Extract ``column = literal`` equalities usable for index lookups.

    A ``column = ?`` equality participates too: its recorded value is the
    :class:`ast.Parameter` node itself, which the consumer resolves to the
    bound value at execution time (plan-time consumers that need a concrete
    value — primary-key detection, NDV-based selectivity — only care that
    the column *is* pinned, not what it is pinned to).
    """
    lookups: Dict[LookupKey, Any] = {}
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) \
                and isinstance(right, (ast.Literal, ast.Parameter)):
            lookups[_lookup_key(left)] = (
                right.value if isinstance(right, ast.Literal) else right)
        elif isinstance(right, ast.ColumnRef) \
                and isinstance(left, (ast.Literal, ast.Parameter)):
            lookups[_lookup_key(right)] = (
                left.value if isinstance(left, ast.Literal) else left)
    return lookups


def _lookup_key(ref: ast.ColumnRef) -> LookupKey:
    return (ref.table.lower() if ref.table else None, ref.name.lower())


def lookup_value(lookups: Dict[LookupKey, Any], column: str,
                 qualifier: Optional[str] = None, default: Any = None) -> Any:
    """Resolve a lookup for ``qualifier.column``.

    A lookup recorded with an explicit qualifier only applies to that table;
    an unqualified lookup applies to whichever table the caller asks about
    (the pushdown pass has already established it resolves there uniquely).
    """
    if qualifier is not None:
        key = (qualifier.lower(), column.lower())
        if key in lookups:
            return lookups[key]
    return lookups.get((None, column.lower()), default)
