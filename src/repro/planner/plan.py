"""Join planning: plan trees, equi-join extraction, ordering, and strategies.

The engine used to execute every multi-table query as a chain of cross
products followed by a residual filter.  This module turns the FROM list and
WHERE clause into a proper plan tree instead:

* equi-join conjuncts (``a.x = b.y``) are lifted out of the residual WHERE
  and become join keys;
* the FROM-list relations are ordered greedily by estimated cardinality
  (smallest first, then whichever joinable relation minimises the estimated
  intermediate result);
* each join edge picks a physical strategy — hash join for equi-joins,
  sort-merge join when the build side is too large for hashing (or when
  forced), and nested-loop for everything else.

Explicit ``JOIN ... ON`` clauses keep their syntactic order (LEFT joins are
order-sensitive) but still get equi-key extraction and strategy selection.

The planner never touches rows: it consumes cardinality and NDV estimates
(duck-typed, normally a :class:`repro.catalog.statistics.StatisticsManager`)
and produces :class:`ScanPlan` / :class:`JoinPlan` nodes that the executor
walks.  ``format_plan`` / ``plan_to_dict`` render the tree for EXPLAIN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.errors import PlanningError
from repro.planner.planner import combine_conjuncts, split_conjuncts
from repro.sql import ast

#: Valid values of ``EngineConfig.join_strategy``.
JOIN_STRATEGIES = ("auto", "hash", "merge", "nested_loop")

#: Strategy names as they appear in plan dumps.
STRATEGY_LABELS = {
    "hash": "HashJoin",
    "merge": "MergeJoin",
    "nested_loop": "NestedLoopJoin",
    "cross": "CrossJoin",
}


@dataclass
class ScanPlan:
    """Leaf: a base-table scan (with pushed-down conjuncts already applied)."""

    table: str
    qualifier: str
    estimated_rows: float = 0.0
    pushed: List[ast.Expression] = field(default_factory=list)


@dataclass
class JoinPlan:
    """Inner node: a physical join between two sub-plans."""

    strategy: str  # "hash" | "merge" | "nested_loop" | "cross"
    join_type: str  # "INNER" | "LEFT" | "CROSS"
    left: "PlanNode"
    right: "PlanNode"
    left_keys: List[ast.ColumnRef] = field(default_factory=list)
    right_keys: List[ast.ColumnRef] = field(default_factory=list)
    #: Condition evaluated at the join on top of the key equalities (the
    #: non-equi part of an ON clause, or the full condition for nested loop).
    condition: Optional[ast.Expression] = None
    estimated_rows: float = 0.0


PlanNode = Union[ScanPlan, JoinPlan]


@dataclass
class JoinEdge:
    """One equi-join conjunct connecting two relations of the FROM list."""

    left_qualifier: str
    left_column: ast.ColumnRef
    right_qualifier: str
    right_column: ast.ColumnRef
    conjunct: ast.Expression

    def connects(self, inside: Set[str], outside: str) -> bool:
        return ((self.left_qualifier in inside and self.right_qualifier == outside)
                or (self.right_qualifier in inside and self.left_qualifier == outside))

    def oriented(self, inside: Set[str]) -> Tuple[ast.ColumnRef, ast.ColumnRef]:
        """(inside-side key, outside-side key) for the current join frontier."""
        if self.left_qualifier in inside:
            return self.left_column, self.right_column
        return self.right_column, self.left_column


#: Estimates a planner needs: ``rows(qualifier)`` and ``ndv(qualifier, column)``.
RowEstimator = Callable[[str], float]
NdvEstimator = Callable[[str, str], float]
#: Maps (qualifier, column) to a coarse type category ("num", "text", "time"),
#: or ``None`` when unknown.  Hash/merge joins only apply when both key
#: columns share a category, because the engine's three-valued comparison
#: falls back to string forms (non-transitive) across categories.
TypeCategory = Callable[[str, str], Optional[str]]


def resolve_column(ref: ast.ColumnRef,
                   resolvable: Dict[str, Set[str]]) -> Optional[str]:
    """The unique qualifier ``ref`` resolves against, or ``None``."""
    if ref.table is not None:
        qualifier = ref.table.lower()
        columns = resolvable.get(qualifier)
        if columns is not None and ref.name.lower() in columns:
            return qualifier
        return None
    homes = [qualifier for qualifier, columns in resolvable.items()
             if ref.name.lower() in columns]
    return homes[0] if len(homes) == 1 else None


def extract_equi_edges(conjuncts: Sequence[ast.Expression],
                       resolvable: Dict[str, Set[str]],
                       eligible: Set[str],
                       type_category: Optional[TypeCategory] = None,
                       ) -> Tuple[List[JoinEdge], List[ast.Expression]]:
    """Partition conjuncts into equi-join edges and everything else.

    An edge requires both sides to be plain column references resolving to
    two *different* qualifiers within ``eligible``, with compatible type
    categories (see :data:`TypeCategory`).
    """
    edges: List[JoinEdge] = []
    rest: List[ast.Expression] = []
    for conjunct in conjuncts:
        edge = _as_edge(conjunct, resolvable, eligible, type_category)
        if edge is not None:
            edges.append(edge)
        else:
            rest.append(conjunct)
    return edges, rest


def _as_edge(conjunct: ast.Expression, resolvable: Dict[str, Set[str]],
             eligible: Set[str],
             type_category: Optional[TypeCategory]) -> Optional[JoinEdge]:
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if not isinstance(left, ast.ColumnRef) or not isinstance(right, ast.ColumnRef):
        return None
    left_home = resolve_column(left, resolvable)
    right_home = resolve_column(right, resolvable)
    if left_home is None or right_home is None or left_home == right_home:
        return None
    if left_home not in eligible or right_home not in eligible:
        return None
    if type_category is not None:
        left_category = type_category(left_home, left.name)
        right_category = type_category(right_home, right.name)
        if left_category is None or right_category is None \
                or left_category != right_category:
            return None
    return JoinEdge(left_home, left, right_home, right, conjunct)


# ---------------------------------------------------------------------------
# Strategy selection
# ---------------------------------------------------------------------------
def choose_strategy(left_rows: float, right_rows: float, forced: str,
                    hash_max_build_rows: float) -> str:
    """Pick the physical strategy for an equi-join edge."""
    if forced == "hash":
        return "hash"
    if forced == "merge":
        return "merge"
    build = min(left_rows, right_rows)
    return "merge" if build > hash_max_build_rows else "hash"


def _edge_cardinality(left_rows: float, right_rows: float,
                      key_ndvs: Sequence[float]) -> float:
    """Classic equi-join estimate: |L| * |R| / prod(max(NDV_l, NDV_r))."""
    result = left_rows * right_rows
    for ndv in key_ndvs:
        result /= max(1.0, ndv)
    return max(1.0, result)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------
def plan_select_joins(from_refs: Sequence[ast.TableRef],
                      explicit_joins: Sequence[ast.Join],
                      residual: Sequence[ast.Expression],
                      resolvable: Dict[str, Set[str]],
                      pushed: Dict[str, List[ast.Expression]],
                      *,
                      row_estimate: RowEstimator,
                      ndv_estimate: NdvEstimator,
                      type_category: Optional[TypeCategory] = None,
                      strategy: str = "auto",
                      hash_max_build_rows: float = 4_000_000.0,
                      ) -> Tuple[PlanNode, List[ast.Expression]]:
    """Build a join plan for a SELECT; returns (root, remaining residual).

    ``residual`` are the WHERE conjuncts left over after pushdown; the equi
    conjuncts this planner consumes as join keys are removed from the list it
    returns.  ``pushed`` is only recorded on scan nodes for EXPLAIN output.
    """
    if strategy not in JOIN_STRATEGIES:
        raise PlanningError(
            f"unknown join strategy {strategy!r}; expected one of {JOIN_STRATEGIES}")

    def scan_node(ref: ast.TableRef) -> ScanPlan:
        qualifier = ref.effective_name.lower()
        return ScanPlan(table=ref.name, qualifier=qualifier,
                        estimated_rows=row_estimate(qualifier),
                        pushed=list(pushed.get(qualifier, [])))

    if strategy == "nested_loop":
        # Reproduce the naive pipeline exactly: cross products in FROM order,
        # explicit joins as nested loops, the whole residual evaluated on top.
        plan: PlanNode = scan_node(from_refs[0])
        for ref in from_refs[1:]:
            right = scan_node(ref)
            plan = JoinPlan("cross", "CROSS", plan, right,
                            estimated_rows=plan.estimated_rows * max(1.0, right.estimated_rows))
        for join in explicit_joins:
            plan = _nested_loop_node(plan, scan_node(join.table), join)
        return plan, list(residual)

    from_qualifiers = {ref.effective_name.lower() for ref in from_refs}
    edges, rest = extract_equi_edges(residual, resolvable, from_qualifiers,
                                     type_category)

    scans = {ref.effective_name.lower(): scan_node(ref) for ref in from_refs}
    order = [ref.effective_name.lower() for ref in from_refs]

    # Greedy ordering: start from the smallest relation, then repeatedly add
    # the connected relation with the smallest estimated join output
    # (falling back to the smallest remaining relation via a cross product).
    remaining = list(order)
    start = min(remaining, key=lambda q: (scans[q].estimated_rows, order.index(q)))
    remaining.remove(start)
    plan = scans[start]
    joined: Set[str] = {start}
    pending_edges = list(edges)

    while remaining:
        best: Optional[Tuple[float, int, str, List[JoinEdge]]] = None
        for qualifier in remaining:
            connecting = [e for e in pending_edges if e.connects(joined, qualifier)]
            if not connecting:
                continue
            ndvs = [_edge_ndv(e, joined, ndv_estimate) for e in connecting]
            estimate = _edge_cardinality(plan.estimated_rows,
                                         scans[qualifier].estimated_rows, ndvs)
            candidate = (estimate, order.index(qualifier), qualifier, connecting)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        if best is None:
            # No join edge reaches the remaining relations: cross product
            # with the smallest one.
            qualifier = min(remaining,
                            key=lambda q: (scans[q].estimated_rows, order.index(q)))
            right = scans[qualifier]
            plan = JoinPlan("cross", "CROSS", plan, right,
                            estimated_rows=plan.estimated_rows * max(1.0, right.estimated_rows))
            remaining.remove(qualifier)
            joined.add(qualifier)
            continue
        estimate, _, qualifier, connecting = best
        right = scans[qualifier]
        left_keys = []
        right_keys = []
        for edge in connecting:
            inside_key, outside_key = edge.oriented(joined)
            left_keys.append(inside_key)
            right_keys.append(outside_key)
            pending_edges.remove(edge)
        picked = choose_strategy(plan.estimated_rows, right.estimated_rows,
                                 strategy, hash_max_build_rows)
        left, right_node = plan, right
        if picked == "hash" and right.estimated_rows > plan.estimated_rows:
            # Hash join builds on the right input: put the smaller side there.
            left, right_node = right, plan
            left_keys, right_keys = right_keys, left_keys
        plan = JoinPlan(picked, "INNER", left, right_node,
                        left_keys=left_keys, right_keys=right_keys,
                        estimated_rows=estimate)
        remaining.remove(qualifier)
        joined.add(qualifier)

    # Unconsumed edges (both endpoints already joined through another path)
    # go back into the residual filter.
    rest = rest + [edge.conjunct for edge in pending_edges]

    for join in explicit_joins:
        right = scan_node(join.table)
        plan = _plan_explicit_join(plan, right, join, joined, resolvable,
                                   type_category, ndv_estimate,
                                   strategy, hash_max_build_rows)
        joined.add(right.qualifier)
    return plan, rest


def _edge_ndv(edge: JoinEdge, joined: Set[str],
              ndv_estimate: NdvEstimator) -> float:
    inside_key, outside_key = edge.oriented(joined)
    inside_q = edge.left_qualifier if edge.left_qualifier in joined else edge.right_qualifier
    outside_q = edge.right_qualifier if inside_q == edge.left_qualifier else edge.left_qualifier
    return max(ndv_estimate(inside_q, inside_key.name),
               ndv_estimate(outside_q, outside_key.name))


def _nested_loop_node(left: PlanNode, right: ScanPlan, join: ast.Join) -> JoinPlan:
    strategy = "cross" if join.join_type == "CROSS" else "nested_loop"
    estimate = left.estimated_rows * max(1.0, right.estimated_rows)
    if join.condition is not None:
        estimate = max(1.0, estimate * (1.0 / 3.0))
    if join.join_type == "LEFT":
        estimate = max(estimate, left.estimated_rows)
    return JoinPlan(strategy, join.join_type, left, right,
                    condition=join.condition, estimated_rows=estimate)


def _plan_explicit_join(plan: PlanNode, right: ScanPlan, join: ast.Join,
                        joined: Set[str], resolvable: Dict[str, Set[str]],
                        type_category: Optional[TypeCategory],
                        ndv_estimate: NdvEstimator,
                        strategy: str, hash_max_build_rows: float) -> JoinPlan:
    """Strategy selection for a JOIN ... ON clause (order is preserved)."""
    if join.join_type == "CROSS" or join.condition is None:
        return _nested_loop_node(plan, right, join)
    conjuncts = split_conjuncts(join.condition)
    eligible = joined | {right.qualifier}
    edges, rest = extract_equi_edges(conjuncts, resolvable, eligible,
                                     type_category)
    # Only edges between the existing plan and the new table are usable as
    # keys here; anything else stays in the join condition.
    usable = [e for e in edges if e.connects(joined, right.qualifier)]
    rest = rest + [e.conjunct for e in edges if e not in usable]
    if not usable:
        return _nested_loop_node(plan, right, join)
    left_keys = []
    right_keys = []
    ndvs = []
    for edge in usable:
        inside_key, outside_key = edge.oriented(joined)
        left_keys.append(inside_key)
        right_keys.append(outside_key)
        ndvs.append(_edge_ndv(edge, joined, ndv_estimate))
    picked = choose_strategy(plan.estimated_rows, right.estimated_rows,
                             strategy, hash_max_build_rows)
    estimate = _edge_cardinality(plan.estimated_rows, right.estimated_rows, ndvs)
    if join.join_type == "LEFT":
        estimate = max(estimate, plan.estimated_rows)
    return JoinPlan(picked, join.join_type, plan, right,
                    left_keys=left_keys, right_keys=right_keys,
                    condition=combine_conjuncts(rest),
                    estimated_rows=estimate)


# ---------------------------------------------------------------------------
# EXPLAIN rendering
# ---------------------------------------------------------------------------
def plan_to_dict(node: PlanNode) -> Dict[str, Any]:
    """Plan tree as a nested dict (stable surface for tests and tooling)."""
    if isinstance(node, ScanPlan):
        return {
            "node": "Scan",
            "table": node.table,
            "qualifier": node.qualifier,
            "estimated_rows": round(node.estimated_rows, 2),
            "pushed_conjuncts": len(node.pushed),
        }
    return {
        "node": STRATEGY_LABELS[node.strategy],
        "join_type": node.join_type,
        "keys": [f"{l.display()} = {r.display()}"
                 for l, r in zip(node.left_keys, node.right_keys)],
        "estimated_rows": round(node.estimated_rows, 2),
        "left": plan_to_dict(node.left),
        "right": plan_to_dict(node.right),
    }


def format_plan(node: PlanNode, indent: int = 0) -> str:
    """Human-readable plan dump (the EXPLAIN text)."""
    pad = "  " * indent
    if isinstance(node, ScanPlan):
        label = node.table if node.qualifier == node.table.lower() \
            else f"{node.table} AS {node.qualifier}"
        suffix = f" [pushed: {len(node.pushed)}]" if node.pushed else ""
        return (f"{pad}Scan {label} "
                f"(est. rows={node.estimated_rows:.0f}){suffix}")
    keys = ", ".join(f"{l.display()} = {r.display()}"
                     for l, r in zip(node.left_keys, node.right_keys))
    detail = f" on {keys}" if keys else ""
    if node.condition is not None:
        detail += " +condition"
    header = (f"{pad}{STRATEGY_LABELS[node.strategy]} [{node.join_type}]{detail} "
              f"(est. rows={node.estimated_rows:.0f})")
    return "\n".join([header,
                      format_plan(node.left, indent + 1),
                      format_plan(node.right, indent + 1)])


def plan_strategies(node: PlanNode) -> List[str]:
    """Flat list of the join strategies used, outermost first."""
    if isinstance(node, ScanPlan):
        return []
    return ([node.strategy]
            + plan_strategies(node.left)
            + plan_strategies(node.right))
