"""Join planning: plan trees, equi-join extraction, ordering, and strategies.

The engine used to execute every multi-table query as a chain of cross
products followed by a residual filter.  This module turns the FROM list and
WHERE clause into a proper plan tree instead:

* equi-join conjuncts (``a.x = b.y``) are lifted out of the residual WHERE
  and become join keys;
* the FROM-list relations are ordered greedily by estimated cardinality
  (smallest first, then whichever joinable relation minimises the estimated
  intermediate result);
* each join edge picks a physical strategy — an index-nested-loop join when a
  secondary index covers the join key on the lookup side, hash join for other
  equi-joins, sort-merge join when the build side is too large for hashing
  (or when forced), and nested-loop for everything else;
* scans pick an access path: a point ``index_lookup`` when a secondary index
  covers equality conjuncts pushed to that table, a sequential scan otherwise;
* residual WHERE conjuncts are pushed to the *lowest* plan node whose schema
  covers their column references (``JoinPlan.filters``), instead of one
  filter above the whole join tree.

Explicit ``JOIN ... ON`` clauses keep their syntactic order (LEFT joins are
order-sensitive) but still get equi-key extraction and strategy selection.

The planner never touches rows: it consumes cardinality and NDV estimates
(duck-typed, normally a :class:`repro.catalog.statistics.StatisticsManager`)
plus an index listing (normally ``IndexManager.indexes_for``) and produces
:class:`ScanPlan` / :class:`JoinPlan` nodes that the executor walks.
``format_plan`` / ``plan_to_dict`` render the tree — including pushed
predicates and chosen access paths — for EXPLAIN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.errors import PlanningError
from repro.planner.planner import (
    combine_conjuncts,
    equality_lookups,
    lookup_value,
    referenced_columns,
    split_conjuncts,
)
from repro.sql import ast
from repro.types.values import compare_values

#: Valid values of ``EngineConfig.join_strategy``.
JOIN_STRATEGIES = ("auto", "hash", "merge", "nested_loop", "index_nested_loop")

#: Strategy names as they appear in plan dumps.
STRATEGY_LABELS = {
    "hash": "HashJoin",
    "merge": "MergeJoin",
    "nested_loop": "NestedLoopJoin",
    "index_nested_loop": "IndexNestedLoopJoin",
    "cross": "CrossJoin",
}


@dataclass
class ScanPlan:
    """Leaf: a base-table access (with pushed-down conjuncts already applied).

    ``access_path`` is ``"seq"`` for a full scan, ``"index_lookup"`` when a
    secondary index covers equality conjuncts pushed to this table, or
    ``"index_range"`` when a B-tree serves an inequality/BETWEEN range (or a
    full key-order traversal chosen to make an ORDER BY free).  For lookups,
    ``index_name`` / ``index_columns`` / ``index_key`` describe the probe;
    for ranges, ``range_low`` / ``range_high`` (with their inclusivity flags)
    describe the bounds — ``None`` meaning unbounded.  The full pushed
    conjunct list is always re-applied on top, so consuming a conjunct into
    the access path never loses a filter.  ``ordered`` records that the scan
    delivers rows in ascending index-key order *and* that no qualifying row
    is missing from the index (the NULL/NaN completeness proof), which is
    what entitles the engine to elide a matching ORDER BY sort.
    """

    table: str
    qualifier: str
    estimated_rows: float = 0.0
    pushed: List[ast.Expression] = field(default_factory=list)
    access_path: str = "seq"
    index_name: Optional[str] = None
    index_columns: Tuple[str, ...] = ()
    index_key: Any = None
    range_low: Any = None
    range_high: Any = None
    range_include_low: bool = True
    range_include_high: bool = True
    ordered: bool = False
    #: Direction of an ordered delivery: descending index-key order (reverse
    #: B-tree traversal) when true.  Only meaningful with ``ordered``.
    descending: bool = False


@dataclass
class ForeignScanPlan(ScanPlan):
    """Leaf: a scan of an attached foreign table via its provider.

    Subclasses :class:`ScanPlan` so every leaf-shape check, the residual
    attach point, and plan binding treat it like any other scan;
    ``access_path`` is the fixed string ``"foreign"``.  ``projected`` is the
    column subset the query needs (empty tuple = all columns) and is pushed
    to the provider together with ``pushed``; ``pushdown`` records whether
    the provider is expected to apply the filters at the source (EXPLAIN
    surface — the executor re-checks the full list either way).
    """

    provider: str = ""
    projected: Tuple[str, ...] = ()
    pushdown: bool = True


@dataclass
class JoinPlan:
    """Inner node: a physical join between two sub-plans."""

    strategy: str  # "hash" | "merge" | "nested_loop" | "index_nested_loop" | "cross"
    join_type: str  # "INNER" | "LEFT" | "CROSS"
    left: "PlanNode"
    right: "PlanNode"
    left_keys: List[ast.ColumnRef] = field(default_factory=list)
    right_keys: List[ast.ColumnRef] = field(default_factory=list)
    #: Condition evaluated at the join on top of the key equalities (the
    #: non-equi part of an ON clause, or the full condition for nested loop).
    condition: Optional[ast.Expression] = None
    #: Residual WHERE conjuncts pushed down to this node: evaluated on the
    #: join *output* (after any LEFT padding), the lowest point whose schema
    #: covers their column references.
    filters: List[ast.Expression] = field(default_factory=list)
    #: Secondary index probed per left row (index-nested-loop joins only).
    index_name: Optional[str] = None
    estimated_rows: float = 0.0
    #: Cost-model spill expectation (hash joins under a memory budget): the
    #: Grace-partition fan-out the executor should use when the estimated
    #: build side exceeds ``EngineConfig.memory_budget_rows``; ``None`` when
    #: the build is expected to fit in memory.  Set by
    #: :func:`annotate_spill_expectations`, rendered by EXPLAIN.
    spill_partitions: Optional[int] = None
    #: Worker fan-out the executor will apply to this node's spill
    #: partitions (``EngineConfig.parallel_workers`` when >= 2 and the node
    #: is expected to spill); ``None`` means serial partition processing.
    #: Set by :func:`annotate_spill_expectations`, rendered by EXPLAIN.
    parallel_workers: Optional[int] = None


PlanNode = Union[ScanPlan, JoinPlan]


@dataclass
class JoinEdge:
    """One equi-join conjunct connecting two relations of the FROM list."""

    left_qualifier: str
    left_column: ast.ColumnRef
    right_qualifier: str
    right_column: ast.ColumnRef
    conjunct: ast.Expression

    def connects(self, inside: Set[str], outside: str) -> bool:
        return ((self.left_qualifier in inside and self.right_qualifier == outside)
                or (self.right_qualifier in inside and self.left_qualifier == outside))

    def oriented(self, inside: Set[str]) -> Tuple[ast.ColumnRef, ast.ColumnRef]:
        """(inside-side key, outside-side key) for the current join frontier."""
        if self.left_qualifier in inside:
            return self.left_column, self.right_column
        return self.right_column, self.left_column


#: Estimates a planner needs: ``rows(qualifier)`` and ``ndv(qualifier, column)``.
RowEstimator = Callable[[str], float]
NdvEstimator = Callable[[str, str], float]
#: Maps (qualifier, column) to a coarse type category ("num", "text", "time"),
#: or ``None`` when unknown.  Hash/merge/index joins only apply when both key
#: columns share a category, because the engine's three-valued comparison
#: falls back to string forms (non-transitive) across categories.
TypeCategory = Callable[[str, str], Optional[str]]
#: Lists the secondary indexes of a base table.  Each descriptor exposes
#: ``name``, ``columns`` (tuple of column names) and ``method`` — duck-typed,
#: normally :class:`repro.index.manager.SecondaryIndex`.
ListIndexes = Callable[[str], Sequence[Any]]

#: Access-path tie-break: the paper's workhorse is the B-tree, so it wins
#: over the hash index when both cover the same columns.
_METHOD_PREFERENCE = {"btree": 0, "hash": 1}


def resolve_column(ref: ast.ColumnRef,
                   resolvable: Dict[str, Set[str]]) -> Optional[str]:
    """The unique qualifier ``ref`` resolves against, or ``None``."""
    if ref.table is not None:
        qualifier = ref.table.lower()
        columns = resolvable.get(qualifier)
        if columns is not None and ref.name.lower() in columns:
            return qualifier
        return None
    homes = [qualifier for qualifier, columns in resolvable.items()
             if ref.name.lower() in columns]
    return homes[0] if len(homes) == 1 else None


def extract_equi_edges(conjuncts: Sequence[ast.Expression],
                       resolvable: Dict[str, Set[str]],
                       eligible: Set[str],
                       type_category: Optional[TypeCategory] = None,
                       ) -> Tuple[List[JoinEdge], List[ast.Expression]]:
    """Partition conjuncts into equi-join edges and everything else.

    An edge requires both sides to be plain column references resolving to
    two *different* qualifiers within ``eligible``, with compatible type
    categories (see :data:`TypeCategory`).
    """
    edges: List[JoinEdge] = []
    rest: List[ast.Expression] = []
    for conjunct in conjuncts:
        edge = _as_edge(conjunct, resolvable, eligible, type_category)
        if edge is not None:
            edges.append(edge)
        else:
            rest.append(conjunct)
    return edges, rest


def _as_edge(conjunct: ast.Expression, resolvable: Dict[str, Set[str]],
             eligible: Set[str],
             type_category: Optional[TypeCategory]) -> Optional[JoinEdge]:
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if not isinstance(left, ast.ColumnRef) or not isinstance(right, ast.ColumnRef):
        return None
    left_home = resolve_column(left, resolvable)
    right_home = resolve_column(right, resolvable)
    if left_home is None or right_home is None or left_home == right_home:
        return None
    if left_home not in eligible or right_home not in eligible:
        return None
    if type_category is not None:
        left_category = type_category(left_home, left.name)
        right_category = type_category(right_home, right.name)
        if left_category is None or right_category is None \
                or left_category != right_category:
            return None
    return JoinEdge(left_home, left, right_home, right, conjunct)


# ---------------------------------------------------------------------------
# Access-path selection
# ---------------------------------------------------------------------------
_LOOKUP_MISSING = object()


def _literal_category(value: Any) -> Optional[str]:
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "text"
    return None


def _index_preference(index: Any) -> Tuple[int, int, str]:
    return (_METHOD_PREFERENCE.get(getattr(index, "method", ""), 9),
            len(index.columns), index.name)


def choose_index_lookup(table: str, qualifier: str,
                        pushed_conjuncts: Sequence[ast.Expression],
                        list_indexes: Optional[ListIndexes],
                        type_category: Optional[TypeCategory] = None,
                        ) -> Optional[Tuple[Any, Tuple[Any, ...]]]:
    """Pick a secondary index whose columns are all equality-bound.

    Returns ``(index descriptor, key values in index-column order)`` when the
    conjuncts pushed down to this table pin every column of some index to a
    literal of a compatible type category, or ``None``.
    """
    if list_indexes is None:
        return None
    lookups = equality_lookups(pushed_conjuncts)
    if not lookups:
        return None
    candidates: List[Tuple[Any, Tuple[Any, ...]]] = []
    for index in list_indexes(table):
        key_values: List[Any] = []
        for column in index.columns:
            value = lookup_value(lookups, column, qualifier, _LOOKUP_MISSING)
            if value is _LOOKUP_MISSING or value is None:
                break
            if isinstance(value, ast.Parameter):
                # The key value arrives at bind time.  The plan-time category
                # check moves to execution (the engine falls back to a
                # sequential scan when the bound value's category does not
                # match the column's); here it is enough that the column is
                # of an indexable category at all.
                if type_category is not None \
                        and type_category(qualifier, column) not in ("num", "text"):
                    break
                key_values.append(value)
                continue
            category = _literal_category(value)
            if category is None:
                break
            if type_category is not None:
                column_category = type_category(qualifier, column)
                if column_category is None or column_category != category:
                    break
            key_values.append(value)
        else:
            candidates.append((index, tuple(key_values)))
    if not candidates:
        return None
    candidates.sort(key=lambda pair: _index_preference(pair[0]))
    return candidates[0]


def covering_join_index(table: str, right_keys: Sequence[ast.ColumnRef],
                        list_indexes: Optional[ListIndexes]) -> Optional[Any]:
    """An index of ``table`` whose column set equals the join-key columns."""
    if list_indexes is None or not right_keys:
        return None
    wanted = [ref.name.lower() for ref in right_keys]
    if len(set(wanted)) != len(wanted):
        # The same right column appears in several equi-conjuncts: the probe
        # key arity would exceed the index key arity, so no index covers it.
        return None
    matches = [
        index for index in list_indexes(table)
        if len(index.columns) == len(wanted)
        and {column.lower() for column in index.columns} == set(wanted)
    ]
    if not matches:
        return None
    matches.sort(key=_index_preference)
    return matches[0]


@dataclass
class RangeBounds:
    """The tightest [low, high] window implied by pushed range conjuncts."""

    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    @property
    def bounded(self) -> bool:
        return self.low is not None or self.high is not None

    def tighten_low(self, value: Any, inclusive: bool) -> None:
        if self.low is None:
            self.low, self.include_low = value, inclusive
            return
        if isinstance(value, ast.Parameter) \
                or isinstance(self.low, ast.Parameter):
            # A placeholder bound has no plan-time value to compare against;
            # keep the first bound and leave the other conjunct to the
            # residual re-check.
            return
        cmp = compare_values(value, self.low)
        if cmp is None:
            return
        if cmp > 0:
            self.low, self.include_low = value, inclusive
        elif cmp == 0:
            self.include_low = self.include_low and inclusive

    def tighten_high(self, value: Any, inclusive: bool) -> None:
        if self.high is None:
            self.high, self.include_high = value, inclusive
            return
        if isinstance(value, ast.Parameter) \
                or isinstance(self.high, ast.Parameter):
            return
        cmp = compare_values(value, self.high)
        if cmp is None:
            return
        if cmp < 0:
            self.high, self.include_high = value, inclusive
        elif cmp == 0:
            self.include_high = self.include_high and inclusive


def extract_range_bounds(conjuncts: Sequence[ast.Expression], column: str,
                         qualifier: str,
                         literal_ok: Callable[[Any], bool]) -> RangeBounds:
    """Fold the ``column </<=/>/>=/BETWEEN literal`` conjuncts into bounds.

    Only conjuncts whose literal passes ``literal_ok`` (the type-category
    guard) participate; everything else is simply left for the residual
    re-check, which keeps the extraction conservative-but-correct.

    A bound may also be an :class:`ast.Parameter` placeholder: the bound
    value then arrives at bind time (:func:`repro.executor.prepared.bind_plan`
    substitutes it into ``range_low``/``range_high``), and the type-category
    guard moves to execution — the range operator falls back to a filtered
    sequential scan when the bound value cannot be compared against the
    index keys.
    """

    def bound_of(expr: ast.Expression) -> Tuple[Any, bool]:
        """(bound value or Parameter, usable) for one comparison operand."""
        if isinstance(expr, ast.Literal):
            return expr.value, literal_ok(expr.value)
        if isinstance(expr, ast.Parameter):
            return expr, True
        return None, False

    bounds = RangeBounds()
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
    for conjunct in conjuncts:
        if isinstance(conjunct, ast.Between) and not conjunct.negated:
            if isinstance(conjunct.operand, ast.ColumnRef) \
                    and _ref_matches(conjunct.operand, column, qualifier):
                low, low_ok = bound_of(conjunct.low)
                high, high_ok = bound_of(conjunct.high)
                if low_ok and high_ok:
                    bounds.tighten_low(low, True)
                    bounds.tighten_high(high, True)
            continue
        if not isinstance(conjunct, ast.BinaryOp) \
                or conjunct.op not in ("<", "<=", ">", ">="):
            continue
        op = conjunct.op
        if isinstance(conjunct.left, ast.ColumnRef):
            ref, (literal, usable) = conjunct.left, bound_of(conjunct.right)
        elif isinstance(conjunct.right, ast.ColumnRef):
            ref, (literal, usable) = conjunct.right, bound_of(conjunct.left)
            op = flipped[op]
        else:
            continue
        if not usable or not _ref_matches(ref, column, qualifier):
            continue
        if op == ">":
            bounds.tighten_low(literal, False)
        elif op == ">=":
            bounds.tighten_low(literal, True)
        elif op == "<":
            bounds.tighten_high(literal, False)
        else:
            bounds.tighten_high(literal, True)
    return bounds


def _ref_matches(ref: ast.ColumnRef, column: str, qualifier: str) -> bool:
    if ref.name.lower() != column.lower():
        return False
    return ref.table is None or ref.table.lower() == qualifier.lower()


#: A bounded range scan must look at least this much more selective than the
#: sequential scan before it pays off (point fetches cost more per row than
#: the batched sequential reader).
RANGE_SCAN_MAX_FRACTION = 0.45

#: Below this many base rows a key-order scan is cheap in absolute terms, so
#: eliding the sort is worth the per-row point fetches even without a
#: selective range or a LIMIT.
ORDER_SCAN_SMALL_TABLE_ROWS = 2_000.0


def choose_index_range(node: ScanPlan,
                       list_indexes: Optional[ListIndexes],
                       type_category: Optional[TypeCategory],
                       order_column: Optional[str] = None,
                       base_rows: Optional[float] = None,
                       limit_hint: Optional[int] = None,
                       order_descending: bool = False) -> bool:
    """Pick a B-tree range scan (and/or key-order scan) for this leaf.

    Considers single-column B-tree indexes of the scanned table.  A
    candidate is taken when the pushed conjuncts bound its key column and the
    estimated selectivity clears :data:`RANGE_SCAN_MAX_FRACTION`, or when a
    key-order traversal makes a requested ``ORDER BY`` free *and* the
    per-row point fetches are worth it: the range is selective, the table is
    small (:data:`ORDER_SCAN_SMALL_TABLE_ROWS`), or the query carries a
    LIMIT (top-K: the lazy key-order stream stops after ~LIMIT fetches,
    where a sort would pay for every row).  An unselective ordered scan over
    a big, unlimited result would trade a fast batched scan + one sort for
    per-row heap fetches — measurably slower — so it is refused.

    Correctness gates (rows absent from the index must be provably
    non-qualifying): NULL keys fail every range predicate, so they only
    matter for the unbounded order scan, which requires ``null_keys == 0``;
    NaN keys order *above* every number, so they satisfy lower-bound-only
    ranges — those require ``nan_keys == 0``, while any upper bound excludes
    NaN by itself.  Returns True when the node was rewritten.
    """
    if list_indexes is None:
        return False
    candidates: List[Tuple[Tuple[int, int, int, str], Any, RangeBounds, bool]] = []
    for index in list_indexes(node.table):
        if getattr(index, "method", "") != "btree" or len(index.columns) != 1:
            continue
        column = index.columns[0]
        category = (type_category(node.qualifier, column)
                    if type_category is not None else None)
        if category not in ("num", "text"):
            continue

        def literal_ok(value: Any, _category: str = category) -> bool:
            return _literal_category(value) == _category

        bounds = extract_range_bounds(node.pushed, column, node.qualifier,
                                      literal_ok)
        null_keys = getattr(index, "null_keys", 0)
        nan_keys = getattr(index, "nan_keys", 0)
        if bounds.bounded and nan_keys > 0 and bounds.high is None:
            continue  # NaN rows would be wrongly excluded
        order_match = (order_column is not None
                       and column.lower() == order_column.lower())
        complete = bounds.bounded or (null_keys == 0 and nan_keys == 0)
        selective = bounds.bounded and (
            base_rows is None
            or node.estimated_rows <= RANGE_SCAN_MAX_FRACTION * base_rows)
        cheap = (base_rows is not None
                 and base_rows <= ORDER_SCAN_SMALL_TABLE_ROWS)
        ordered = (order_match and complete
                   and (selective or cheap or limit_hint is not None))
        if not ordered and not selective:
            continue
        rank = (0 if ordered else 1, 0 if bounds.bounded else 1,
                len(index.columns), index.name)
        candidates.append((rank, index, bounds, ordered))
    if not candidates:
        return False
    candidates.sort(key=lambda entry: entry[0])
    _, index, bounds, ordered = candidates[0]
    node.access_path = "index_range"
    node.index_name = index.name
    node.index_columns = tuple(index.columns)
    node.range_low = bounds.low
    node.range_high = bounds.high
    node.range_include_low = bounds.include_low
    node.range_include_high = bounds.include_high
    node.ordered = ordered
    # A descending ORDER BY is served by the same index traversed in
    # reverse; the completeness gates above are direction-independent.
    node.descending = ordered and order_descending
    return True


def _apply_index_access_path(node: ScanPlan,
                             list_indexes: Optional[ListIndexes],
                             type_category: Optional[TypeCategory],
                             order_column: Optional[str] = None,
                             base_rows: Optional[float] = None,
                             limit_hint: Optional[int] = None,
                             order_descending: bool = False) -> None:
    choice = choose_index_lookup(node.table, node.qualifier, node.pushed,
                                 list_indexes, type_category)
    if choice is not None:
        index, key_values = choice
        node.access_path = "index_lookup"
        node.index_name = index.name
        node.index_columns = tuple(index.columns)
        node.index_key = key_values[0] if len(key_values) == 1 else key_values
        return
    choose_index_range(node, list_indexes, type_category, order_column,
                       base_rows, limit_hint, order_descending)


def _order_keys_for_index(index: Any, left_keys: List[ast.ColumnRef],
                          right_keys: List[ast.ColumnRef],
                          ) -> Tuple[List[ast.ColumnRef], List[ast.ColumnRef]]:
    """Permute (left, right) key pairs into the index's column order."""
    position = {column.lower(): i for i, column in enumerate(index.columns)}
    pairs = sorted(zip(left_keys, right_keys),
                   key=lambda pair: position[pair[1].name.lower()])
    return [pair[0] for pair in pairs], [pair[1] for pair in pairs]


# ---------------------------------------------------------------------------
# Strategy selection
# ---------------------------------------------------------------------------
def choose_strategy(left_rows: float, right_rows: float, forced: str,
                    hash_max_build_rows: float,
                    index_available: bool = False) -> str:
    """Pick the physical strategy for an equi-join edge.

    An index-nested-loop join is chosen when the lookup (right) side has a
    covering index and either the caller forces it or, in auto mode, the
    streamed probe side is estimated no larger than the lookup side (so per
    row lookups beat building a hash table over the bigger input).
    """
    if forced == "hash":
        return "hash"
    if forced == "merge":
        return "merge"
    if index_available:
        if forced == "index_nested_loop":
            return "index_nested_loop"
        if left_rows <= right_rows:
            return "index_nested_loop"
    build = min(left_rows, right_rows)
    return "merge" if build > hash_max_build_rows else "hash"


def _edge_cardinality(left_rows: float, right_rows: float,
                      key_ndvs: Sequence[float]) -> float:
    """Classic equi-join estimate: |L| * |R| / prod(max(NDV_l, NDV_r))."""
    result = left_rows * right_rows
    for ndv in key_ndvs:
        result /= max(1.0, ndv)
    return max(1.0, result)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------
def plan_select_joins(from_refs: Sequence[ast.TableRef],
                      explicit_joins: Sequence[ast.Join],
                      residual: Sequence[ast.Expression],
                      resolvable: Dict[str, Set[str]],
                      pushed: Dict[str, List[ast.Expression]],
                      *,
                      row_estimate: RowEstimator,
                      ndv_estimate: NdvEstimator,
                      type_category: Optional[TypeCategory] = None,
                      list_indexes: Optional[ListIndexes] = None,
                      strategy: str = "auto",
                      hash_max_build_rows: float = 4_000_000.0,
                      order_hint: Optional[Tuple[str, ...]] = None,
                      base_row_estimate: Optional[RowEstimator] = None,
                      limit_hint: Optional[int] = None,
                      memory_budget_rows: Optional[int] = None,
                      foreign_info: Optional[Callable[[str], Optional[Dict[str, Any]]]] = None,
                      ) -> Tuple[PlanNode, List[ast.Expression]]:
    """Build a join plan for a SELECT; returns (root, remaining residual).

    ``residual`` are the WHERE conjuncts left over after pushdown; conjuncts
    this planner consumes — as join keys or as per-node ``filters`` pushed to
    the lowest covering join — are removed from the list it returns.
    ``pushed`` is recorded on scan nodes (the engine applies it there) and
    drives index access-path selection via ``list_indexes``.  ``order_hint``
    is the interesting order the engine would like delivered for free — the
    lower-cased ``(qualifier, column, direction)`` of a single plain-column
    ORDER BY key, direction ``"asc"`` or ``"desc"`` — and biases access-path
    selection toward ordered range scans; ``base_row_estimate`` supplies
    unfiltered table cardinalities for the range-vs-sequential selectivity
    gate, and ``limit_hint`` (the query's LIMIT, when present) marks top-K
    queries where key-order scans win regardless of selectivity.

    ``foreign_info``, when given, maps a *table name* to a descriptor dict
    (``provider``, ``projected``, ``pushdown``) for attached foreign tables
    (``None`` for base tables); matching leaves become
    :class:`ForeignScanPlan` nodes and skip index access-path selection.
    """
    if strategy not in JOIN_STRATEGIES:
        raise PlanningError(
            f"unknown join strategy {strategy!r}; expected one of {JOIN_STRATEGIES}")

    def scan_node(ref: ast.TableRef) -> ScanPlan:
        qualifier = ref.effective_name.lower()
        info = foreign_info(ref.name) if foreign_info is not None else None
        if info is not None:
            return ForeignScanPlan(
                table=ref.name, qualifier=qualifier,
                estimated_rows=row_estimate(qualifier),
                pushed=list(pushed.get(qualifier, [])),
                access_path="foreign",
                provider=info.get("provider", ""),
                projected=tuple(info.get("projected", ())),
                pushdown=bool(info.get("pushdown", True)))
        node = ScanPlan(table=ref.name, qualifier=qualifier,
                        estimated_rows=row_estimate(qualifier),
                        pushed=list(pushed.get(qualifier, [])))
        if strategy != "nested_loop":
            order_column = (order_hint[1]
                            if order_hint is not None and order_hint[0] == qualifier
                            else None)
            order_descending = (order_hint is not None and len(order_hint) > 2
                                and order_hint[2] == "desc")
            base = (base_row_estimate(qualifier)
                    if base_row_estimate is not None else None)
            _apply_index_access_path(node, list_indexes, type_category,
                                     order_column, base, limit_hint,
                                     order_descending)
        return node

    if strategy == "nested_loop":
        # Reproduce the naive pipeline exactly: cross products in FROM order,
        # explicit joins as nested loops, the whole residual evaluated on top,
        # sequential scans only.
        plan: PlanNode = scan_node(from_refs[0])
        for ref in from_refs[1:]:
            right = scan_node(ref)
            plan = JoinPlan("cross", "CROSS", plan, right,
                            estimated_rows=plan.estimated_rows * max(1.0, right.estimated_rows))
        for join in explicit_joins:
            plan = _nested_loop_node(plan, scan_node(join.table), join)
        return plan, list(residual)

    from_qualifiers = {ref.effective_name.lower() for ref in from_refs}
    edges, rest = extract_equi_edges(residual, resolvable, from_qualifiers,
                                     type_category)

    scans = {ref.effective_name.lower(): scan_node(ref) for ref in from_refs}
    order = [ref.effective_name.lower() for ref in from_refs]

    # Greedy ordering: start from the smallest relation, then repeatedly add
    # the connected relation with the smallest estimated join output
    # (falling back to the smallest remaining relation via a cross product).
    remaining = list(order)
    start = min(remaining, key=lambda q: (scans[q].estimated_rows, order.index(q)))
    remaining.remove(start)
    plan = scans[start]
    joined: Set[str] = {start}
    pending_edges = list(edges)

    while remaining:
        best: Optional[Tuple[float, int, str, List[JoinEdge]]] = None
        for qualifier in remaining:
            connecting = [e for e in pending_edges if e.connects(joined, qualifier)]
            if not connecting:
                continue
            ndvs = [_edge_ndv(e, joined, ndv_estimate) for e in connecting]
            estimate = _edge_cardinality(plan.estimated_rows,
                                         scans[qualifier].estimated_rows, ndvs)
            candidate = (estimate, order.index(qualifier), qualifier, connecting)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        if best is None:
            # No join edge reaches the remaining relations: cross product
            # with the smallest one.
            qualifier = min(remaining,
                            key=lambda q: (scans[q].estimated_rows, order.index(q)))
            right = scans[qualifier]
            plan = JoinPlan("cross", "CROSS", plan, right,
                            estimated_rows=plan.estimated_rows * max(1.0, right.estimated_rows))
            remaining.remove(qualifier)
            joined.add(qualifier)
            continue
        estimate, _, qualifier, connecting = best
        right = scans[qualifier]
        left_keys = []
        right_keys = []
        for edge in connecting:
            inside_key, outside_key = edge.oriented(joined)
            left_keys.append(inside_key)
            right_keys.append(outside_key)
            pending_edges.remove(edge)
        join_index = covering_join_index(right.table, right_keys, list_indexes)
        picked = choose_strategy(plan.estimated_rows, right.estimated_rows,
                                 strategy, hash_max_build_rows,
                                 index_available=join_index is not None)
        if picked == "index_nested_loop":
            left_keys, right_keys = _order_keys_for_index(join_index, left_keys,
                                                          right_keys)
            plan = JoinPlan(picked, "INNER", plan, right,
                            left_keys=left_keys, right_keys=right_keys,
                            index_name=join_index.name,
                            estimated_rows=estimate)
        else:
            left, right_node = plan, right
            if picked == "hash" and right.estimated_rows > plan.estimated_rows:
                # Hash join builds on the right input: put the smaller side there.
                left, right_node = right, plan
                left_keys, right_keys = right_keys, left_keys
            plan = JoinPlan(picked, "INNER", left, right_node,
                            left_keys=left_keys, right_keys=right_keys,
                            estimated_rows=estimate)
        remaining.remove(qualifier)
        joined.add(qualifier)

    # Unconsumed edges (both endpoints already joined through another path)
    # go back into the residual pool; the tree pushdown below re-places them.
    rest = rest + [edge.conjunct for edge in pending_edges]

    for join in explicit_joins:
        right = scan_node(join.table)
        plan = _plan_explicit_join(plan, right, join, joined, resolvable,
                                   type_category, ndv_estimate, list_indexes,
                                   strategy, hash_max_build_rows,
                                   memory_budget_rows)
        joined.add(right.qualifier)

    # Residual pushdown into the tree: each remaining conjunct is attached to
    # the lowest join node whose schema covers it; only conjuncts that cannot
    # be placed (constant folding cases, unresolvable references) stay in the
    # top-level residual.
    rest = push_residual_into_plan(plan, rest, resolvable)
    return plan, rest


def _edge_ndv(edge: JoinEdge, joined: Set[str],
              ndv_estimate: NdvEstimator) -> float:
    inside_key, outside_key = edge.oriented(joined)
    inside_q = edge.left_qualifier if edge.left_qualifier in joined else edge.right_qualifier
    outside_q = edge.right_qualifier if inside_q == edge.left_qualifier else edge.left_qualifier
    return max(ndv_estimate(inside_q, inside_key.name),
               ndv_estimate(outside_q, outside_key.name))


def _nested_loop_node(left: PlanNode, right: ScanPlan, join: ast.Join) -> JoinPlan:
    strategy = "cross" if join.join_type == "CROSS" else "nested_loop"
    estimate = left.estimated_rows * max(1.0, right.estimated_rows)
    if join.condition is not None:
        estimate = max(1.0, estimate * (1.0 / 3.0))
    if join.join_type == "LEFT":
        estimate = max(estimate, left.estimated_rows)
    return JoinPlan(strategy, join.join_type, left, right,
                    condition=join.condition, estimated_rows=estimate)


def _plan_explicit_join(plan: PlanNode, right: ScanPlan, join: ast.Join,
                        joined: Set[str], resolvable: Dict[str, Set[str]],
                        type_category: Optional[TypeCategory],
                        ndv_estimate: NdvEstimator,
                        list_indexes: Optional[ListIndexes],
                        strategy: str, hash_max_build_rows: float,
                        memory_budget_rows: Optional[int] = None) -> JoinPlan:
    """Strategy selection for a JOIN ... ON clause (order is preserved)."""
    if join.join_type == "CROSS" or join.condition is None:
        return _nested_loop_node(plan, right, join)
    conjuncts = split_conjuncts(join.condition)
    eligible = joined | {right.qualifier}
    edges, rest = extract_equi_edges(conjuncts, resolvable, eligible,
                                     type_category)
    # Only edges between the existing plan and the new table are usable as
    # keys here; anything else stays in the join condition.
    usable = [e for e in edges if e.connects(joined, right.qualifier)]
    rest = rest + [e.conjunct for e in edges if e not in usable]
    if not usable:
        return _nested_loop_node(plan, right, join)
    left_keys = []
    right_keys = []
    ndvs = []
    for edge in usable:
        inside_key, outside_key = edge.oriented(joined)
        left_keys.append(inside_key)
        right_keys.append(outside_key)
        ndvs.append(_edge_ndv(edge, joined, ndv_estimate))
    join_index = covering_join_index(right.table, right_keys, list_indexes)
    picked = choose_strategy(plan.estimated_rows, right.estimated_rows,
                             strategy, hash_max_build_rows,
                             index_available=join_index is not None)
    estimate = _edge_cardinality(plan.estimated_rows, right.estimated_rows, ndvs)
    if join.join_type == "LEFT":
        estimate = max(estimate, plan.estimated_rows)
    if picked == "index_nested_loop":
        left_keys, right_keys = _order_keys_for_index(join_index, left_keys,
                                                      right_keys)
        return JoinPlan(picked, join.join_type, plan, right,
                        left_keys=left_keys, right_keys=right_keys,
                        condition=combine_conjuncts(rest),
                        index_name=join_index.name,
                        estimated_rows=estimate)
    left_node: PlanNode = plan
    right_node: PlanNode = right
    if picked == "hash" and join.join_type == "INNER" \
            and memory_budget_rows is not None \
            and right.estimated_rows > memory_budget_rows \
            and plan.estimated_rows <= memory_budget_rows:
        # Spill-aware build choice: the hash join builds on its right input,
        # and with a memory budget an over-budget build means Grace
        # partitioning (one extra spill round trip for *both* sides).  When
        # the syntactic build side is expected to blow the budget but the
        # other input fits, swap them — legal for INNER joins only (LEFT
        # padding is tied to the probe side).  Column order is restored by
        # the engine's FROM-order permutation, like every other reordering.
        left_node, right_node = right, plan
        left_keys, right_keys = right_keys, left_keys
    return JoinPlan(picked, join.join_type, left_node, right_node,
                    left_keys=left_keys, right_keys=right_keys,
                    condition=combine_conjuncts(rest),
                    estimated_rows=estimate)


# ---------------------------------------------------------------------------
# Spill expectations (memory-budgeted pipeline breakers)
# ---------------------------------------------------------------------------
def estimated_spill_partitions(rows: float, budget_rows: int) -> int:
    """Expected Grace-partition fan-out for ``rows`` under a budget."""
    from repro.storage.spill import clamp_partitions
    return clamp_partitions(rows, budget_rows)


def estimated_sort_runs(rows: float, budget_rows: int) -> int:
    """Expected external-sort run count for ``rows`` under a budget."""
    if budget_rows <= 0:
        return 1
    return max(1, -(-int(rows) // budget_rows))


def annotate_spill_expectations(node: PlanNode,
                                budget_rows: Optional[int],
                                parallel_workers: int = 0) -> None:
    """Mark the hash joins whose build side is expected to exceed the memory
    budget with the partition fan-out the executor should use.

    This is the cost model's spill decision: EXPLAIN renders it
    (``HashJoin ... [spill: N partitions]``) and the engine passes the
    fan-out to the operator as its ``spill_partitions`` hint.  The executor
    still spills adaptively when estimates are wrong — the annotation is a
    prediction, actual activity lands in ``engine.last_spill``.  When the
    engine runs spill partitions on a worker pool (``parallel_workers`` >=
    2), the expected-to-spill nodes carry that fan-out too, so EXPLAIN shows
    ``[parallel: N workers]`` exactly where workers would engage.
    """
    if isinstance(node, ScanPlan):
        return
    annotate_spill_expectations(node.left, budget_rows, parallel_workers)
    annotate_spill_expectations(node.right, budget_rows, parallel_workers)
    node.spill_partitions = None
    node.parallel_workers = None
    if budget_rows is not None and node.strategy == "hash" \
            and node.right.estimated_rows > budget_rows:
        node.spill_partitions = estimated_spill_partitions(
            node.right.estimated_rows, budget_rows)
        if parallel_workers >= 2:
            node.parallel_workers = parallel_workers


# ---------------------------------------------------------------------------
# Interesting-order propagation
# ---------------------------------------------------------------------------
#: Join strategies whose output preserves the order of their *left* input:
#: the probe side of a hash join streams in order, nested-loop and
#: index-nested-loop iterate the outer side in order (LEFT padding is
#: emitted in place), and a cross product keeps the outer loop's order.
#: Merge joins re-sort both inputs, so they are excluded.
_LEFT_ORDER_PRESERVING = {"hash", "nested_loop", "index_nested_loop", "cross"}


def plan_delivered_order(node: PlanNode,
                         allow_spilling_hash: bool = True,
                         ) -> Optional[Tuple[str, str, str]]:
    """The ``(qualifier, column, direction)`` order the plan delivers.

    Direction is ``"asc"`` for an ascending key-order scan and ``"desc"``
    for a reverse B-tree traversal.

    An ordered range/key-order scan establishes the order at a leaf; it
    propagates to the root while that leaf stays on the left spine of
    order-preserving joins.  Per-node residual filters only drop rows, so
    they never disturb it.  ``None`` when no order is guaranteed.

    ``allow_spilling_hash=False`` (set by the engine whenever a memory
    budget is configured) refuses to propagate order through hash joins: a
    Grace spill emits rows partition-by-partition, not in probe order, and
    spilling is an *adaptive* runtime decision the estimates cannot rule
    out — so elision across a possibly-spilling hash join would silently
    return unsorted rows.
    """
    if isinstance(node, ScanPlan):
        if node.ordered and node.index_columns:
            return (node.qualifier, node.index_columns[0].lower(),
                    "desc" if node.descending else "asc")
        return None
    if node.strategy in _LEFT_ORDER_PRESERVING:
        if node.strategy == "hash" and not allow_spilling_hash:
            return None
        return plan_delivered_order(node.left, allow_spilling_hash)
    return None


# ---------------------------------------------------------------------------
# Residual pushdown into the plan tree
# ---------------------------------------------------------------------------
def plan_qualifiers(node: PlanNode) -> Set[str]:
    """All table qualifiers produced by a subtree."""
    if isinstance(node, ScanPlan):
        return {node.qualifier}
    return plan_qualifiers(node.left) | plan_qualifiers(node.right)


def _conjunct_homes(conjunct: ast.Expression,
                    resolvable: Dict[str, Set[str]]) -> Optional[Set[str]]:
    """The qualifiers a conjunct's columns resolve to; ``None`` if unknown."""
    refs = referenced_columns(conjunct)
    if not refs:
        return None
    homes: Set[str] = set()
    for ref in refs:
        home = resolve_column(ref, resolvable)
        if home is None:
            return None
        homes.add(home)
    return homes


def push_residual_into_plan(plan: PlanNode,
                            conjuncts: Sequence[ast.Expression],
                            resolvable: Dict[str, Set[str]],
                            ) -> List[ast.Expression]:
    """Attach residual conjuncts to the lowest join whose schema covers them.

    Filters attached to a join node are evaluated on that join's *output*, so
    attaching at (never below) a LEFT join preserves the standard semantics
    of WHERE predicates over the nullable side: NULL-padded rows reach the
    filter and fail it.  The walk therefore never descends into the right
    (nullable) child of a LEFT join.  Conjuncts that cannot be placed — no
    column references, unresolvable references, or a home set not covered by
    any join node — are returned for the engine's top-level residual filter.
    """
    remaining: List[ast.Expression] = []
    for conjunct in conjuncts:
        target = _attach_point(plan, conjunct, resolvable)
        if target is None:
            remaining.append(conjunct)
        else:
            target.filters.append(conjunct)
    return remaining


def _attach_point(plan: PlanNode, conjunct: ast.Expression,
                  resolvable: Dict[str, Set[str]]) -> Optional[JoinPlan]:
    homes = _conjunct_homes(conjunct, resolvable)
    if not homes or not homes <= plan_qualifiers(plan):
        return None
    node = plan
    while isinstance(node, JoinPlan):
        if homes <= plan_qualifiers(node.left):
            node = node.left
            continue
        if node.join_type != "LEFT" and homes <= plan_qualifiers(node.right):
            node = node.right
            continue
        break
    # Single-table conjuncts land on scans only when the per-table pushdown
    # could not claim them (ambiguous references); leave those at the top.
    if isinstance(node, ScanPlan):
        return None
    return node


# ---------------------------------------------------------------------------
# EXPLAIN rendering
# ---------------------------------------------------------------------------
def format_expression(expr: ast.Expression) -> str:
    """Render an expression AST back to SQL-ish text (for EXPLAIN output)."""
    if isinstance(expr, ast.Literal):
        return _format_literal(expr.value)
    if isinstance(expr, ast.Parameter):
        return f"?{expr.index + 1}"
    if isinstance(expr, ast.ColumnRef):
        return expr.display()
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        left = format_expression(expr.left)
        right = format_expression(expr.right)
        if expr.op in ("AND", "OR"):
            if isinstance(expr.left, ast.BinaryOp) and expr.left.op in ("AND", "OR") \
                    and expr.left.op != expr.op:
                left = f"({left})"
            if isinstance(expr.right, ast.BinaryOp) and expr.right.op in ("AND", "OR") \
                    and expr.right.op != expr.op:
                right = f"({right})"
        return f"{left} {expr.op} {right}"
    if isinstance(expr, ast.UnaryOp):
        operand = format_expression(expr.operand)
        return f"NOT {operand}" if expr.op == "NOT" else f"{expr.op}{operand}"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(format_expression(arg) for arg in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{args})"
    if isinstance(expr, ast.IsNull):
        return (f"{format_expression(expr.operand)} IS "
                f"{'NOT ' if expr.negated else ''}NULL")
    if isinstance(expr, ast.Like):
        return (f"{format_expression(expr.operand)} "
                f"{'NOT ' if expr.negated else ''}LIKE "
                f"{format_expression(expr.pattern)}")
    if isinstance(expr, ast.InList):
        items = ", ".join(format_expression(item) for item in expr.items)
        return (f"{format_expression(expr.operand)} "
                f"{'NOT ' if expr.negated else ''}IN ({items})")
    if isinstance(expr, ast.Between):
        return (f"{format_expression(expr.operand)} "
                f"{'NOT ' if expr.negated else ''}BETWEEN "
                f"{format_expression(expr.low)} AND {format_expression(expr.high)}")
    return type(expr).__name__


def _format_literal(value: Any) -> str:
    if isinstance(value, ast.Parameter):
        # Index keys of a prepared plan hold the placeholder until bind time.
        return f"?{value.index + 1}"
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _format_index_key(node: ScanPlan) -> str:
    values = node.index_key if isinstance(node.index_key, tuple) else (node.index_key,)
    return ", ".join(f"{column} = {_format_literal(value)}"
                     for column, value in zip(node.index_columns, values))


def format_range_bounds(node: ScanPlan) -> str:
    """Render a range scan's window, e.g. ``v > 5 AND v <= 9`` or ``full order``."""
    column = node.index_columns[0] if node.index_columns else "?"
    parts = []
    if node.range_low is not None:
        op = ">=" if node.range_include_low else ">"
        parts.append(f"{column} {op} {_format_literal(node.range_low)}")
    if node.range_high is not None:
        op = "<=" if node.range_include_high else "<"
        parts.append(f"{column} {op} {_format_literal(node.range_high)}")
    return " AND ".join(parts) if parts else f"{column}: full key order"


_SCAN_NODE_NAMES = {"seq": "Scan", "index_lookup": "IndexScan",
                    "index_range": "IndexRangeScan", "foreign": "ForeignScan"}


def plan_to_dict(node: PlanNode) -> Dict[str, Any]:
    """Plan tree as a nested dict (stable surface for tests and tooling)."""
    if isinstance(node, ScanPlan):
        result = {
            "node": _SCAN_NODE_NAMES[node.access_path],
            "table": node.table,
            "qualifier": node.qualifier,
            "estimated_rows": round(node.estimated_rows, 2),
            "access_path": node.access_path,
            "index": node.index_name,
            "pushed_conjuncts": len(node.pushed),
            "pushed": [format_expression(conjunct) for conjunct in node.pushed],
        }
        if node.access_path == "index_range":
            result["range"] = format_range_bounds(node)
            result["ordered"] = node.ordered
            if node.ordered:
                result["direction"] = "desc" if node.descending else "asc"
        if isinstance(node, ForeignScanPlan):
            result["provider"] = node.provider
            result["projected"] = list(node.projected)
            result["pushdown"] = node.pushdown
        return result
    result = {
        "node": STRATEGY_LABELS[node.strategy],
        "join_type": node.join_type,
        "keys": [f"{l.display()} = {r.display()}"
                 for l, r in zip(node.left_keys, node.right_keys)],
        "estimated_rows": round(node.estimated_rows, 2),
        "filters": [format_expression(conjunct) for conjunct in node.filters],
        "left": plan_to_dict(node.left),
        "right": plan_to_dict(node.right),
    }
    if node.index_name is not None:
        result["index"] = node.index_name
    if node.spill_partitions is not None:
        result["spill_partitions"] = node.spill_partitions
    if node.parallel_workers is not None:
        result["parallel_workers"] = node.parallel_workers
    return result


def format_plan(node: PlanNode, indent: int = 0) -> str:
    """Human-readable plan dump (the EXPLAIN text)."""
    pad = "  " * indent
    if isinstance(node, ScanPlan):
        label = node.table if node.qualifier == node.table.lower() \
            else f"{node.table} AS {node.qualifier}"
        suffix = ""
        if node.pushed:
            predicates = " AND ".join(format_expression(c) for c in node.pushed)
            suffix = f" [pushed: {predicates}]"
        if node.access_path == "index_lookup":
            return (f"{pad}IndexScan {label} using {node.index_name} "
                    f"({_format_index_key(node)}) "
                    f"(est. rows={node.estimated_rows:.0f}){suffix}")
        if node.access_path == "index_range":
            ordered = ""
            if node.ordered:
                ordered = " [ordered desc]" if node.descending else " [ordered]"
            return (f"{pad}IndexRangeScan {label} using {node.index_name} "
                    f"({format_range_bounds(node)}){ordered} "
                    f"(est. rows={node.estimated_rows:.0f}){suffix}")
        if isinstance(node, ForeignScanPlan):
            detail = f" [provider: {node.provider}]"
            if node.projected:
                detail += f" [columns: {', '.join(node.projected)}]"
            if node.pushed and not node.pushdown:
                detail += " [pushdown: off]"
            return (f"{pad}ForeignScan {label}{detail} "
                    f"(est. rows={node.estimated_rows:.0f}){suffix}")
        return (f"{pad}Scan {label} "
                f"(est. rows={node.estimated_rows:.0f}){suffix}")
    keys = ", ".join(f"{l.display()} = {r.display()}"
                     for l, r in zip(node.left_keys, node.right_keys))
    detail = f" on {keys}" if keys else ""
    if node.index_name is not None:
        detail += f" using {node.index_name}"
    if node.condition is not None:
        detail += " +condition"
    if node.filters:
        predicates = " AND ".join(format_expression(c) for c in node.filters)
        detail += f" [filter: {predicates}]"
    if node.spill_partitions is not None:
        detail += f" [spill: {node.spill_partitions} partitions]"
    if node.parallel_workers is not None:
        detail += f" [parallel: {node.parallel_workers} workers]"
    header = (f"{pad}{STRATEGY_LABELS[node.strategy]} [{node.join_type}]{detail} "
              f"(est. rows={node.estimated_rows:.0f})")
    return "\n".join([header,
                      format_plan(node.left, indent + 1),
                      format_plan(node.right, indent + 1)])


def plan_strategies(node: PlanNode) -> List[str]:
    """Flat list of the join strategies used, outermost first."""
    if isinstance(node, ScanPlan):
        return []
    return ([node.strategy]
            + plan_strategies(node.left)
            + plan_strategies(node.right))


def plan_access_paths(node: PlanNode) -> List[str]:
    """Flat list of scan access paths, left-to-right (for tests/tooling)."""
    if isinstance(node, ScanPlan):
        return [node.access_path]
    return plan_access_paths(node.left) + plan_access_paths(node.right)
