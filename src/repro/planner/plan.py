"""Join planning: plan trees, equi-join extraction, ordering, and strategies.

The engine used to execute every multi-table query as a chain of cross
products followed by a residual filter.  This module turns the FROM list and
WHERE clause into a proper plan tree instead:

* equi-join conjuncts (``a.x = b.y``) are lifted out of the residual WHERE
  and become join keys;
* the FROM-list relations are ordered greedily by estimated cardinality
  (smallest first, then whichever joinable relation minimises the estimated
  intermediate result);
* each join edge picks a physical strategy — an index-nested-loop join when a
  secondary index covers the join key on the lookup side, hash join for other
  equi-joins, sort-merge join when the build side is too large for hashing
  (or when forced), and nested-loop for everything else;
* scans pick an access path: a point ``index_lookup`` when a secondary index
  covers equality conjuncts pushed to that table, a sequential scan otherwise;
* residual WHERE conjuncts are pushed to the *lowest* plan node whose schema
  covers their column references (``JoinPlan.filters``), instead of one
  filter above the whole join tree.

Explicit ``JOIN ... ON`` clauses keep their syntactic order (LEFT joins are
order-sensitive) but still get equi-key extraction and strategy selection.

The planner never touches rows: it consumes cardinality and NDV estimates
(duck-typed, normally a :class:`repro.catalog.statistics.StatisticsManager`)
plus an index listing (normally ``IndexManager.indexes_for``) and produces
:class:`ScanPlan` / :class:`JoinPlan` nodes that the executor walks.
``format_plan`` / ``plan_to_dict`` render the tree — including pushed
predicates and chosen access paths — for EXPLAIN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.errors import PlanningError
from repro.planner.planner import (
    combine_conjuncts,
    equality_lookups,
    lookup_value,
    referenced_columns,
    split_conjuncts,
)
from repro.sql import ast

#: Valid values of ``EngineConfig.join_strategy``.
JOIN_STRATEGIES = ("auto", "hash", "merge", "nested_loop", "index_nested_loop")

#: Strategy names as they appear in plan dumps.
STRATEGY_LABELS = {
    "hash": "HashJoin",
    "merge": "MergeJoin",
    "nested_loop": "NestedLoopJoin",
    "index_nested_loop": "IndexNestedLoopJoin",
    "cross": "CrossJoin",
}


@dataclass
class ScanPlan:
    """Leaf: a base-table access (with pushed-down conjuncts already applied).

    ``access_path`` is ``"seq"`` for a full scan or ``"index_lookup"`` when a
    secondary index covers equality conjuncts pushed to this table; in the
    latter case ``index_name`` / ``index_columns`` / ``index_key`` describe
    the lookup (the full pushed conjunct list is still applied on top, so
    consuming a conjunct into the index key never loses a filter).
    """

    table: str
    qualifier: str
    estimated_rows: float = 0.0
    pushed: List[ast.Expression] = field(default_factory=list)
    access_path: str = "seq"
    index_name: Optional[str] = None
    index_columns: Tuple[str, ...] = ()
    index_key: Any = None


@dataclass
class JoinPlan:
    """Inner node: a physical join between two sub-plans."""

    strategy: str  # "hash" | "merge" | "nested_loop" | "index_nested_loop" | "cross"
    join_type: str  # "INNER" | "LEFT" | "CROSS"
    left: "PlanNode"
    right: "PlanNode"
    left_keys: List[ast.ColumnRef] = field(default_factory=list)
    right_keys: List[ast.ColumnRef] = field(default_factory=list)
    #: Condition evaluated at the join on top of the key equalities (the
    #: non-equi part of an ON clause, or the full condition for nested loop).
    condition: Optional[ast.Expression] = None
    #: Residual WHERE conjuncts pushed down to this node: evaluated on the
    #: join *output* (after any LEFT padding), the lowest point whose schema
    #: covers their column references.
    filters: List[ast.Expression] = field(default_factory=list)
    #: Secondary index probed per left row (index-nested-loop joins only).
    index_name: Optional[str] = None
    estimated_rows: float = 0.0


PlanNode = Union[ScanPlan, JoinPlan]


@dataclass
class JoinEdge:
    """One equi-join conjunct connecting two relations of the FROM list."""

    left_qualifier: str
    left_column: ast.ColumnRef
    right_qualifier: str
    right_column: ast.ColumnRef
    conjunct: ast.Expression

    def connects(self, inside: Set[str], outside: str) -> bool:
        return ((self.left_qualifier in inside and self.right_qualifier == outside)
                or (self.right_qualifier in inside and self.left_qualifier == outside))

    def oriented(self, inside: Set[str]) -> Tuple[ast.ColumnRef, ast.ColumnRef]:
        """(inside-side key, outside-side key) for the current join frontier."""
        if self.left_qualifier in inside:
            return self.left_column, self.right_column
        return self.right_column, self.left_column


#: Estimates a planner needs: ``rows(qualifier)`` and ``ndv(qualifier, column)``.
RowEstimator = Callable[[str], float]
NdvEstimator = Callable[[str, str], float]
#: Maps (qualifier, column) to a coarse type category ("num", "text", "time"),
#: or ``None`` when unknown.  Hash/merge/index joins only apply when both key
#: columns share a category, because the engine's three-valued comparison
#: falls back to string forms (non-transitive) across categories.
TypeCategory = Callable[[str, str], Optional[str]]
#: Lists the secondary indexes of a base table.  Each descriptor exposes
#: ``name``, ``columns`` (tuple of column names) and ``method`` — duck-typed,
#: normally :class:`repro.index.manager.SecondaryIndex`.
ListIndexes = Callable[[str], Sequence[Any]]

#: Access-path tie-break: the paper's workhorse is the B-tree, so it wins
#: over the hash index when both cover the same columns.
_METHOD_PREFERENCE = {"btree": 0, "hash": 1}


def resolve_column(ref: ast.ColumnRef,
                   resolvable: Dict[str, Set[str]]) -> Optional[str]:
    """The unique qualifier ``ref`` resolves against, or ``None``."""
    if ref.table is not None:
        qualifier = ref.table.lower()
        columns = resolvable.get(qualifier)
        if columns is not None and ref.name.lower() in columns:
            return qualifier
        return None
    homes = [qualifier for qualifier, columns in resolvable.items()
             if ref.name.lower() in columns]
    return homes[0] if len(homes) == 1 else None


def extract_equi_edges(conjuncts: Sequence[ast.Expression],
                       resolvable: Dict[str, Set[str]],
                       eligible: Set[str],
                       type_category: Optional[TypeCategory] = None,
                       ) -> Tuple[List[JoinEdge], List[ast.Expression]]:
    """Partition conjuncts into equi-join edges and everything else.

    An edge requires both sides to be plain column references resolving to
    two *different* qualifiers within ``eligible``, with compatible type
    categories (see :data:`TypeCategory`).
    """
    edges: List[JoinEdge] = []
    rest: List[ast.Expression] = []
    for conjunct in conjuncts:
        edge = _as_edge(conjunct, resolvable, eligible, type_category)
        if edge is not None:
            edges.append(edge)
        else:
            rest.append(conjunct)
    return edges, rest


def _as_edge(conjunct: ast.Expression, resolvable: Dict[str, Set[str]],
             eligible: Set[str],
             type_category: Optional[TypeCategory]) -> Optional[JoinEdge]:
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if not isinstance(left, ast.ColumnRef) or not isinstance(right, ast.ColumnRef):
        return None
    left_home = resolve_column(left, resolvable)
    right_home = resolve_column(right, resolvable)
    if left_home is None or right_home is None or left_home == right_home:
        return None
    if left_home not in eligible or right_home not in eligible:
        return None
    if type_category is not None:
        left_category = type_category(left_home, left.name)
        right_category = type_category(right_home, right.name)
        if left_category is None or right_category is None \
                or left_category != right_category:
            return None
    return JoinEdge(left_home, left, right_home, right, conjunct)


# ---------------------------------------------------------------------------
# Access-path selection
# ---------------------------------------------------------------------------
_LOOKUP_MISSING = object()


def _literal_category(value: Any) -> Optional[str]:
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "text"
    return None


def _index_preference(index: Any) -> Tuple[int, int, str]:
    return (_METHOD_PREFERENCE.get(getattr(index, "method", ""), 9),
            len(index.columns), index.name)


def choose_index_lookup(table: str, qualifier: str,
                        pushed_conjuncts: Sequence[ast.Expression],
                        list_indexes: Optional[ListIndexes],
                        type_category: Optional[TypeCategory] = None,
                        ) -> Optional[Tuple[Any, Tuple[Any, ...]]]:
    """Pick a secondary index whose columns are all equality-bound.

    Returns ``(index descriptor, key values in index-column order)`` when the
    conjuncts pushed down to this table pin every column of some index to a
    literal of a compatible type category, or ``None``.
    """
    if list_indexes is None:
        return None
    lookups = equality_lookups(pushed_conjuncts)
    if not lookups:
        return None
    candidates: List[Tuple[Any, Tuple[Any, ...]]] = []
    for index in list_indexes(table):
        key_values: List[Any] = []
        for column in index.columns:
            value = lookup_value(lookups, column, qualifier, _LOOKUP_MISSING)
            if value is _LOOKUP_MISSING or value is None:
                break
            category = _literal_category(value)
            if category is None:
                break
            if type_category is not None:
                column_category = type_category(qualifier, column)
                if column_category is None or column_category != category:
                    break
            key_values.append(value)
        else:
            candidates.append((index, tuple(key_values)))
    if not candidates:
        return None
    candidates.sort(key=lambda pair: _index_preference(pair[0]))
    return candidates[0]


def covering_join_index(table: str, right_keys: Sequence[ast.ColumnRef],
                        list_indexes: Optional[ListIndexes]) -> Optional[Any]:
    """An index of ``table`` whose column set equals the join-key columns."""
    if list_indexes is None or not right_keys:
        return None
    wanted = [ref.name.lower() for ref in right_keys]
    if len(set(wanted)) != len(wanted):
        # The same right column appears in several equi-conjuncts: the probe
        # key arity would exceed the index key arity, so no index covers it.
        return None
    matches = [
        index for index in list_indexes(table)
        if len(index.columns) == len(wanted)
        and {column.lower() for column in index.columns} == set(wanted)
    ]
    if not matches:
        return None
    matches.sort(key=_index_preference)
    return matches[0]


def _apply_index_access_path(node: ScanPlan,
                             list_indexes: Optional[ListIndexes],
                             type_category: Optional[TypeCategory]) -> None:
    choice = choose_index_lookup(node.table, node.qualifier, node.pushed,
                                 list_indexes, type_category)
    if choice is None:
        return
    index, key_values = choice
    node.access_path = "index_lookup"
    node.index_name = index.name
    node.index_columns = tuple(index.columns)
    node.index_key = key_values[0] if len(key_values) == 1 else key_values


def _order_keys_for_index(index: Any, left_keys: List[ast.ColumnRef],
                          right_keys: List[ast.ColumnRef],
                          ) -> Tuple[List[ast.ColumnRef], List[ast.ColumnRef]]:
    """Permute (left, right) key pairs into the index's column order."""
    position = {column.lower(): i for i, column in enumerate(index.columns)}
    pairs = sorted(zip(left_keys, right_keys),
                   key=lambda pair: position[pair[1].name.lower()])
    return [pair[0] for pair in pairs], [pair[1] for pair in pairs]


# ---------------------------------------------------------------------------
# Strategy selection
# ---------------------------------------------------------------------------
def choose_strategy(left_rows: float, right_rows: float, forced: str,
                    hash_max_build_rows: float,
                    index_available: bool = False) -> str:
    """Pick the physical strategy for an equi-join edge.

    An index-nested-loop join is chosen when the lookup (right) side has a
    covering index and either the caller forces it or, in auto mode, the
    streamed probe side is estimated no larger than the lookup side (so per
    row lookups beat building a hash table over the bigger input).
    """
    if forced == "hash":
        return "hash"
    if forced == "merge":
        return "merge"
    if index_available:
        if forced == "index_nested_loop":
            return "index_nested_loop"
        if left_rows <= right_rows:
            return "index_nested_loop"
    build = min(left_rows, right_rows)
    return "merge" if build > hash_max_build_rows else "hash"


def _edge_cardinality(left_rows: float, right_rows: float,
                      key_ndvs: Sequence[float]) -> float:
    """Classic equi-join estimate: |L| * |R| / prod(max(NDV_l, NDV_r))."""
    result = left_rows * right_rows
    for ndv in key_ndvs:
        result /= max(1.0, ndv)
    return max(1.0, result)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------
def plan_select_joins(from_refs: Sequence[ast.TableRef],
                      explicit_joins: Sequence[ast.Join],
                      residual: Sequence[ast.Expression],
                      resolvable: Dict[str, Set[str]],
                      pushed: Dict[str, List[ast.Expression]],
                      *,
                      row_estimate: RowEstimator,
                      ndv_estimate: NdvEstimator,
                      type_category: Optional[TypeCategory] = None,
                      list_indexes: Optional[ListIndexes] = None,
                      strategy: str = "auto",
                      hash_max_build_rows: float = 4_000_000.0,
                      ) -> Tuple[PlanNode, List[ast.Expression]]:
    """Build a join plan for a SELECT; returns (root, remaining residual).

    ``residual`` are the WHERE conjuncts left over after pushdown; conjuncts
    this planner consumes — as join keys or as per-node ``filters`` pushed to
    the lowest covering join — are removed from the list it returns.
    ``pushed`` is recorded on scan nodes (the engine applies it there) and
    drives index access-path selection via ``list_indexes``.
    """
    if strategy not in JOIN_STRATEGIES:
        raise PlanningError(
            f"unknown join strategy {strategy!r}; expected one of {JOIN_STRATEGIES}")

    def scan_node(ref: ast.TableRef) -> ScanPlan:
        qualifier = ref.effective_name.lower()
        node = ScanPlan(table=ref.name, qualifier=qualifier,
                        estimated_rows=row_estimate(qualifier),
                        pushed=list(pushed.get(qualifier, [])))
        if strategy != "nested_loop":
            _apply_index_access_path(node, list_indexes, type_category)
        return node

    if strategy == "nested_loop":
        # Reproduce the naive pipeline exactly: cross products in FROM order,
        # explicit joins as nested loops, the whole residual evaluated on top,
        # sequential scans only.
        plan: PlanNode = scan_node(from_refs[0])
        for ref in from_refs[1:]:
            right = scan_node(ref)
            plan = JoinPlan("cross", "CROSS", plan, right,
                            estimated_rows=plan.estimated_rows * max(1.0, right.estimated_rows))
        for join in explicit_joins:
            plan = _nested_loop_node(plan, scan_node(join.table), join)
        return plan, list(residual)

    from_qualifiers = {ref.effective_name.lower() for ref in from_refs}
    edges, rest = extract_equi_edges(residual, resolvable, from_qualifiers,
                                     type_category)

    scans = {ref.effective_name.lower(): scan_node(ref) for ref in from_refs}
    order = [ref.effective_name.lower() for ref in from_refs]

    # Greedy ordering: start from the smallest relation, then repeatedly add
    # the connected relation with the smallest estimated join output
    # (falling back to the smallest remaining relation via a cross product).
    remaining = list(order)
    start = min(remaining, key=lambda q: (scans[q].estimated_rows, order.index(q)))
    remaining.remove(start)
    plan = scans[start]
    joined: Set[str] = {start}
    pending_edges = list(edges)

    while remaining:
        best: Optional[Tuple[float, int, str, List[JoinEdge]]] = None
        for qualifier in remaining:
            connecting = [e for e in pending_edges if e.connects(joined, qualifier)]
            if not connecting:
                continue
            ndvs = [_edge_ndv(e, joined, ndv_estimate) for e in connecting]
            estimate = _edge_cardinality(plan.estimated_rows,
                                         scans[qualifier].estimated_rows, ndvs)
            candidate = (estimate, order.index(qualifier), qualifier, connecting)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        if best is None:
            # No join edge reaches the remaining relations: cross product
            # with the smallest one.
            qualifier = min(remaining,
                            key=lambda q: (scans[q].estimated_rows, order.index(q)))
            right = scans[qualifier]
            plan = JoinPlan("cross", "CROSS", plan, right,
                            estimated_rows=plan.estimated_rows * max(1.0, right.estimated_rows))
            remaining.remove(qualifier)
            joined.add(qualifier)
            continue
        estimate, _, qualifier, connecting = best
        right = scans[qualifier]
        left_keys = []
        right_keys = []
        for edge in connecting:
            inside_key, outside_key = edge.oriented(joined)
            left_keys.append(inside_key)
            right_keys.append(outside_key)
            pending_edges.remove(edge)
        join_index = covering_join_index(right.table, right_keys, list_indexes)
        picked = choose_strategy(plan.estimated_rows, right.estimated_rows,
                                 strategy, hash_max_build_rows,
                                 index_available=join_index is not None)
        if picked == "index_nested_loop":
            left_keys, right_keys = _order_keys_for_index(join_index, left_keys,
                                                          right_keys)
            plan = JoinPlan(picked, "INNER", plan, right,
                            left_keys=left_keys, right_keys=right_keys,
                            index_name=join_index.name,
                            estimated_rows=estimate)
        else:
            left, right_node = plan, right
            if picked == "hash" and right.estimated_rows > plan.estimated_rows:
                # Hash join builds on the right input: put the smaller side there.
                left, right_node = right, plan
                left_keys, right_keys = right_keys, left_keys
            plan = JoinPlan(picked, "INNER", left, right_node,
                            left_keys=left_keys, right_keys=right_keys,
                            estimated_rows=estimate)
        remaining.remove(qualifier)
        joined.add(qualifier)

    # Unconsumed edges (both endpoints already joined through another path)
    # go back into the residual pool; the tree pushdown below re-places them.
    rest = rest + [edge.conjunct for edge in pending_edges]

    for join in explicit_joins:
        right = scan_node(join.table)
        plan = _plan_explicit_join(plan, right, join, joined, resolvable,
                                   type_category, ndv_estimate, list_indexes,
                                   strategy, hash_max_build_rows)
        joined.add(right.qualifier)

    # Residual pushdown into the tree: each remaining conjunct is attached to
    # the lowest join node whose schema covers it; only conjuncts that cannot
    # be placed (constant folding cases, unresolvable references) stay in the
    # top-level residual.
    rest = push_residual_into_plan(plan, rest, resolvable)
    return plan, rest


def _edge_ndv(edge: JoinEdge, joined: Set[str],
              ndv_estimate: NdvEstimator) -> float:
    inside_key, outside_key = edge.oriented(joined)
    inside_q = edge.left_qualifier if edge.left_qualifier in joined else edge.right_qualifier
    outside_q = edge.right_qualifier if inside_q == edge.left_qualifier else edge.left_qualifier
    return max(ndv_estimate(inside_q, inside_key.name),
               ndv_estimate(outside_q, outside_key.name))


def _nested_loop_node(left: PlanNode, right: ScanPlan, join: ast.Join) -> JoinPlan:
    strategy = "cross" if join.join_type == "CROSS" else "nested_loop"
    estimate = left.estimated_rows * max(1.0, right.estimated_rows)
    if join.condition is not None:
        estimate = max(1.0, estimate * (1.0 / 3.0))
    if join.join_type == "LEFT":
        estimate = max(estimate, left.estimated_rows)
    return JoinPlan(strategy, join.join_type, left, right,
                    condition=join.condition, estimated_rows=estimate)


def _plan_explicit_join(plan: PlanNode, right: ScanPlan, join: ast.Join,
                        joined: Set[str], resolvable: Dict[str, Set[str]],
                        type_category: Optional[TypeCategory],
                        ndv_estimate: NdvEstimator,
                        list_indexes: Optional[ListIndexes],
                        strategy: str, hash_max_build_rows: float) -> JoinPlan:
    """Strategy selection for a JOIN ... ON clause (order is preserved)."""
    if join.join_type == "CROSS" or join.condition is None:
        return _nested_loop_node(plan, right, join)
    conjuncts = split_conjuncts(join.condition)
    eligible = joined | {right.qualifier}
    edges, rest = extract_equi_edges(conjuncts, resolvable, eligible,
                                     type_category)
    # Only edges between the existing plan and the new table are usable as
    # keys here; anything else stays in the join condition.
    usable = [e for e in edges if e.connects(joined, right.qualifier)]
    rest = rest + [e.conjunct for e in edges if e not in usable]
    if not usable:
        return _nested_loop_node(plan, right, join)
    left_keys = []
    right_keys = []
    ndvs = []
    for edge in usable:
        inside_key, outside_key = edge.oriented(joined)
        left_keys.append(inside_key)
        right_keys.append(outside_key)
        ndvs.append(_edge_ndv(edge, joined, ndv_estimate))
    join_index = covering_join_index(right.table, right_keys, list_indexes)
    picked = choose_strategy(plan.estimated_rows, right.estimated_rows,
                             strategy, hash_max_build_rows,
                             index_available=join_index is not None)
    estimate = _edge_cardinality(plan.estimated_rows, right.estimated_rows, ndvs)
    if join.join_type == "LEFT":
        estimate = max(estimate, plan.estimated_rows)
    if picked == "index_nested_loop":
        left_keys, right_keys = _order_keys_for_index(join_index, left_keys,
                                                      right_keys)
        return JoinPlan(picked, join.join_type, plan, right,
                        left_keys=left_keys, right_keys=right_keys,
                        condition=combine_conjuncts(rest),
                        index_name=join_index.name,
                        estimated_rows=estimate)
    return JoinPlan(picked, join.join_type, plan, right,
                    left_keys=left_keys, right_keys=right_keys,
                    condition=combine_conjuncts(rest),
                    estimated_rows=estimate)


# ---------------------------------------------------------------------------
# Residual pushdown into the plan tree
# ---------------------------------------------------------------------------
def plan_qualifiers(node: PlanNode) -> Set[str]:
    """All table qualifiers produced by a subtree."""
    if isinstance(node, ScanPlan):
        return {node.qualifier}
    return plan_qualifiers(node.left) | plan_qualifiers(node.right)


def _conjunct_homes(conjunct: ast.Expression,
                    resolvable: Dict[str, Set[str]]) -> Optional[Set[str]]:
    """The qualifiers a conjunct's columns resolve to; ``None`` if unknown."""
    refs = referenced_columns(conjunct)
    if not refs:
        return None
    homes: Set[str] = set()
    for ref in refs:
        home = resolve_column(ref, resolvable)
        if home is None:
            return None
        homes.add(home)
    return homes


def push_residual_into_plan(plan: PlanNode,
                            conjuncts: Sequence[ast.Expression],
                            resolvable: Dict[str, Set[str]],
                            ) -> List[ast.Expression]:
    """Attach residual conjuncts to the lowest join whose schema covers them.

    Filters attached to a join node are evaluated on that join's *output*, so
    attaching at (never below) a LEFT join preserves the standard semantics
    of WHERE predicates over the nullable side: NULL-padded rows reach the
    filter and fail it.  The walk therefore never descends into the right
    (nullable) child of a LEFT join.  Conjuncts that cannot be placed — no
    column references, unresolvable references, or a home set not covered by
    any join node — are returned for the engine's top-level residual filter.
    """
    remaining: List[ast.Expression] = []
    for conjunct in conjuncts:
        target = _attach_point(plan, conjunct, resolvable)
        if target is None:
            remaining.append(conjunct)
        else:
            target.filters.append(conjunct)
    return remaining


def _attach_point(plan: PlanNode, conjunct: ast.Expression,
                  resolvable: Dict[str, Set[str]]) -> Optional[JoinPlan]:
    homes = _conjunct_homes(conjunct, resolvable)
    if not homes or not homes <= plan_qualifiers(plan):
        return None
    node = plan
    while isinstance(node, JoinPlan):
        if homes <= plan_qualifiers(node.left):
            node = node.left
            continue
        if node.join_type != "LEFT" and homes <= plan_qualifiers(node.right):
            node = node.right
            continue
        break
    # Single-table conjuncts land on scans only when the per-table pushdown
    # could not claim them (ambiguous references); leave those at the top.
    if isinstance(node, ScanPlan):
        return None
    return node


# ---------------------------------------------------------------------------
# EXPLAIN rendering
# ---------------------------------------------------------------------------
def format_expression(expr: ast.Expression) -> str:
    """Render an expression AST back to SQL-ish text (for EXPLAIN output)."""
    if isinstance(expr, ast.Literal):
        return _format_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return expr.display()
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        left = format_expression(expr.left)
        right = format_expression(expr.right)
        if expr.op in ("AND", "OR"):
            if isinstance(expr.left, ast.BinaryOp) and expr.left.op in ("AND", "OR") \
                    and expr.left.op != expr.op:
                left = f"({left})"
            if isinstance(expr.right, ast.BinaryOp) and expr.right.op in ("AND", "OR") \
                    and expr.right.op != expr.op:
                right = f"({right})"
        return f"{left} {expr.op} {right}"
    if isinstance(expr, ast.UnaryOp):
        operand = format_expression(expr.operand)
        return f"NOT {operand}" if expr.op == "NOT" else f"{expr.op}{operand}"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(format_expression(arg) for arg in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{args})"
    if isinstance(expr, ast.IsNull):
        return (f"{format_expression(expr.operand)} IS "
                f"{'NOT ' if expr.negated else ''}NULL")
    if isinstance(expr, ast.Like):
        return (f"{format_expression(expr.operand)} "
                f"{'NOT ' if expr.negated else ''}LIKE "
                f"{format_expression(expr.pattern)}")
    if isinstance(expr, ast.InList):
        items = ", ".join(format_expression(item) for item in expr.items)
        return (f"{format_expression(expr.operand)} "
                f"{'NOT ' if expr.negated else ''}IN ({items})")
    if isinstance(expr, ast.Between):
        return (f"{format_expression(expr.operand)} "
                f"{'NOT ' if expr.negated else ''}BETWEEN "
                f"{format_expression(expr.low)} AND {format_expression(expr.high)}")
    return type(expr).__name__


def _format_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _format_index_key(node: ScanPlan) -> str:
    values = node.index_key if isinstance(node.index_key, tuple) else (node.index_key,)
    return ", ".join(f"{column} = {_format_literal(value)}"
                     for column, value in zip(node.index_columns, values))


def plan_to_dict(node: PlanNode) -> Dict[str, Any]:
    """Plan tree as a nested dict (stable surface for tests and tooling)."""
    if isinstance(node, ScanPlan):
        return {
            "node": "IndexScan" if node.access_path == "index_lookup" else "Scan",
            "table": node.table,
            "qualifier": node.qualifier,
            "estimated_rows": round(node.estimated_rows, 2),
            "access_path": node.access_path,
            "index": node.index_name,
            "pushed_conjuncts": len(node.pushed),
            "pushed": [format_expression(conjunct) for conjunct in node.pushed],
        }
    result = {
        "node": STRATEGY_LABELS[node.strategy],
        "join_type": node.join_type,
        "keys": [f"{l.display()} = {r.display()}"
                 for l, r in zip(node.left_keys, node.right_keys)],
        "estimated_rows": round(node.estimated_rows, 2),
        "filters": [format_expression(conjunct) for conjunct in node.filters],
        "left": plan_to_dict(node.left),
        "right": plan_to_dict(node.right),
    }
    if node.index_name is not None:
        result["index"] = node.index_name
    return result


def format_plan(node: PlanNode, indent: int = 0) -> str:
    """Human-readable plan dump (the EXPLAIN text)."""
    pad = "  " * indent
    if isinstance(node, ScanPlan):
        label = node.table if node.qualifier == node.table.lower() \
            else f"{node.table} AS {node.qualifier}"
        suffix = ""
        if node.pushed:
            predicates = " AND ".join(format_expression(c) for c in node.pushed)
            suffix = f" [pushed: {predicates}]"
        if node.access_path == "index_lookup":
            return (f"{pad}IndexScan {label} using {node.index_name} "
                    f"({_format_index_key(node)}) "
                    f"(est. rows={node.estimated_rows:.0f}){suffix}")
        return (f"{pad}Scan {label} "
                f"(est. rows={node.estimated_rows:.0f}){suffix}")
    keys = ", ".join(f"{l.display()} = {r.display()}"
                     for l, r in zip(node.left_keys, node.right_keys))
    detail = f" on {keys}" if keys else ""
    if node.index_name is not None:
        detail += f" using {node.index_name}"
    if node.condition is not None:
        detail += " +condition"
    if node.filters:
        predicates = " AND ".join(format_expression(c) for c in node.filters)
        detail += f" [filter: {predicates}]"
    header = (f"{pad}{STRATEGY_LABELS[node.strategy]} [{node.join_type}]{detail} "
              f"(est. rows={node.estimated_rows:.0f})")
    return "\n".join([header,
                      format_plan(node.left, indent + 1),
                      format_plan(node.right, indent + 1)])


def plan_strategies(node: PlanNode) -> List[str]:
    """Flat list of the join strategies used, outermost first."""
    if isinstance(node, ScanPlan):
        return []
    return ([node.strategy]
            + plan_strategies(node.left)
            + plan_strategies(node.right))


def plan_access_paths(node: PlanNode) -> List[str]:
    """Flat list of scan access paths, left-to-right (for tests/tooling)."""
    if isinstance(node, ScanPlan):
        return [node.access_path]
    return plan_access_paths(node.left) + plan_access_paths(node.right)
