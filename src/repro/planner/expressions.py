"""Expression evaluation: scalar expressions, predicates, and aggregates.

Expressions are compiled against an :class:`~repro.executor.row.OutputSchema`
once and then evaluated per row.  SQL three-valued logic is approximated by
treating NULL comparisons as unknown and unknown predicates as false.

Annotation predicates (A-SQL ``AWHERE``, ``AHAVING``, ``FILTER``) are
evaluated by :class:`AnnotationPredicate` against a single annotation.  The
pseudo-columns available inside those predicates are:

``annotation`` / ``annotation.value``
    the annotation body text,
``annotation.table``
    the annotation table the annotation belongs to,
``annotation.curator``
    the user or tool that added the annotation,
``annotation.created_at``
    the timestamp the annotation was added,
``annotation.archived``
    whether the annotation is archived.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import ExecutionError, PlanningError
from repro.executor.row import OutputSchema, Row
from repro.sql import ast
from repro.types.values import compare_values, values_equal

# ---------------------------------------------------------------------------
# Scalar functions available in expressions
# ---------------------------------------------------------------------------


def _sql_length(value: Any) -> Optional[int]:
    return None if value is None else len(str(value))


def _sql_upper(value: Any) -> Optional[str]:
    return None if value is None else str(value).upper()


def _sql_lower(value: Any) -> Optional[str]:
    return None if value is None else str(value).lower()


def _sql_abs(value: Any) -> Any:
    return None if value is None else abs(value)


def _sql_round(value: Any, digits: Any = 0) -> Any:
    if value is None:
        return None
    return round(float(value), int(digits or 0))


def _sql_substr(value: Any, start: Any, length: Any = None) -> Optional[str]:
    if value is None:
        return None
    text = str(value)
    begin = int(start) - 1
    if length is None:
        return text[begin:]
    return text[begin:begin + int(length)]


def _sql_coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "LENGTH": _sql_length,
    "LEN": _sql_length,
    "UPPER": _sql_upper,
    "LOWER": _sql_lower,
    "ABS": _sql_abs,
    "ROUND": _sql_round,
    "SUBSTR": _sql_substr,
    "SUBSTRING": _sql_substr,
    "COALESCE": _sql_coalesce,
}

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@lru_cache(maxsize=512)
def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (%, _) into a compiled regex.

    Cached: a LIKE predicate evaluated over a million rows compiles its
    pattern once, not once per row (dynamic patterns — ``x LIKE y || '%'`` —
    still hit the cache per distinct pattern string).
    """
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


# ---------------------------------------------------------------------------
# Compiled scalar expressions
# ---------------------------------------------------------------------------
class Evaluator:
    """Compiles an AST expression against a schema and evaluates it per row.

    Compilation resolves column references to positions once and builds a
    closure tree over plain *value tuples*; :meth:`compile` wraps that core in
    a ``Row`` adapter for the row-at-a-time operators, while
    :meth:`compile_values` exposes the core directly for the batched
    operators (no per-row ``Row`` allocation or attribute hop).
    """

    def __init__(self, schema: OutputSchema):
        self.schema = schema

    def compile(self, expr: ast.Expression) -> Callable[[Row], Any]:
        core = self._compile(expr)
        return lambda row: core(row.values)

    def compile_values(self, expr: ast.Expression) -> Callable[[Tuple[Any, ...]], Any]:
        """Compile to a callable over a bare value tuple (batch pipelines)."""
        return self._compile(expr)

    def evaluate(self, expr: ast.Expression, row: Row) -> Any:
        return self._compile(expr)(row.values)

    # -- compilation -----------------------------------------------------
    def _compile(self, expr: ast.Expression) -> Callable[[Tuple[Any, ...]], Any]:
        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda row: value
        if isinstance(expr, ast.ColumnRef):
            position = self.schema.resolve(expr.name, expr.table)
            return lambda row: row[position]
        if isinstance(expr, ast.Parameter):
            raise PlanningError(
                f"unbound parameter placeholder ?{expr.index + 1}: "
                f"parameterized statements must be executed with bound "
                f"values through a prepared statement or cursor")
        if isinstance(expr, ast.Star):
            raise PlanningError("'*' is only valid in a projection list or COUNT(*)")
        if isinstance(expr, ast.UnaryOp):
            return self._compile_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.FunctionCall):
            return self._compile_function(expr)
        if isinstance(expr, ast.IsNull):
            operand = self._compile(expr.operand)
            if expr.negated:
                return lambda row: operand(row) is not None
            return lambda row: operand(row) is None
        if isinstance(expr, ast.Like):
            return self._compile_like(expr)
        if isinstance(expr, ast.InList):
            return self._compile_in(expr)
        if isinstance(expr, ast.Between):
            return self._compile_between(expr)
        raise PlanningError(f"unsupported expression node {type(expr).__name__}")

    def _compile_unary(self, expr: ast.UnaryOp) -> Callable[[Row], Any]:
        operand = self._compile(expr.operand)
        if expr.op == "-":
            return lambda row: None if operand(row) is None else -operand(row)
        if expr.op == "+":
            return operand
        if expr.op == "NOT":
            def negate(row: Row) -> Optional[bool]:
                value = operand(row)
                if value is None:
                    return None
                return not bool(value)
            return negate
        raise PlanningError(f"unsupported unary operator {expr.op!r}")

    def _compile_binary(self, expr: ast.BinaryOp) -> Callable[[Row], Any]:
        op = expr.op
        left = self._compile(expr.left)
        right = self._compile(expr.right)
        if op == "AND":
            def and_(row: Row) -> Optional[bool]:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    # unknown AND false == false; otherwise unknown
                    if lhs is False or rhs is False:
                        return False
                    return None
                return bool(lhs) and bool(rhs)
            return and_
        if op == "OR":
            def or_(row: Row) -> Optional[bool]:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    if lhs is True or rhs is True:
                        return True
                    return None
                return bool(lhs) or bool(rhs)
            return or_
        if op in ("=", "<>", "<", "<=", ">", ">="):
            def compare(row: Row) -> Optional[bool]:
                cmp = compare_values(left(row), right(row))
                if cmp is None:
                    return None
                if op == "=":
                    return cmp == 0
                if op == "<>":
                    return cmp != 0
                if op == "<":
                    return cmp < 0
                if op == "<=":
                    return cmp <= 0
                if op == ">":
                    return cmp > 0
                return cmp >= 0
            return compare
        if op in ("+", "-", "*", "/", "%"):
            def arithmetic(row: Row) -> Any:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    return None
                try:
                    if op == "+":
                        return lhs + rhs
                    if op == "-":
                        return lhs - rhs
                    if op == "*":
                        return lhs * rhs
                    if op == "/":
                        if rhs == 0:
                            raise ExecutionError("division by zero")
                        result = lhs / rhs
                        return result
                    return lhs % rhs
                except TypeError as exc:
                    raise ExecutionError(
                        f"invalid operands for {op!r}: {lhs!r}, {rhs!r}"
                    ) from exc
            return arithmetic
        if op == "||":
            def concat(row: Row) -> Optional[str]:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    return None
                return str(lhs) + str(rhs)
            return concat
        raise PlanningError(f"unsupported binary operator {op!r}")

    def _compile_function(self, expr: ast.FunctionCall) -> Callable[[Row], Any]:
        name = expr.name.upper()
        if name in AGGREGATE_FUNCTIONS:
            raise PlanningError(
                f"aggregate function {name} is not allowed in this context"
            )
        function = SCALAR_FUNCTIONS.get(name)
        if function is None:
            raise PlanningError(f"unknown function {name}")
        arg_evaluators = [self._compile(arg) for arg in expr.args]
        return lambda row: function(*[evaluate(row) for evaluate in arg_evaluators])

    def _compile_like(self, expr: ast.Like) -> Callable[[Row], Any]:
        operand = self._compile(expr.operand)
        negated = expr.negated
        if isinstance(expr.pattern, ast.Literal):
            # The common shape: the pattern is a constant, so its regex is
            # compiled exactly once, at expression-compile time.
            if expr.pattern.value is None:
                return lambda row: None
            regex = like_to_regex(str(expr.pattern.value))

            def like_constant(row: Row) -> Optional[bool]:
                value = operand(row)
                if value is None:
                    return None
                matched = regex.match(str(value)) is not None
                return (not matched) if negated else matched
            return like_constant
        pattern_eval = self._compile(expr.pattern)

        def like(row: Row) -> Optional[bool]:
            value, pattern = operand(row), pattern_eval(row)
            if value is None or pattern is None:
                return None
            matched = bool(like_to_regex(str(pattern)).match(str(value)))
            return (not matched) if negated else matched
        return like

    def _compile_in(self, expr: ast.InList) -> Callable[[Row], Any]:
        operand = self._compile(expr.operand)
        item_evaluators = [self._compile(item) for item in expr.items]
        negated = expr.negated

        def contains(row: Row) -> Optional[bool]:
            value = operand(row)
            if value is None:
                return None
            found = any(values_equal(value, evaluate(row)) for evaluate in item_evaluators)
            return (not found) if negated else found
        return contains

    def _compile_between(self, expr: ast.Between) -> Callable[[Row], Any]:
        operand = self._compile(expr.operand)
        low = self._compile(expr.low)
        high = self._compile(expr.high)
        negated = expr.negated

        def between(row: Row) -> Optional[bool]:
            value = operand(row)
            lo, hi = low(row), high(row)
            if value is None or lo is None or hi is None:
                return None
            cmp_low = compare_values(value, lo)
            cmp_high = compare_values(value, hi)
            if cmp_low is None or cmp_high is None:
                return None
            inside = cmp_low >= 0 and cmp_high <= 0
            return (not inside) if negated else inside
        return between


def predicate_is_true(value: Any) -> bool:
    """SQL predicate semantics: NULL/unknown counts as not satisfied."""
    return value is True or (value not in (None, False) and bool(value))


# ---------------------------------------------------------------------------
# Batch (vectorized) predicate compilation
# ---------------------------------------------------------------------------
#: ``type(v) in _NUM`` is the numeric fast-path guard: an exact type test, so
#: ``bool`` (whose comparisons against numbers must go through
#: ``compare_values``' bool-as-int rule only via the slow path... it actually
#: matches, but exactness keeps the proof trivial) and arbitrary subclasses
#: fall back to the slow, reference comparator.
_NUMERIC_TYPES = (int, float)

_COMPARE_OPS = ("=", "<>", "<", "<=", ">", ">=")
_PY_OP = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _slow_compare(op: str, literal: Any) -> Callable[[Any], bool]:
    """Reference semantics for values the inline fast path does not cover."""
    def check(value: Any) -> bool:
        cmp = compare_values(value, literal)
        if cmp is None:
            return False
        if op == "=":
            return cmp == 0
        if op == "<>":
            return cmp != 0
        if op == "<":
            return cmp < 0
        if op == "<=":
            return cmp <= 0
        if op == ">":
            return cmp > 0
        return cmp >= 0
    return check


def _fragment_with_guard(ref: str, fast: str, guard: str, slow_name: str) -> str:
    """Type-guarded fragment: inline compare, NULL rejection, slow fallback."""
    return (f"(({fast}) if type({ref}) {guard} else "
            f"False if {ref} is None else {slow_name}({ref}))")


class BatchFilter:
    """A WHERE conjunct chain compiled to run over whole value batches.

    The fast path is *generated source code*: every conjunct that matches a
    supported shape (column-vs-literal comparison, BETWEEN, IN over literals,
    IS [NOT] NULL, LIKE with a constant pattern) contributes an inline,
    type-guarded fragment, and all fragments are fused into one list
    comprehension — one Python-level loop per batch instead of a closure-tree
    call per row per conjunct.  Unsupported conjuncts compile through
    :meth:`Evaluator.compile_values` and are evaluated as per-conjunct mask
    vectors, exactly like the row-at-a-time engine evaluates them (eagerly,
    with identical NULL/NaN and exception behaviour).

    The inline fragments reproduce ``compare_values`` semantics bit for bit
    on the types they claim (`type(v) is`-exact guards): NULL fails every
    predicate, NaN orders above every number (hence the ``or v != v`` arm on
    ``>``/``>=``), and any value outside the guard falls back to the shared
    slow comparator.
    """

    __slots__ = ("_slow_masks", "_env", "_condition", "_keep", "_mask")

    def __init__(self, schema: OutputSchema,
                 conjuncts: Sequence[ast.Expression]):
        evaluator = Evaluator(schema)
        env: Dict[str, Any] = {"_NUM": _NUMERIC_TYPES, "zip": zip}
        fragments: List[str] = []
        self._slow_masks: List[Callable[[List[Tuple[Any, ...]]], List[bool]]] = []
        for index, conjunct in enumerate(conjuncts):
            fragment = self._fast_fragment(conjunct, schema, env, index)
            if fragment is not None:
                fragments.append(fragment)
            else:
                core = evaluator.compile_values(conjunct)
                self._slow_masks.append(
                    lambda rows, _core=core:
                        [predicate_is_true(_core(r)) for r in rows])
        mask_names = [f"m{i}" for i in range(len(self._slow_masks))]
        self._env = env
        self._condition = " and ".join(mask_names + fragments) or "True"
        self._keep = self.compile_keep("r")
        self._mask = self.compile_keep(f"({self._condition})", unconditional=True)

    def compile_keep(self, element: str,
                     unconditional: bool = False) -> Callable[..., List[Any]]:
        """Generate ``rows -> [element for passing rows]`` over this filter.

        ``element`` is a source expression over the row tuple ``r`` — ``"r"``
        itself for plain filtering, or a projection like ``"(r[0], r[2])"``
        to fuse selection and projection into one comprehension pass.  With
        ``unconditional`` the comprehension emits ``element`` for *every*
        row (used to produce the boolean mask).
        """
        mask_names = [f"m{i}" for i in range(len(self._slow_masks))]
        suffix = "" if unconditional else f" if {self._condition}"
        if self._slow_masks:
            heads = ", ".join(["r"] + mask_names)
            zipped = "zip(rows, " + ", ".join(
                f"masks[{i}]" for i in range(len(mask_names))) + ")"
            source = f"lambda rows, masks: [{element} for {heads} in {zipped}{suffix}]"
        else:
            source = f"lambda rows: [{element} for r in rows{suffix}]"
        return eval(source, self._env)  # noqa: S307 - generated by us

    def run(self, compiled: Callable[..., List[Any]],
            rows: List[Tuple[Any, ...]]) -> List[Any]:
        """Invoke a ``compile_keep`` product, supplying slow masks if any."""
        if self._slow_masks:
            return compiled(rows, [mask(rows) for mask in self._slow_masks])
        return compiled(rows)

    # -- runtime ---------------------------------------------------------
    def keep_values(self, rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
        """The value tuples satisfying every conjunct (annotation-free path)."""
        return self.run(self._keep, rows)

    def mask(self, rows: List[Tuple[Any, ...]]) -> List[bool]:
        """Per-row keep decisions (used when annotations ride along)."""
        return self.run(self._mask, rows)

    # -- compilation of one conjunct -------------------------------------
    def _fast_fragment(self, conjunct: ast.Expression, schema: OutputSchema,
                       env: Dict[str, Any], index: int) -> Optional[str]:
        if isinstance(conjunct, ast.IsNull) and isinstance(conjunct.operand,
                                                           ast.ColumnRef):
            position = schema.resolve(conjunct.operand.name,
                                      conjunct.operand.table)
            return (f"(r[{position}] is not None)" if conjunct.negated
                    else f"(r[{position}] is None)")
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op in _COMPARE_OPS:
            return self._compare_fragment(conjunct, schema, env, index)
        if isinstance(conjunct, ast.Between):
            return self._between_fragment(conjunct, schema, env, index)
        if isinstance(conjunct, ast.InList):
            return self._in_fragment(conjunct, schema, env, index)
        if isinstance(conjunct, ast.Like):
            return self._like_fragment(conjunct, schema, env, index)
        return None

    @staticmethod
    def _column_and_literal(expr: ast.BinaryOp) -> Tuple[Optional[ast.ColumnRef],
                                                         Any, Optional[str]]:
        """Decompose ``col <op> literal`` in either orientation."""
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                   "=": "=", "<>": "<>"}
        if isinstance(expr.left, ast.ColumnRef) and isinstance(expr.right,
                                                               ast.Literal):
            return expr.left, expr.right.value, expr.op
        if isinstance(expr.right, ast.ColumnRef) and isinstance(expr.left,
                                                                ast.Literal):
            return expr.right, expr.left.value, flipped[expr.op]
        return None, None, None

    @staticmethod
    def _literal_kind(value: Any) -> Optional[str]:
        """"num" / "text" when the inline fast path supports the literal."""
        if isinstance(value, bool):
            return None
        if isinstance(value, (int, float)):
            if isinstance(value, float) and value != value:
                return None  # NaN literal: slow path keeps the total order
            return "num"
        if isinstance(value, str):
            return "text"
        return None

    def _compare_fragment(self, expr: ast.BinaryOp, schema: OutputSchema,
                          env: Dict[str, Any], index: int) -> Optional[str]:
        column, literal, op = self._column_and_literal(expr)
        if column is None:
            return None
        kind = self._literal_kind(literal)
        if kind is None:
            return None
        position = schema.resolve(column.name, column.table)
        ref = f"r[{position}]"
        constant, slow = f"_k{index}", f"_s{index}"
        env[constant] = literal
        env[slow] = _slow_compare(op, literal)
        fast = f"{ref} {_PY_OP[op]} {constant}"
        if kind == "num":
            if op in (">", ">="):
                # NaN sorts above every number: NaN > x and NaN >= x hold.
                fast = f"{fast} or {ref} != {ref}"
            return _fragment_with_guard(ref, fast, "in _NUM", slow)
        return _fragment_with_guard(ref, fast, "is str", slow)

    def _between_fragment(self, expr: ast.Between, schema: OutputSchema,
                          env: Dict[str, Any], index: int) -> Optional[str]:
        if not isinstance(expr.operand, ast.ColumnRef) \
                or not isinstance(expr.low, ast.Literal) \
                or not isinstance(expr.high, ast.Literal):
            return None
        low_kind = self._literal_kind(expr.low.value)
        high_kind = self._literal_kind(expr.high.value)
        if low_kind is None or low_kind != high_kind:
            return None
        position = schema.resolve(expr.operand.name, expr.operand.table)
        ref = f"r[{position}]"
        low_name, high_name, slow = f"_lo{index}", f"_hi{index}", f"_s{index}"
        env[low_name] = expr.low.value
        env[high_name] = expr.high.value
        low_check = _slow_compare(">=", expr.low.value)
        high_check = _slow_compare("<=", expr.high.value)
        if expr.negated:
            env[slow] = lambda value: not (low_check(value) and high_check(value))
            fast = f"not ({low_name} <= {ref} <= {high_name})"
        else:
            env[slow] = lambda value: low_check(value) and high_check(value)
            fast = f"{low_name} <= {ref} <= {high_name}"
        guard = "in _NUM" if low_kind == "num" else "is str"
        return _fragment_with_guard(ref, fast, guard, slow)

    def _in_fragment(self, expr: ast.InList, schema: OutputSchema,
                     env: Dict[str, Any], index: int) -> Optional[str]:
        if not isinstance(expr.operand, ast.ColumnRef):
            return None
        if not all(isinstance(item, ast.Literal) for item in expr.items):
            return None
        values = [item.value for item in expr.items]
        kinds = {self._literal_kind(value) for value in values
                 if value is not None}
        if len(kinds) != 1 or None in kinds:
            return None
        try:
            members = frozenset(value for value in values if value is not None)
        except TypeError:
            return None
        position = schema.resolve(expr.operand.name, expr.operand.table)
        ref = f"r[{position}]"
        set_name, slow = f"_set{index}", f"_s{index}"
        env[set_name] = members
        negated = expr.negated

        def slow_contains(value: Any) -> bool:
            found = any(values_equal(value, item) for item in values)
            return (not found) if negated else found
        env[slow] = slow_contains
        fast = (f"{ref} not in {set_name}" if negated
                else f"{ref} in {set_name}")
        guard = "in _NUM" if kinds == {"num"} else "is str"
        return _fragment_with_guard(ref, fast, guard, slow)

    def _like_fragment(self, expr: ast.Like, schema: OutputSchema,
                       env: Dict[str, Any], index: int) -> Optional[str]:
        if not isinstance(expr.operand, ast.ColumnRef) \
                or not isinstance(expr.pattern, ast.Literal):
            return None
        if expr.pattern.value is None:
            return None
        position = schema.resolve(expr.operand.name, expr.operand.table)
        ref = f"r[{position}]"
        regex_name, slow = f"_re{index}", f"_s{index}"
        regex = like_to_regex(str(expr.pattern.value))
        env[regex_name] = regex
        negated = expr.negated

        def slow_like(value: Any) -> bool:
            matched = regex.match(str(value)) is not None
            return (not matched) if negated else matched
        env[slow] = slow_like
        fast = (f"{regex_name}.match({ref}) is None" if negated
                else f"{regex_name}.match({ref}) is not None")
        return _fragment_with_guard(ref, fast, "is str", slow)


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------
class AggregateState:
    """Accumulator for one aggregate call over the rows of a group.

    All accumulators are *running* — O(1) state per aggregate regardless of
    the group size, which is what lets the executor stream a global
    aggregate (no GROUP BY) over arbitrarily large inputs without buffering.
    The one exception is ``DISTINCT``, whose duplicate-detection set is
    inherently O(distinct values) — with a spill manager, a seen-set beyond
    ``spill.budget_rows`` freezes and later candidate values overflow to a
    temp file, deduplicated by hash partition when the result is computed.
    ``MIN``/``MAX`` ignore DISTINCT outright (duplicates cannot change the
    extremum), so they never build a seen-set at all.
    """

    def __init__(self, call: ast.FunctionCall, evaluator: Evaluator,
                 spill: Optional[Any] = None):
        self.name = call.name.upper()
        if self.name not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            raise PlanningError(f"unknown aggregate {self.name}")
        self.distinct = call.distinct and self.name in ("COUNT", "SUM", "AVG")
        self.is_star = call.is_star
        if not self.is_star:
            if len(call.args) != 1:
                raise PlanningError(f"{self.name} takes exactly one argument")
            self._arg = evaluator.compile(call.args[0])
        self._count = 0
        self._sum: Any = 0
        self._min: Any = None
        self._max: Any = None
        self._seen: Set[Any] = set()
        self._spill = spill if self.distinct else None
        self._overflow: Optional[Any] = None

    def add(self, row: Row) -> None:
        if self.is_star:
            self._count += 1
            return
        value = self._arg(row)
        if value is None:
            return
        if self.distinct:
            if value in self._seen:
                return
            if self._overflow is not None:
                # The seen-set is frozen at the budget: unseen candidates go
                # to disk (possibly duplicated) and accumulate on demand in
                # :meth:`result` after a partitioned dedup.
                self._overflow.append((value,), None)
                return
            self._seen.add(value)
            if self._spill is not None \
                    and len(self._seen) > self._spill.budget_rows:
                self._overflow = self._spill.new_file()
                self._event = self._spill.stats.record(
                    "distinct_aggregate", aggregate=self.name)
        self._accumulate(value)

    def _accumulate(self, value: Any) -> None:
        self._count += 1
        if self.name in ("SUM", "AVG"):
            self._sum = self._sum + value
        elif self.name == "MIN":
            if self._min is None or value < self._min:
                self._min = value
        elif self.name == "MAX":
            if self._max is None or value > self._max:
                self._max = value

    def _drain_overflow(self) -> None:
        """Dedup the spilled candidate values and fold them in.

        One level of hash partitioning bounds each dedup set to roughly
        ``distinct overflow / fanout``; candidates already in the frozen
        seen-set were never written, so membership there needs no re-check.
        """
        overflow, self._overflow = self._overflow, None
        self._event["spilled_values"] = overflow.rows_written
        fanout = self._spill.partition_count(overflow.rows_written)
        self._event["partitions"] = fanout
        parts = [self._spill.new_file() for _ in range(fanout)]
        for (value,), _ in overflow.entries():
            parts[hash(value) % fanout].append((value,), None)
        overflow.close()
        for part in parts:
            unique: Set[Any] = set()
            for (value,), _ in part.entries():
                if value not in unique:
                    unique.add(value)
                    self._accumulate(value)
            part.close()

    def result(self) -> Any:
        if self._overflow is not None:
            self._drain_overflow()
        if self.name == "COUNT":
            return self._count
        if self._count == 0:
            return None
        if self.name == "SUM":
            return self._sum
        if self.name == "AVG":
            return self._sum / self._count
        if self.name == "MIN":
            return self._min
        return self._max


def find_aggregates(expr: ast.Expression) -> List[ast.FunctionCall]:
    """Collect aggregate function calls appearing anywhere in ``expr``."""
    found: List[ast.FunctionCall] = []

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.FunctionCall):
            if node.name.upper() in AGGREGATE_FUNCTIONS:
                found.append(node)
                return
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)

    walk(expr)
    return found


def contains_aggregate(expr: ast.Expression) -> bool:
    return bool(find_aggregates(expr))


# ---------------------------------------------------------------------------
# Annotation predicates (AWHERE / AHAVING / FILTER)
# ---------------------------------------------------------------------------
class AnnotationPredicate:
    """Evaluates an A-SQL annotation condition against a single annotation."""

    _FIELDS = {"value", "body", "table", "curator", "created_at", "archived", "category"}

    def __init__(self, expr: ast.Expression):
        self._expr = expr

    def matches(self, annotation: Any) -> bool:
        value = self._evaluate(self._expr, annotation)
        return predicate_is_true(value)

    # -- recursive evaluation against one annotation ----------------------
    def _evaluate(self, expr: ast.Expression, annotation: Any) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            return self._field(expr, annotation)
        if isinstance(expr, ast.UnaryOp):
            operand = self._evaluate(expr.operand, annotation)
            if expr.op == "NOT":
                return None if operand is None else (not bool(operand))
            if expr.op == "-":
                return None if operand is None else -operand
            return operand
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, annotation)
        if isinstance(expr, ast.IsNull):
            value = self._evaluate(expr.operand, annotation)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, ast.Like):
            value = self._evaluate(expr.operand, annotation)
            pattern = self._evaluate(expr.pattern, annotation)
            if value is None or pattern is None:
                return None
            matched = bool(like_to_regex(str(pattern)).match(str(value)))
            return (not matched) if expr.negated else matched
        if isinstance(expr, ast.InList):
            value = self._evaluate(expr.operand, annotation)
            if value is None:
                return None
            items = [self._evaluate(item, annotation) for item in expr.items]
            found = any(values_equal(value, item) for item in items)
            return (not found) if expr.negated else found
        if isinstance(expr, ast.Between):
            value = self._evaluate(expr.operand, annotation)
            low = self._evaluate(expr.low, annotation)
            high = self._evaluate(expr.high, annotation)
            if value is None or low is None or high is None:
                return None
            cmp_low = compare_values(value, low)
            cmp_high = compare_values(value, high)
            if cmp_low is None or cmp_high is None:
                return None
            inside = cmp_low >= 0 and cmp_high <= 0
            return (not inside) if expr.negated else inside
        raise PlanningError(
            f"unsupported construct in annotation condition: {type(expr).__name__}"
        )

    def _binary(self, expr: ast.BinaryOp, annotation: Any) -> Any:
        op = expr.op
        left = self._evaluate(expr.left, annotation)
        right = self._evaluate(expr.right, annotation)
        if op == "AND":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return bool(left) and bool(right)
        if op == "OR":
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return bool(left) or bool(right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            cmp = compare_values(left, right)
            if cmp is None:
                return None
            return {
                "=": cmp == 0, "<>": cmp != 0, "<": cmp < 0,
                "<=": cmp <= 0, ">": cmp > 0, ">=": cmp >= 0,
            }[op]
        if op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        raise PlanningError(f"unsupported operator in annotation condition: {op!r}")

    def _field(self, ref: ast.ColumnRef, annotation: Any) -> Any:
        # Accept both  annotation.field  and bare  field  references.
        field = ref.name.lower()
        qualifier = (ref.table or "").lower()
        if qualifier not in ("", "annotation", "ann", "a"):
            raise PlanningError(
                f"annotation conditions may only reference annotation fields, "
                f"not {ref.display()!r}"
            )
        if field in ("value", "body", "annotation"):
            return annotation.body
        if field == "table":
            return annotation.annotation_table
        if field == "curator":
            return annotation.curator
        if field == "created_at":
            return annotation.created_at
        if field == "archived":
            return annotation.archived
        if field == "category":
            return annotation.category
        raise PlanningError(f"unknown annotation field {field!r}")
