"""Expression evaluation: scalar expressions, predicates, and aggregates.

Expressions are compiled against an :class:`~repro.executor.row.OutputSchema`
once and then evaluated per row.  SQL three-valued logic is approximated by
treating NULL comparisons as unknown and unknown predicates as false.

Annotation predicates (A-SQL ``AWHERE``, ``AHAVING``, ``FILTER``) are
evaluated by :class:`AnnotationPredicate` against a single annotation.  The
pseudo-columns available inside those predicates are:

``annotation`` / ``annotation.value``
    the annotation body text,
``annotation.table``
    the annotation table the annotation belongs to,
``annotation.curator``
    the user or tool that added the annotation,
``annotation.created_at``
    the timestamp the annotation was added,
``annotation.archived``
    whether the annotation is archived.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import ExecutionError, PlanningError
from repro.executor.row import OutputSchema, Row
from repro.sql import ast
from repro.types.values import compare_values, values_equal

# ---------------------------------------------------------------------------
# Scalar functions available in expressions
# ---------------------------------------------------------------------------


def _sql_length(value: Any) -> Optional[int]:
    return None if value is None else len(str(value))


def _sql_upper(value: Any) -> Optional[str]:
    return None if value is None else str(value).upper()


def _sql_lower(value: Any) -> Optional[str]:
    return None if value is None else str(value).lower()


def _sql_abs(value: Any) -> Any:
    return None if value is None else abs(value)


def _sql_round(value: Any, digits: Any = 0) -> Any:
    if value is None:
        return None
    return round(float(value), int(digits or 0))


def _sql_substr(value: Any, start: Any, length: Any = None) -> Optional[str]:
    if value is None:
        return None
    text = str(value)
    begin = int(start) - 1
    if length is None:
        return text[begin:]
    return text[begin:begin + int(length)]


def _sql_coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "LENGTH": _sql_length,
    "LEN": _sql_length,
    "UPPER": _sql_upper,
    "LOWER": _sql_lower,
    "ABS": _sql_abs,
    "ROUND": _sql_round,
    "SUBSTR": _sql_substr,
    "SUBSTRING": _sql_substr,
    "COALESCE": _sql_coalesce,
}

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (%, _) into a compiled regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


# ---------------------------------------------------------------------------
# Compiled scalar expressions
# ---------------------------------------------------------------------------
class Evaluator:
    """Compiles an AST expression against a schema and evaluates it per row."""

    def __init__(self, schema: OutputSchema):
        self.schema = schema

    def compile(self, expr: ast.Expression) -> Callable[[Row], Any]:
        return self._compile(expr)

    def evaluate(self, expr: ast.Expression, row: Row) -> Any:
        return self._compile(expr)(row)

    # -- compilation -----------------------------------------------------
    def _compile(self, expr: ast.Expression) -> Callable[[Row], Any]:
        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda row: value
        if isinstance(expr, ast.ColumnRef):
            position = self.schema.resolve(expr.name, expr.table)
            return lambda row: row.values[position]
        if isinstance(expr, ast.Star):
            raise PlanningError("'*' is only valid in a projection list or COUNT(*)")
        if isinstance(expr, ast.UnaryOp):
            return self._compile_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.FunctionCall):
            return self._compile_function(expr)
        if isinstance(expr, ast.IsNull):
            operand = self._compile(expr.operand)
            if expr.negated:
                return lambda row: operand(row) is not None
            return lambda row: operand(row) is None
        if isinstance(expr, ast.Like):
            return self._compile_like(expr)
        if isinstance(expr, ast.InList):
            return self._compile_in(expr)
        if isinstance(expr, ast.Between):
            return self._compile_between(expr)
        raise PlanningError(f"unsupported expression node {type(expr).__name__}")

    def _compile_unary(self, expr: ast.UnaryOp) -> Callable[[Row], Any]:
        operand = self._compile(expr.operand)
        if expr.op == "-":
            return lambda row: None if operand(row) is None else -operand(row)
        if expr.op == "+":
            return operand
        if expr.op == "NOT":
            def negate(row: Row) -> Optional[bool]:
                value = operand(row)
                if value is None:
                    return None
                return not bool(value)
            return negate
        raise PlanningError(f"unsupported unary operator {expr.op!r}")

    def _compile_binary(self, expr: ast.BinaryOp) -> Callable[[Row], Any]:
        op = expr.op
        left = self._compile(expr.left)
        right = self._compile(expr.right)
        if op == "AND":
            def and_(row: Row) -> Optional[bool]:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    # unknown AND false == false; otherwise unknown
                    if lhs is False or rhs is False:
                        return False
                    return None
                return bool(lhs) and bool(rhs)
            return and_
        if op == "OR":
            def or_(row: Row) -> Optional[bool]:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    if lhs is True or rhs is True:
                        return True
                    return None
                return bool(lhs) or bool(rhs)
            return or_
        if op in ("=", "<>", "<", "<=", ">", ">="):
            def compare(row: Row) -> Optional[bool]:
                cmp = compare_values(left(row), right(row))
                if cmp is None:
                    return None
                if op == "=":
                    return cmp == 0
                if op == "<>":
                    return cmp != 0
                if op == "<":
                    return cmp < 0
                if op == "<=":
                    return cmp <= 0
                if op == ">":
                    return cmp > 0
                return cmp >= 0
            return compare
        if op in ("+", "-", "*", "/", "%"):
            def arithmetic(row: Row) -> Any:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    return None
                try:
                    if op == "+":
                        return lhs + rhs
                    if op == "-":
                        return lhs - rhs
                    if op == "*":
                        return lhs * rhs
                    if op == "/":
                        if rhs == 0:
                            raise ExecutionError("division by zero")
                        result = lhs / rhs
                        return result
                    return lhs % rhs
                except TypeError as exc:
                    raise ExecutionError(
                        f"invalid operands for {op!r}: {lhs!r}, {rhs!r}"
                    ) from exc
            return arithmetic
        if op == "||":
            def concat(row: Row) -> Optional[str]:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    return None
                return str(lhs) + str(rhs)
            return concat
        raise PlanningError(f"unsupported binary operator {op!r}")

    def _compile_function(self, expr: ast.FunctionCall) -> Callable[[Row], Any]:
        name = expr.name.upper()
        if name in AGGREGATE_FUNCTIONS:
            raise PlanningError(
                f"aggregate function {name} is not allowed in this context"
            )
        function = SCALAR_FUNCTIONS.get(name)
        if function is None:
            raise PlanningError(f"unknown function {name}")
        arg_evaluators = [self._compile(arg) for arg in expr.args]
        return lambda row: function(*[evaluate(row) for evaluate in arg_evaluators])

    def _compile_like(self, expr: ast.Like) -> Callable[[Row], Any]:
        operand = self._compile(expr.operand)
        pattern_eval = self._compile(expr.pattern)
        negated = expr.negated

        def like(row: Row) -> Optional[bool]:
            value, pattern = operand(row), pattern_eval(row)
            if value is None or pattern is None:
                return None
            matched = bool(like_to_regex(str(pattern)).match(str(value)))
            return (not matched) if negated else matched
        return like

    def _compile_in(self, expr: ast.InList) -> Callable[[Row], Any]:
        operand = self._compile(expr.operand)
        item_evaluators = [self._compile(item) for item in expr.items]
        negated = expr.negated

        def contains(row: Row) -> Optional[bool]:
            value = operand(row)
            if value is None:
                return None
            found = any(values_equal(value, evaluate(row)) for evaluate in item_evaluators)
            return (not found) if negated else found
        return contains

    def _compile_between(self, expr: ast.Between) -> Callable[[Row], Any]:
        operand = self._compile(expr.operand)
        low = self._compile(expr.low)
        high = self._compile(expr.high)
        negated = expr.negated

        def between(row: Row) -> Optional[bool]:
            value = operand(row)
            lo, hi = low(row), high(row)
            if value is None or lo is None or hi is None:
                return None
            cmp_low = compare_values(value, lo)
            cmp_high = compare_values(value, hi)
            if cmp_low is None or cmp_high is None:
                return None
            inside = cmp_low >= 0 and cmp_high <= 0
            return (not inside) if negated else inside
        return between


def predicate_is_true(value: Any) -> bool:
    """SQL predicate semantics: NULL/unknown counts as not satisfied."""
    return value is True or (value not in (None, False) and bool(value))


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------
class AggregateState:
    """Accumulator for one aggregate call over the rows of a group."""

    def __init__(self, call: ast.FunctionCall, evaluator: Evaluator):
        self.name = call.name.upper()
        self.distinct = call.distinct
        self.is_star = call.is_star
        if not self.is_star:
            if len(call.args) != 1:
                raise PlanningError(f"{self.name} takes exactly one argument")
            self._arg = evaluator.compile(call.args[0])
        self._values: List[Any] = []
        self._seen: Set[Any] = set()

    def add(self, row: Row) -> None:
        if self.is_star:
            self._values.append(1)
            return
        value = self._arg(row)
        if value is None:
            return
        if self.distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._values.append(value)

    def result(self) -> Any:
        if self.name == "COUNT":
            return len(self._values)
        if not self._values:
            return None
        if self.name == "SUM":
            return sum(self._values)
        if self.name == "AVG":
            return sum(self._values) / len(self._values)
        if self.name == "MIN":
            return min(self._values)
        if self.name == "MAX":
            return max(self._values)
        raise PlanningError(f"unknown aggregate {self.name}")


def find_aggregates(expr: ast.Expression) -> List[ast.FunctionCall]:
    """Collect aggregate function calls appearing anywhere in ``expr``."""
    found: List[ast.FunctionCall] = []

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.FunctionCall):
            if node.name.upper() in AGGREGATE_FUNCTIONS:
                found.append(node)
                return
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)

    walk(expr)
    return found


def contains_aggregate(expr: ast.Expression) -> bool:
    return bool(find_aggregates(expr))


# ---------------------------------------------------------------------------
# Annotation predicates (AWHERE / AHAVING / FILTER)
# ---------------------------------------------------------------------------
class AnnotationPredicate:
    """Evaluates an A-SQL annotation condition against a single annotation."""

    _FIELDS = {"value", "body", "table", "curator", "created_at", "archived", "category"}

    def __init__(self, expr: ast.Expression):
        self._expr = expr

    def matches(self, annotation: Any) -> bool:
        value = self._evaluate(self._expr, annotation)
        return predicate_is_true(value)

    # -- recursive evaluation against one annotation ----------------------
    def _evaluate(self, expr: ast.Expression, annotation: Any) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            return self._field(expr, annotation)
        if isinstance(expr, ast.UnaryOp):
            operand = self._evaluate(expr.operand, annotation)
            if expr.op == "NOT":
                return None if operand is None else (not bool(operand))
            if expr.op == "-":
                return None if operand is None else -operand
            return operand
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, annotation)
        if isinstance(expr, ast.IsNull):
            value = self._evaluate(expr.operand, annotation)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, ast.Like):
            value = self._evaluate(expr.operand, annotation)
            pattern = self._evaluate(expr.pattern, annotation)
            if value is None or pattern is None:
                return None
            matched = bool(like_to_regex(str(pattern)).match(str(value)))
            return (not matched) if expr.negated else matched
        if isinstance(expr, ast.InList):
            value = self._evaluate(expr.operand, annotation)
            if value is None:
                return None
            items = [self._evaluate(item, annotation) for item in expr.items]
            found = any(values_equal(value, item) for item in items)
            return (not found) if expr.negated else found
        if isinstance(expr, ast.Between):
            value = self._evaluate(expr.operand, annotation)
            low = self._evaluate(expr.low, annotation)
            high = self._evaluate(expr.high, annotation)
            if value is None or low is None or high is None:
                return None
            cmp_low = compare_values(value, low)
            cmp_high = compare_values(value, high)
            if cmp_low is None or cmp_high is None:
                return None
            inside = cmp_low >= 0 and cmp_high <= 0
            return (not inside) if expr.negated else inside
        raise PlanningError(
            f"unsupported construct in annotation condition: {type(expr).__name__}"
        )

    def _binary(self, expr: ast.BinaryOp, annotation: Any) -> Any:
        op = expr.op
        left = self._evaluate(expr.left, annotation)
        right = self._evaluate(expr.right, annotation)
        if op == "AND":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return bool(left) and bool(right)
        if op == "OR":
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return bool(left) or bool(right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            cmp = compare_values(left, right)
            if cmp is None:
                return None
            return {
                "=": cmp == 0, "<>": cmp != 0, "<": cmp < 0,
                "<=": cmp <= 0, ">": cmp > 0, ">=": cmp >= 0,
            }[op]
        if op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        raise PlanningError(f"unsupported operator in annotation condition: {op!r}")

    def _field(self, ref: ast.ColumnRef, annotation: Any) -> Any:
        # Accept both  annotation.field  and bare  field  references.
        field = ref.name.lower()
        qualifier = (ref.table or "").lower()
        if qualifier not in ("", "annotation", "ann", "a"):
            raise PlanningError(
                f"annotation conditions may only reference annotation fields, "
                f"not {ref.display()!r}"
            )
        if field in ("value", "body", "annotation"):
            return annotation.body
        if field == "table":
            return annotation.annotation_table
        if field == "curator":
            return annotation.curator
        if field == "created_at":
            return annotation.created_at
        if field == "archived":
            return annotation.archived
        if field == "category":
            return annotation.category
        raise PlanningError(f"unknown annotation field {field!r}")
