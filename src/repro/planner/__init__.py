"""Planning layer: expression compilation and rewrite utilities."""

from repro.planner.expressions import (
    AggregateState,
    AnnotationPredicate,
    Evaluator,
    contains_aggregate,
    find_aggregates,
    predicate_is_true,
)
from repro.planner.plan import (
    JOIN_STRATEGIES,
    JoinPlan,
    PlanNode,
    ScanPlan,
    extract_equi_edges,
    format_plan,
    plan_select_joins,
    plan_strategies,
    plan_to_dict,
)
from repro.planner.planner import (
    combine_conjuncts,
    equality_lookups,
    lookup_value,
    push_down_conjuncts,
    referenced_columns,
    split_conjuncts,
)

__all__ = [
    "AggregateState",
    "AnnotationPredicate",
    "Evaluator",
    "contains_aggregate",
    "find_aggregates",
    "predicate_is_true",
    "combine_conjuncts",
    "equality_lookups",
    "lookup_value",
    "push_down_conjuncts",
    "referenced_columns",
    "split_conjuncts",
    "JOIN_STRATEGIES",
    "JoinPlan",
    "PlanNode",
    "ScanPlan",
    "extract_equi_edges",
    "format_plan",
    "plan_select_joins",
    "plan_strategies",
    "plan_to_dict",
]
