"""Planning layer: expression compilation and rewrite utilities."""

from repro.planner.expressions import (
    AggregateState,
    AnnotationPredicate,
    Evaluator,
    contains_aggregate,
    find_aggregates,
    predicate_is_true,
)
from repro.planner.planner import (
    combine_conjuncts,
    equality_lookups,
    push_down_conjuncts,
    referenced_columns,
    split_conjuncts,
)

__all__ = [
    "AggregateState",
    "AnnotationPredicate",
    "Evaluator",
    "contains_aggregate",
    "find_aggregates",
    "predicate_is_true",
    "combine_conjuncts",
    "equality_lookups",
    "push_down_conjuncts",
    "referenced_columns",
    "split_conjuncts",
]
