"""Streaming physical operators with annotation-aware propagation semantics.

The executor is Volcano-style: every operator takes and returns a
``Relation = (OutputSchema, Iterable[Row])`` pair whose row part is a *lazy*
iterator.  Operators do their setup work (schema derivation, expression
compilation, error checking) eagerly when called, but only touch rows when the
consumer pulls them, so a ``LIMIT`` above a pipeline of streaming operators
stops pulling — and therefore stops scanning — as soon as it is satisfied.

Pipeline breakers (sort, GROUP BY/aggregation, duplicate elimination, the
build side of hash joins, both inputs of a merge join, the inner side of a
nested loop, and the set operations) materialize *internally* but still expose
the iterator interface.  ``materialize`` converts any relation back to the
``(schema, list[Row])`` form for callers that need random access.

The propagation rules follow Section 3.4 of the paper:

* **scan** attaches to each column the annotations of that cell (from the
  propagation index of the requested annotation tables) plus any system
  status annotations for outdated cells;
* **selection** (WHERE/HAVING) passes qualifying tuples *with all their
  annotations*;
* **projection** passes only the annotations attached to the projected
  attributes; the ``PROMOTE`` clause additionally copies annotations from
  other columns onto a projected column;
* **duplicate elimination, GROUP BY, UNION, INTERSECT, EXCEPT** union the
  annotations of the tuples they combine and attach them to the output tuple;
* **AWHERE / AHAVING** pass a tuple only if some annotation satisfies the
  condition; **FILTER** keeps all tuples but drops non-matching annotations.
"""

from __future__ import annotations

import heapq
import time
from itertools import chain, islice
from operator import itemgetter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.catalog.table import Table
from repro.core.errors import ExecutionError, PlanningError
from repro.executor.row import (
    BatchedRows,
    ColumnInfo,
    OutputSchema,
    Row,
    RowBatch,
    batch_from_entries,
    concat_annotation_vectors,
    merge_annotation_vectors,
)
from repro.executor.parallel import worker_label
from repro.storage.spill import MAX_SPILL_DEPTH, SpillFile, SpillManager
from repro.planner.expressions import (
    AggregateState,
    AnnotationPredicate,
    BatchFilter,
    Evaluator,
    find_aggregates,
    predicate_is_true,
)
from repro.planner.planner import referenced_columns, split_conjuncts
from repro.sql import ast
from repro.types.values import ReverseSortKey, SortKey

#: A relation flowing between operators: an output schema plus a row
#: iterable.  Streaming operators produce one-shot generators; consumers that
#: need to iterate twice must ``materialize`` first.
Relation = Tuple[OutputSchema, Iterable[Row]]


def materialize(relation: Relation) -> Tuple[OutputSchema, List[Row]]:
    """Drain a relation's iterator into a concrete ``(schema, list)`` pair."""
    schema, rows = relation
    if isinstance(rows, BatchedRows):
        out: List[Row] = []
        for batch in rows.batches:
            out.extend(batch.to_rows())
        return schema, out
    return schema, rows if isinstance(rows, list) else list(rows)


def _as_list(rows: Iterable[Row]) -> List[Row]:
    return rows if isinstance(rows, list) else list(rows)


# ---------------------------------------------------------------------------
# Scan
# ---------------------------------------------------------------------------
class TableRowSource:
    """Annotation-attaching access to one stored table.

    Encapsulates the per-cell annotation machinery shared by full scans and
    by point fetches (index scans and the lookup side of index-nested-loop
    joins): ``propagation_index`` is a
    :class:`~repro.annotations.manager.PropagationIndex` (or ``None`` for an
    unannotated scan); ``status_annotations`` maps (tuple id, column position)
    to the synthetic outdated-status annotations from the dependency tracker.
    ``include_tuple_id`` exposes the tuple id as a leading pseudo-column named
    ``__tid__`` (used internally by DML and ADD ANNOTATION target resolution).
    """

    def __init__(self, table: Table, qualifier: str,
                 propagation_index=None,
                 status_annotations: Optional[Dict[Tuple[int, int], Any]] = None,
                 include_tuple_id: bool = False):
        self.table = table
        self.qualifier = qualifier
        self.propagation_index = propagation_index
        self.status_annotations = status_annotations
        self.include_tuple_id = include_tuple_id
        self._names = table.schema.column_names
        columns = [ColumnInfo(name, qualifier) for name in self._names]
        if include_tuple_id:
            columns = [ColumnInfo("__tid__", qualifier)] + columns
        self.schema = OutputSchema(columns)

    def make_row(self, tuple_id: int, values: Sequence[Any]) -> Row:
        if not self.attaches_annotations():
            if self.include_tuple_id:
                return Row((tuple_id,) + tuple(values))
            return Row(tuple(values))
        annotations = self.annotation_vector(tuple_id, len(self._names))
        if self.include_tuple_id:
            values = (tuple_id,) + tuple(values)
            annotations = [set()] + annotations
        return Row(tuple(values), annotations)

    def fetch(self, tuple_id: int) -> Optional[Row]:
        """The annotated row with this tuple id, or ``None`` if it is gone."""
        if not self.table.has_tuple(tuple_id):
            return None
        return self.make_row(tuple_id, self.table.read_row(tuple_id))

    def iter_rows(self) -> Iterator[Row]:
        for tuple_id, values in self.table.scan():
            yield self.make_row(tuple_id, values)

    def relation(self) -> Relation:
        return self.schema, self.iter_rows()

    # -- batched access -------------------------------------------------
    def attaches_annotations(self) -> bool:
        """True when scans must build per-cell annotation vectors."""
        return ((self.propagation_index is not None
                 and not self.propagation_index.is_empty())
                or bool(self.status_annotations))

    def annotation_vector(self, tuple_id: int, arity: int) -> List[Set[Any]]:
        annotations: List[Set[Any]] = [set() for _ in range(arity)]
        if self.propagation_index is not None and not self.propagation_index.is_empty():
            for position in range(arity):
                annotations[position] |= self.propagation_index.lookup(tuple_id, position)
        if self.status_annotations:
            for position in range(arity):
                status = self.status_annotations.get((tuple_id, position))
                if status is not None:
                    annotations[position].add(status)
        return annotations

    def iter_batches(self, batch_size: int,
                     max_rows: Optional[int] = None) -> Iterator[RowBatch]:
        """RowBatch stream in tuple-id order with a progressive size ramp.

        Batches start at one row and double up to ``batch_size`` (capped in
        steady state at the decoded page size, which lets whole pages flow
        through without a re-chunking copy), so an early-stopping consumer
        (LIMIT, ``Database.stream``) over-scans at most one row beyond what
        it pulls at the start of the ramp, while a full scan amortizes
        per-batch costs across the whole page.  ``max_rows`` is the engine's
        limit pushdown: production stops for good once that many rows have
        been emitted.
        """
        annotated = self.attaches_annotations()
        arity = len(self._names)
        if self.include_tuple_id:
            raise PlanningError("batched scans do not expose __tid__")
        target = 1
        produced = 0

        def emit(rows: List[Any]) -> RowBatch:
            if annotated:
                return RowBatch([values for _, values in rows],
                                [self.annotation_vector(tuple_id, arity)
                                 for tuple_id, _ in rows])
            return RowBatch(rows)

        for page_rows in self.table.scan_batches(with_tuple_ids=annotated):
            if max_rows is not None:
                budget = max_rows - produced
                if budget <= 0:
                    return
                if len(page_rows) > budget:
                    page_rows = page_rows[:budget]
            start = 0
            total = len(page_rows)
            while start < total:
                if start == 0 and target >= total:
                    # Whole decoded page passes through as one batch — the
                    # steady state, with no re-chunking copy at all.
                    chunk = page_rows
                    start = total
                else:
                    chunk = page_rows[start:start + target]
                    start += len(chunk)
                yield emit(chunk)
                produced += len(chunk)
                target = min(target * 2, batch_size)
            if max_rows is not None and produced >= max_rows:
                return

    def batched_relation(self, batch_size: int,
                         max_rows: Optional[int] = None) -> Relation:
        return self.schema, BatchedRows(self.iter_batches(batch_size, max_rows))


def scan_table(table: Table, qualifier: str,
               propagation_index=None,
               status_annotations: Optional[Dict[Tuple[int, int], Any]] = None,
               include_tuple_id: bool = False) -> Relation:
    """Streaming scan of a stored table, attaching annotations per cell."""
    source = TableRowSource(table, qualifier, propagation_index,
                            status_annotations, include_tuple_id)
    return source.relation()


def index_scan(source: TableRowSource, index: Any, key: Any) -> Relation:
    """Index-backed scan: fetch only the tuples whose indexed key equals ``key``.

    ``index`` is any structure with ``search(key) -> list[tuple_id]`` (B+-tree
    or hash index).  When the key is incomparable with the indexed values
    (cross-type literal), the scan degrades to a full sequential scan so that
    the pushed predicate — which the engine always applies on top — decides.
    """
    def rows() -> Iterator[Row]:
        try:
            tuple_ids = list(index.search(key))
        except TypeError:
            yield from source.iter_rows()
            return
        for tuple_id in tuple_ids:
            row = source.fetch(tuple_id)
            if row is not None:
                yield row
    return source.schema, rows()


def index_range_scan(source: TableRowSource, index: Any,
                     low: Any = None, high: Any = None,
                     include_low: bool = True, include_high: bool = True,
                     batch_size: Optional[int] = None,
                     order_position: Optional[int] = None,
                     descending: bool = False) -> Relation:
    """B-tree range scan: fetch tuples whose key falls inside [low, high].

    Rows come back in *index-key order* — the property the planner's sort
    elision relies on; ``descending`` traverses the tree in reverse for
    ``ORDER BY ... DESC``.  The bounds are advisory for correctness: the
    engine always re-applies the full pushed conjunct list on top, so a wider
    range never produces wrong answers.  When the bounds cannot be compared
    with the indexed keys (cross-type value that slipped past planning, a
    NULL or NaN bound arriving from a parameter at bind time) the scan
    degrades to a full sequential scan before yielding anything, and the
    pushed predicate decides; ``order_position`` — the key column's position,
    supplied when the engine elided a sort against this scan — makes that
    fallback re-sort, so the ordering contract survives degradation.  With
    ``batch_size`` the fetched rows are chunked into a :class:`RowBatch`
    stream for the vectorized pipeline.
    """
    def fallback_rows() -> Iterator[Row]:
        if order_position is None:
            yield from source.iter_rows()
            return
        rows = list(source.iter_rows())
        rows.sort(key=lambda row: SortKey(row.values[order_position]),
                  reverse=descending)
        yield from rows

    def unsafe_bound(value: Any) -> bool:
        # NULL and NaN bounds never reach the B-tree bisect: NULL cannot be
        # compared, and NaN-keyed rows are excluded from the structure while
        # the engine's comparison semantics may still match them — the
        # filtered sequential fallback keeps both consistent.
        return value is not None and isinstance(value, float) and value != value

    def fetched() -> Iterator[Row]:
        if unsafe_bound(low) or unsafe_bound(high):
            yield from fallback_rows()
            return
        iterator = (index.iter_range_desc(low, high, include_low, include_high)
                    if descending
                    else index.iter_range(low, high, include_low, include_high))
        try:
            first = next(iterator)
        except StopIteration:
            return
        except TypeError:
            yield from fallback_rows()
            return
        for _key, tuple_id in chain([first], iterator):
            row = source.fetch(tuple_id)
            if row is not None:
                yield row

    if batch_size is None:
        return source.schema, fetched()
    return source.schema, BatchedRows(rebatch(fetched(), batch_size))


# ---------------------------------------------------------------------------
# Batching adapters
# ---------------------------------------------------------------------------
def rebatch(rows: Iterable[Row], batch_size: int) -> Iterator[RowBatch]:
    """Chunk a row stream into progressively growing batches (lazy)."""
    iterator = iter(rows)
    target = 1
    while True:
        buffered = list(islice(iterator, target))
        if not buffered:
            return
        yield RowBatch.from_rows(buffered)
        target = min(target * 2, batch_size)


def ensure_batched(relation: Relation, batch_size: int) -> Relation:
    """Wrap a row relation in batches; no-op when it already flows batched.

    This is how pipeline breakers *produce* batches at their boundary: their
    row output is re-chunked so downstream vectorized operators (filters over
    join outputs, projections, LIMIT) stay on the batch path.
    """
    schema, rows = relation
    if isinstance(rows, BatchedRows):
        return relation
    return schema, BatchedRows(rebatch(rows, batch_size))


# ---------------------------------------------------------------------------
# Selection (data predicates)
# ---------------------------------------------------------------------------
def filter_rows(relation: Relation, predicate: ast.Expression) -> Relation:
    schema, rows = relation
    if isinstance(rows, BatchedRows):
        return _filter_batches(schema, rows, predicate)
    evaluate = Evaluator(schema).compile(predicate)

    def kept() -> Iterator[Row]:
        for row in rows:
            if predicate_is_true(evaluate(row)):
                yield row
    return schema, kept()


class FilteredBatchedRows(BatchedRows):
    """A lazily filtered batch stream that downstream operators can fuse.

    Iterating (or reading ``.batches``) applies the filter batch by batch,
    so any consumer sees the filtered relation.  A vectorized projection
    directly above instead grabs ``source``/``batch_filter`` and compiles
    filter + projection into a *single* generated comprehension — one pass
    over the batch, no intermediate kept-row list.
    """

    __slots__ = ("source", "batch_filter")

    def __init__(self, source: BatchedRows, batch_filter: BatchFilter):
        self.source = source
        self.batch_filter = batch_filter
        super().__init__(self._filtered())

    def _filtered(self) -> Iterator[RowBatch]:
        batch_filter = self.batch_filter
        for batch in self.source.batches:
            if batch.annotations is None:
                kept = batch_filter.keep_values(batch.values)
                if kept:
                    yield RowBatch(kept)
                continue
            filtered = _apply_mask(batch, batch_filter.mask(batch.values))
            if filtered is not None:
                yield filtered


def _apply_mask(batch: RowBatch, mask: List[bool]) -> Optional[RowBatch]:
    values = [v for v, keep in zip(batch.values, mask) if keep]
    if not values:
        return None
    annotations = None
    if batch.annotations is not None:
        annotations = [a for a, keep in zip(batch.annotations, mask) if keep]
    return RowBatch(values, annotations)


def _filter_batches(schema: OutputSchema, rows: BatchedRows,
                    predicate: ast.Expression) -> Relation:
    """Vectorized selection: one fused predicate pass per batch."""
    batch_filter = BatchFilter(schema, split_conjuncts(predicate))
    return schema, FilteredBatchedRows(rows, batch_filter)


# ---------------------------------------------------------------------------
# Annotation predicates (AWHERE / FILTER)
# ---------------------------------------------------------------------------
def awhere_filter(relation: Relation, condition: ast.Expression) -> Relation:
    """Pass a tuple (with all its annotations) when any annotation matches."""
    schema, rows = relation
    predicate = AnnotationPredicate(condition)

    def kept() -> Iterator[Row]:
        for row in rows:
            if any(predicate.matches(annotation)
                   for annotation in row.all_annotations()):
                yield row
    return schema, kept()


def filter_annotations(relation: Relation, condition: ast.Expression) -> Relation:
    """Keep every tuple but drop annotations that do not match the condition."""
    schema, rows = relation
    predicate = AnnotationPredicate(condition)

    def filtered() -> Iterator[Row]:
        for row in rows:
            new_annotations = [
                {annotation for annotation in anns if predicate.matches(annotation)}
                for anns in row.annotations
            ]
            yield Row(row.values, new_annotations)
    return schema, filtered()


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------
def cross_join(left: Relation, right: Relation) -> Relation:
    left_schema, left_rows = left
    right_schema, right_rows = right
    schema = left_schema.concat(right_schema)

    def rows() -> Iterator[Row]:
        inner = _as_list(right_rows)
        for left_row in left_rows:
            for right_row in inner:
                yield left_row.concat(right_row)
    return schema, rows()


def nested_loop_join(left: Relation, right: Relation,
                     condition: Optional[ast.Expression],
                     join_type: str = "INNER") -> Relation:
    """Nested-loop join; supports INNER, CROSS, and LEFT outer joins.

    The inner (right) side is materialized internally and re-iterated per
    outer row; the outer side streams.
    """
    left_schema, left_rows = left
    right_schema, right_rows = right
    schema = left_schema.concat(right_schema)
    evaluate = None
    if condition is not None:
        evaluate = Evaluator(schema).compile(condition)
    right_arity = len(right_schema)

    def rows() -> Iterator[Row]:
        inner = _as_list(right_rows)
        for left_row in left_rows:
            matched = False
            for right_row in inner:
                combined = left_row.concat(right_row)
                if evaluate is None or predicate_is_true(evaluate(combined)):
                    yield combined
                    matched = True
            if join_type == "LEFT" and not matched:
                yield left_row.concat(Row(tuple([None] * right_arity)))
    return schema, rows()


def _compile_keys(schema: OutputSchema,
                  keys: Sequence[ast.ColumnRef]) -> List[Callable[[Row], Any]]:
    evaluator = Evaluator(schema)
    return [evaluator.compile(key) for key in keys]


#: Canonical stand-in for NaN hash keys.  Python's ``dict`` treats distinct
#: NaN objects as unequal, but ``compare_values`` orders NaN equal to itself,
#: so the hash join must bucket all NaNs together to match the other
#: strategies.
_NAN_KEY = object()


def _hash_key(value: Any) -> Any:
    if isinstance(value, float) and value != value:
        return _NAN_KEY
    return value


#: Per-row entry flowing through the batched join internals: a value tuple
#: plus its annotation vector (or ``None`` — the unannotated fast path).
_Entry = Tuple[Tuple[Any, ...], Optional[List[Set[Any]]]]


#: Rows per chunk when adapting a row/entry stream to the batched shape.
_ENTRY_CHUNK_ROWS = 1024

#: Above this many external-sort runs, a parallel query pre-merges groups of
#: this size on the worker pool before the final k-way merge.
_SORT_PREMERGE_FANIN = 8


def _chunk_entries(entries: Iterable[_Entry],
                   chunk_rows: int = _ENTRY_CHUNK_ROWS
                   ) -> Iterator[Tuple[List[Tuple[Any, ...]],
                                       Optional[List[Any]]]]:
    """Chunk an entry stream into ``(values_list, annotations_list | None)``
    pairs — the shape the batched build/probe loops consume.  Annotation
    lists may contain ``None`` entries for unannotated rows."""
    iterator = iter(entries)
    while True:
        chunk = list(islice(iterator, chunk_rows))
        if not chunk:
            return
        values = [entry[0] for entry in chunk]
        if any(entry[1] is not None for entry in chunk):
            yield values, [entry[1] for entry in chunk]
        else:
            yield values, None


def _as_entry_batches(rows: Iterable[Row]
                      ) -> Iterator[Tuple[List[Tuple[Any, ...]],
                                          Optional[List[Any]]]]:
    """``(values_list, annotations_list | None)`` chunks from any row input.

    Batched inputs pass their batches through untouched (no per-row ``Row``
    allocation); row iterators chunk through :func:`_chunk_entries`.
    """
    if isinstance(rows, BatchedRows):
        for batch in rows.batches:
            yield batch.values, batch.annotations
        return
    yield from _chunk_entries((row.values, row._annotations) for row in rows)


class _HashJoin:
    """Batched hash-join core with Grace-style spilling.

    The build side inserts per batch into ``{key: [(values, annotations)]}``;
    the probe side emits matched *batches*.  When a :class:`SpillManager`
    budget is exceeded during the build, both sides are partitioned on the
    key hash into temp files and each partition pair is joined independently
    (recursing with a re-salted hash on partitions that still exceed the
    budget, up to :data:`MAX_SPILL_DEPTH`).

    Two refinements on the classic Grace scheme:

    * **Hybrid**: partition 0 of the build side stays resident in memory
      (it is already decoded when the spill triggers), so its probe rows
      join immediately instead of taking a disk round trip.  If partition 0
      alone outgrows the budget it is demoted to disk like the others.
    * **Parallel**: with ``parallel_workers`` > 0 the spilled partition
      pairs are joined on the spill manager's worker pool.  Results are
      emitted strictly in partition order (identical to the serial path);
      each worker buffers one partition's output batches, trading bounded
      memory for overlap.
    """

    def __init__(self, left_schema: OutputSchema, right_schema: OutputSchema,
                 schema: OutputSchema,
                 left_keys: Sequence[ast.ColumnRef],
                 right_keys: Sequence[ast.ColumnRef],
                 join_type: str, condition: Optional[ast.Expression],
                 spill: Optional[SpillManager],
                 spill_partitions: Optional[int]):
        self.build_keys = [Evaluator(right_schema).compile_values(key)
                           for key in right_keys]
        self.probe_keys = [Evaluator(left_schema).compile_values(key)
                           for key in left_keys]
        self.residual = (Evaluator(schema).compile_values(condition)
                         if condition is not None else None)
        self.left_arity = len(left_schema)
        self.right_arity = len(right_schema)
        self.arity = self.left_arity + self.right_arity
        self.join_type = join_type
        self.spill = spill
        self.partitions = (spill_partitions if spill_partitions
                           else (spill.partition_count() if spill else 0))
        self._pad = (None,) * self.right_arity
        #: Hybrid hash join: build partition 0 kept in memory (``None`` once
        #: demoted to disk or before any spill happens).
        self.resident: Optional[Dict[Tuple[Any, ...], List[_Entry]]] = None
        self._resident_rows = 0
        self.event: Optional[Dict[str, Any]] = None

    # -- keys ------------------------------------------------------------
    def _key_of(self, getters, values) -> Optional[Tuple[Any, ...]]:
        """Normalized key tuple, or ``None`` when any component is NULL."""
        key = []
        for getter in getters:
            value = getter(values)
            if value is None:
                return None
            if value != value:  # NaN: canonical bucket, like compare_values
                value = _NAN_KEY
            key.append(value)
        return tuple(key)

    @staticmethod
    def _bucket(key: Tuple[Any, ...], salt: int, fanout: int) -> int:
        return hash((salt, key)) % fanout

    # -- build -----------------------------------------------------------
    def build(self, right_rows: Iterable[Row]
              ) -> Tuple[Optional[Dict], Optional[List[SpillFile]]]:
        """Consume the build input; returns ``(table, None)`` in memory or
        ``(None, partition files)`` once the budget forces a spill."""
        table: Dict[Tuple[Any, ...], List[_Entry]] = {}
        budget = self.spill.budget_rows if self.spill is not None else None
        count = 0
        batches = _as_entry_batches(right_rows)
        for values_list, anns_list in batches:
            self._insert_batch(table, values_list, anns_list)
            count += len(values_list)
            if budget is not None and count > budget:
                return None, self._spill_build(table, batches)
        return table, None

    def _insert_batch(self, table: Dict, values_list, anns_list) -> None:
        setdefault = table.setdefault
        getters = self.build_keys
        if len(getters) == 1 and anns_list is None:
            # The hot path: single join key, unannotated batch.
            get = getters[0]
            for values in values_list:
                key = get(values)
                if key is None:
                    continue
                if key != key:
                    key = _NAN_KEY
                setdefault((key,), []).append((values, None))
            return
        annotations = anns_list if anns_list is not None else (None,) * len(values_list)
        for values, anns in zip(values_list, annotations):
            key = self._key_of(getters, values)
            if key is not None:
                setdefault(key, []).append((values, anns))

    def _spill_build(self, table: Dict,
                     remaining_batches) -> List[Optional[SpillFile]]:
        """Grace partitioning: dump the in-memory table plus the rest of the
        build input into hash partitions on disk — except partition 0, which
        stays resident in memory (hybrid) unless it alone exceeds the
        budget, in which case :meth:`_demote_resident` pushes it to disk."""
        fanout = self.partitions
        budget = self.spill.budget_rows
        files: List[Optional[SpillFile]] = \
            [None] + [self.spill.new_file() for _ in range(fanout - 1)]
        self.resident = {}
        self._resident_rows = 0
        self.event = self.spill.stats.record("hash_join", partitions=fanout,
                                             recursive_splits=0, hybrid=True)

        def add(key: Tuple[Any, ...], values, anns) -> None:
            bucket = self._bucket(key, 0, fanout)
            if bucket == 0 and self.resident is not None:
                self.resident.setdefault(key, []).append((values, anns))
                self._resident_rows += 1
                if self._resident_rows > budget:
                    self._demote_resident(files)
                return
            files[bucket].append(values, anns)

        for key, bucket_rows in table.items():
            for values, anns in bucket_rows:
                add(key, values, anns)
        for values_list, anns_list in remaining_batches:
            annotations = (anns_list if anns_list is not None
                           else (None,) * len(values_list))
            for values, anns in zip(values_list, annotations):
                key = self._key_of(self.build_keys, values)
                if key is not None:
                    add(key, values, anns)
        resident_rows = self._resident_rows if self.resident is not None else 0
        self.event["build_rows"] = resident_rows + sum(
            f.rows_written for f in files if f is not None)
        self.event["resident_build_rows"] = resident_rows
        return files

    def _demote_resident(self, files: List[Optional[SpillFile]]) -> None:
        """Partition 0 outgrew the budget on its own: spill it after all."""
        handle = self.spill.new_file()
        for bucket_rows in self.resident.values():
            for values, anns in bucket_rows:
                handle.append(values, anns)
        files[0] = handle
        self.resident = None
        self._resident_rows = 0
        self.event["hybrid"] = False

    def _table_from_entries(self, entries: Iterable[_Entry]) -> Dict:
        table: Dict[Tuple[Any, ...], List[_Entry]] = {}
        setdefault = table.setdefault
        for values, anns in entries:
            key = self._key_of(self.build_keys, values)
            if key is not None:
                setdefault(key, []).append((values, anns))
        return table

    # -- probe (in-memory table) ----------------------------------------
    def _probe_one_batch(self, table: Dict, values_list,
                         anns_list) -> Optional[RowBatch]:
        """Probe one batch against the table, emitting one matched batch."""
        out_values: List[Tuple[Any, ...]] = []
        out_anns: List[Optional[List[Set[Any]]]] = []
        getters = self.probe_keys
        left_join = self.join_type == "LEFT"
        residual = self.residual
        pad = self._pad
        get_single = getters[0] if len(getters) == 1 else None
        for index, values in enumerate(values_list):
            lann = anns_list[index] if anns_list is not None else None
            if get_single is not None:
                key = get_single(values)
                if key is not None and key != key:
                    key = _NAN_KEY
                key = (key,) if key is not None else None
            else:
                key = self._key_of(getters, values)
            matched = False
            if key is not None:
                for rvalues, ranns in table.get(key, ()):
                    combined = values + rvalues
                    if residual is not None \
                            and not predicate_is_true(residual(combined)):
                        continue
                    out_values.append(combined)
                    out_anns.append(concat_annotation_vectors(
                        lann, ranns, self.left_arity, self.right_arity))
                    matched = True
            if left_join and not matched:
                out_values.append(values + pad)
                out_anns.append(concat_annotation_vectors(
                    lann, None, self.left_arity, self.right_arity))
        if not out_values:
            return None
        return batch_from_entries(out_values, out_anns, self.arity)

    def probe_batches(self, table: Dict,
                      left_rows: Iterable[Row]) -> Iterator[RowBatch]:
        for values_list, anns_list in _as_entry_batches(left_rows):
            batch = self._probe_one_batch(table, values_list, anns_list)
            if batch is not None:
                yield batch

    def probe_rows(self, table: Dict, left_rows: Iterable[Row]) -> Iterator[Row]:
        """Row-at-a-time probe, preserving the row pipeline's laziness."""
        residual = self.residual
        left_join = self.join_type == "LEFT"
        for row in left_rows:
            values = row.values
            lann = row._annotations
            key = self._key_of(self.probe_keys, values)
            matched = False
            if key is not None:
                for rvalues, ranns in table.get(key, ()):
                    combined = values + rvalues
                    if residual is not None \
                            and not predicate_is_true(residual(combined)):
                        continue
                    yield Row(combined, concat_annotation_vectors(
                        lann, ranns, self.left_arity, self.right_arity))
                    matched = True
            if left_join and not matched:
                yield Row(values + self._pad, concat_annotation_vectors(
                    lann, None, self.left_arity, self.right_arity))

    # -- spilled (Grace) path --------------------------------------------
    def _probe_resident(self, key: Tuple[Any, ...], values, anns,
                        out_values: List, out_anns: List) -> None:
        """Probe one row against the resident (hybrid) partition-0 table."""
        residual = self.residual
        matched = False
        for rvalues, ranns in self.resident.get(key, ()):
            combined = values + rvalues
            if residual is not None \
                    and not predicate_is_true(residual(combined)):
                continue
            out_values.append(combined)
            out_anns.append(concat_annotation_vectors(
                anns, ranns, self.left_arity, self.right_arity))
            matched = True
        if self.join_type == "LEFT" and not matched:
            out_values.append(values + self._pad)
            out_anns.append(concat_annotation_vectors(
                anns, None, self.left_arity, self.right_arity))

    def grace_batches(self, build_files: List[Optional[SpillFile]],
                      left_rows: Iterable[Row]) -> Iterator[RowBatch]:
        """Partition the probe side to match the spilled build partitions,
        then join each partition pair."""
        fanout = len(build_files)
        hybrid = self.resident is not None
        probe_files: List[Optional[SpillFile]] = [
            None if (index == 0 and hybrid) else self.spill.new_file()
            for index in range(fanout)]
        left_join = self.join_type == "LEFT"
        resident_probe_rows = 0
        for values_list, anns_list in _as_entry_batches(left_rows):
            out_values: List[Tuple[Any, ...]] = []
            out_anns: List[Optional[List[Set[Any]]]] = []
            annotations = (anns_list if anns_list is not None
                           else (None,) * len(values_list))
            for values, anns in zip(values_list, annotations):
                key = self._key_of(self.probe_keys, values)
                if key is None:
                    # NULL probe keys match nothing: LEFT pads immediately,
                    # INNER drops the row without spilling it.
                    if left_join:
                        out_values.append(values + self._pad)
                        out_anns.append(concat_annotation_vectors(
                            anns, None, self.left_arity, self.right_arity))
                    continue
                bucket = self._bucket(key, 0, fanout)
                if bucket == 0 and hybrid:
                    # Hybrid: partition 0's build side never left memory,
                    # so its probe rows join right here — no disk round
                    # trip for either side of this partition.
                    resident_probe_rows += 1
                    self._probe_resident(key, values, anns,
                                         out_values, out_anns)
                    continue
                probe_files[bucket].append(values, anns)
            if out_values:
                yield batch_from_entries(out_values, out_anns, self.arity)
        self.event["probe_rows"] = resident_probe_rows + sum(
            f.rows_written for f in probe_files if f is not None)
        self.event["resident_probe_rows"] = resident_probe_rows
        self.resident = None
        yield from self._join_partitions(build_files, probe_files)

    def _join_partitions(self, build_files: List[Optional[SpillFile]],
                         probe_files: List[Optional[SpillFile]]
                         ) -> Iterator[RowBatch]:
        """Join the spilled partition pairs, fanning out across the worker
        pool when the query runs parallel.  Output order is strictly
        partition order either way."""
        pairs = [(index, build, probe)
                 for index, (build, probe)
                 in enumerate(zip(build_files, probe_files))
                 if build is not None]
        stats = self.spill.stats

        def join_pair(pair) -> List[RowBatch]:
            index, build_file, probe_file = pair
            started = time.perf_counter()
            batches = list(self._join_partition(build_file, probe_file,
                                                depth=1))
            stats.note_partition(
                self.event, partition=index,
                rows=sum(len(batch.values) for batch in batches),
                seconds=time.perf_counter() - started, worker=worker_label())
            return batches

        parallel = self.spill.parallel
        if not parallel.parallel or len(pairs) <= 1:
            # Serial: stream each partition's output instead of buffering it.
            for index, build_file, probe_file in pairs:
                started = time.perf_counter()
                rows = 0
                for batch in self._join_partition(build_file, probe_file,
                                                  depth=1):
                    rows += len(batch.values)
                    yield batch
                stats.note_partition(
                    self.event, partition=index, rows=rows,
                    seconds=time.perf_counter() - started,
                    worker=worker_label())
            return
        for batches in parallel.map_ordered(join_pair, pairs):
            yield from batches

    def _join_partition(self, build_file: SpillFile, probe_file: SpillFile,
                        depth: int) -> Iterator[RowBatch]:
        budget = self.spill.budget_rows
        if build_file.rows_written > budget and depth < MAX_SPILL_DEPTH:
            yield from self._repartition(build_file, probe_file, depth)
            return
        table = self._table_from_entries(build_file.entries())
        build_file.close()
        for values_list, anns_list in _chunk_entries(probe_file.entries()):
            batch = self._probe_one_batch(table, values_list, anns_list)
            if batch is not None:
                yield batch
        probe_file.close()

    def _repartition(self, build_file: SpillFile, probe_file: SpillFile,
                     depth: int) -> Iterator[RowBatch]:
        """An oversized partition: split it again with a re-salted hash."""
        fanout = self.partitions
        salt = depth
        self.spill.stats.note_event(self.event, "recursive_splits")
        sub_build = [self.spill.new_file() for _ in range(fanout)]
        for values, anns in build_file.entries():
            key = self._key_of(self.build_keys, values)
            sub_build[self._bucket(key, salt, fanout)].append(values, anns)
        build_file.close()
        next_depth = depth + 1
        if max(f.rows_written for f in sub_build) == \
                sum(f.rows_written for f in sub_build):
            # Rehashing did not split the rows (one dominant key): further
            # recursion cannot help, so join the partition in memory.
            next_depth = MAX_SPILL_DEPTH + 1
        sub_probe = [self.spill.new_file() for _ in range(fanout)]
        for values, anns in probe_file.entries():
            key = self._key_of(self.probe_keys, values)
            sub_probe[self._bucket(key, salt, fanout)].append(values, anns)
        probe_file.close()
        for build_part, probe_part in zip(sub_build, sub_probe):
            yield from self._join_partition(build_part, probe_part, next_depth)


def hash_join(left: Relation, right: Relation,
              left_keys: Sequence[ast.ColumnRef],
              right_keys: Sequence[ast.ColumnRef],
              join_type: str = "INNER",
              condition: Optional[ast.Expression] = None,
              spill: Optional[SpillManager] = None,
              spill_partitions: Optional[int] = None) -> Relation:
    """Equi-join by hashing the right (build) side on its key columns.

    The build side is the pipeline breaker; the probe (left) side streams.
    Both sides are *batch-aware*: a batched build input inserts whole batches
    into the hash table and a batched probe input emits matched
    :class:`RowBatch` es directly (row inputs keep the row-at-a-time path, so
    the "row" pipeline's laziness contract is unchanged).  Annotation
    propagation is identical to the nested loop: the output row concatenates
    the input rows together with their per-column annotation sets.  NULL keys
    never match (SQL semantics); ``condition`` is an extra predicate
    evaluated on the combined row before a match is accepted, which keeps
    LEFT join padding correct for composite ON clauses.

    With ``spill`` (a :class:`~repro.storage.spill.SpillManager`), a build
    side exceeding ``spill.budget_rows`` switches to a Grace hash join:
    both inputs are hash-partitioned into temp files (``spill_partitions``
    is the planner's fan-out hint) and partition pairs are joined
    independently, recursing on oversized partitions.
    """
    left_schema, left_rows = left
    right_schema, right_rows = right
    if len(left_keys) != len(right_keys) or not left_keys:
        raise PlanningError("hash join requires matching, non-empty key lists")
    schema = left_schema.concat(right_schema)
    joiner = _HashJoin(left_schema, right_schema, schema, left_keys,
                       right_keys, join_type, condition, spill,
                       spill_partitions)

    def out_batches() -> Iterator[RowBatch]:
        table, files = joiner.build(right_rows)
        if files is None:
            yield from joiner.probe_batches(table, left_rows)
        else:
            yield from joiner.grace_batches(files, left_rows)

    def out_rows() -> Iterator[Row]:
        table, files = joiner.build(right_rows)
        if files is None:
            yield from joiner.probe_rows(table, left_rows)
        else:
            for batch in joiner.grace_batches(files, left_rows):
                yield from batch.to_rows()

    if isinstance(left_rows, BatchedRows):
        return schema, BatchedRows(out_batches())
    return schema, out_rows()


class _SpillableRowBuffer:
    """A row buffer that overflows to a spill file past the budget.

    Below the budget it is a plain list; beyond it, the buffered rows are
    written to a temp file and later additions append directly.  Encounter
    order is preserved either way, and :meth:`iterate` may be called
    repeatedly (spill files rewind on each read) — which is what lets a
    merge join re-scan an oversized duplicate group per outer row.
    """

    __slots__ = ("spill", "budget", "rows", "file", "count", "on_spill")

    def __init__(self, spill: Optional[SpillManager],
                 on_spill: Optional[Callable[[], None]] = None):
        self.spill = spill
        self.budget = spill.budget_rows if spill is not None else None
        self.rows: List[Row] = []
        self.file: Optional[SpillFile] = None
        self.count = 0
        self.on_spill = on_spill

    def add(self, row: Row) -> None:
        self.count += 1
        if self.file is not None:
            self.file.append(row.values, row._annotations)
            return
        self.rows.append(row)
        if self.budget is not None and len(self.rows) > self.budget:
            self.file = self.spill.new_file()
            for buffered in self.rows:
                self.file.append(buffered.values, buffered._annotations)
            self.rows = []
            if self.on_spill is not None:
                self.on_spill()

    def iterate(self) -> Iterator[Row]:
        if self.file is not None:
            return (Row(values, anns) for values, anns in self.file.entries())
        return iter(self.rows)

    def close(self) -> None:
        if self.file is not None:
            self.file.close()
            self.file = None
        self.rows = []


def merge_join(left: Relation, right: Relation,
               left_keys: Sequence[ast.ColumnRef],
               right_keys: Sequence[ast.ColumnRef],
               join_type: str = "INNER",
               condition: Optional[ast.Expression] = None,
               spill: Optional[SpillManager] = None) -> Relation:
    """Sort-merge equi-join: sort both sides on the keys and merge groups.

    Both inputs are pipeline breakers (they must be sorted), but the merge
    itself emits output rows incrementally.  With ``spill``, every buffer is
    bounded by ``spill.budget_rows``: each side beyond the budget sorts
    externally (runs + k-way merge, ties preferring earlier input — the same
    order a stable in-memory sort produces), an oversized right duplicate
    group spills and is re-scanned from disk per outer row, and LEFT joins'
    unmatched/NULL-key buffers overflow to disk as well.
    """
    left_schema, left_rows_in = left
    right_schema, right_rows_in = right
    if len(left_keys) != len(right_keys) or not left_keys:
        raise PlanningError("merge join requires matching, non-empty key lists")
    schema = left_schema.concat(right_schema)
    left_getters = _compile_keys(left_schema, left_keys)
    right_getters = _compile_keys(right_schema, right_keys)
    residual = Evaluator(schema).compile(condition) if condition is not None else None
    right_arity = len(right_schema)
    budget = spill.budget_rows if spill is not None else None

    event: List[Optional[Dict[str, Any]]] = [None]

    def note_spill(key: str) -> None:
        if event[0] is None:
            event[0] = spill.stats.record("merge_join", sort_runs=0,
                                          spilled_groups=0,
                                          spilled_unmatched=0)
        spill.stats.note_event(event[0], key)

    def sorted_pairs(rows_in: Iterable[Row], getters,
                     nulls: Optional[_SpillableRowBuffer]
                     ) -> Iterator[Tuple[Tuple[Any, ...], Row]]:
        """``(sort key, row)`` pairs in key order; NULL-keyed rows are
        diverted to ``nulls`` (or dropped).  External sort past the budget."""
        def key_of(row: Row) -> Optional[Tuple[Any, ...]]:
            key = tuple(getter(row) for getter in getters)
            if any(value is None for value in key):
                return None
            return tuple(SortKey(value) for value in key)

        keyed: List[Tuple[Tuple[Any, ...], Row]] = []
        runs: List[SpillFile] = []
        for row in rows_in:
            key = key_of(row)
            if key is None:
                if nulls is not None:
                    nulls.add(row)
                continue
            keyed.append((key, row))
            if budget is not None and len(keyed) >= budget:
                keyed.sort(key=itemgetter(0))
                run = spill.new_file()
                for _, sorted_row in keyed:
                    run.append(sorted_row.values, sorted_row._annotations)
                runs.append(run)
                keyed = []
                note_spill("sort_runs")
        keyed.sort(key=itemgetter(0))
        if not runs:
            yield from keyed
            return

        def run_pairs(run: SpillFile) -> Iterator[Tuple[Tuple[Any, ...], Row]]:
            for values, anns in run.entries():
                row = Row(values, anns)
                yield key_of(row), row

        streams = [run_pairs(run) for run in runs]
        if keyed:
            streams.append(iter(keyed))
        yield from heapq.merge(*streams, key=itemgetter(0))
        for run in runs:
            run.close()

    def rows() -> Iterator[Row]:
        left_join = join_type == "LEFT"
        # Emission order for LEFT padding matches the classic in-memory
        # path: NULL-keyed left rows first, then unmatched rows in merge
        # order, then the sorted tail — all after every matched row.
        null_lefts = _SpillableRowBuffer(spill) if left_join else None
        unmatched = (_SpillableRowBuffer(
            spill, on_spill=lambda: note_spill("spilled_unmatched"))
            if left_join else None)
        left_pairs = sorted_pairs(left_rows_in, left_getters, null_lefts)
        right_pairs = sorted_pairs(right_rows_in, right_getters, None)

        l = next(left_pairs, None)
        r = next(right_pairs, None)
        while l is not None and r is not None:
            left_key, right_key = l[0], r[0]
            if left_key < right_key:
                if left_join:
                    unmatched.add(l[1])
                l = next(left_pairs, None)
            elif right_key < left_key:
                r = next(right_pairs, None)
            else:
                group = _SpillableRowBuffer(
                    spill, on_spill=lambda: note_spill("spilled_groups"))
                while r is not None and r[0] == left_key:
                    group.add(r[1])
                    r = next(right_pairs, None)
                while l is not None and l[0] == left_key:
                    left_row = l[1]
                    matched = False
                    for right_row in group.iterate():
                        combined = left_row.concat(right_row)
                        if residual is None \
                                or predicate_is_true(residual(combined)):
                            yield combined
                            matched = True
                    if left_join and not matched:
                        unmatched.add(left_row)
                    l = next(left_pairs, None)
                group.close()
        if left_join:
            while l is not None:
                unmatched.add(l[1])
                l = next(left_pairs, None)
            pad = Row(tuple([None] * right_arity))
            for left_row in null_lefts.iterate():
                yield left_row.concat(pad)
            for left_row in unmatched.iterate():
                yield left_row.concat(pad)
            null_lefts.close()
            unmatched.close()
    return schema, rows()


def index_nested_loop_join(left: Relation, source: TableRowSource, index: Any,
                           left_keys: Sequence[ast.ColumnRef],
                           right_keys: Sequence[ast.ColumnRef],
                           join_type: str = "INNER",
                           condition: Optional[ast.Expression] = None,
                           right_filter: Optional[ast.Expression] = None) -> Relation:
    """Index-nested-loop join: probe a secondary index per streamed left row.

    For each left row the key values (``left_keys``, already permuted into the
    index's column order) are looked up in ``index`` (``search(key) ->
    tuple_ids``) and the matching base-table rows are fetched — and annotated —
    through ``source``.  ``right_filter`` re-applies the conjuncts pushed down
    to the right table (evaluated on the fetched row before the join);
    ``condition`` is the extra non-equi predicate evaluated on the combined
    row, which keeps LEFT padding correct.

    NULL probe keys never match (SQL semantics).  NaN probe keys — or keys the
    index cannot compare — fall back to a one-time materialized scan of the
    right side compared with the engine's NaN = NaN equality, so the operator
    stays observationally equivalent to the hash and merge joins.
    """
    left_schema, left_rows = left
    right_schema = source.schema
    if len(left_keys) != len(right_keys) or not left_keys:
        raise PlanningError("index join requires matching, non-empty key lists")
    schema = left_schema.concat(right_schema)
    probe = _compile_keys(left_schema, left_keys)
    inner_keys = _compile_keys(right_schema, right_keys)
    residual = Evaluator(schema).compile(condition) if condition is not None else None
    rfilter = (Evaluator(right_schema).compile(right_filter)
               if right_filter is not None else None)
    right_arity = len(right_schema)

    def passes_filter(row: Row) -> bool:
        return rfilter is None or predicate_is_true(rfilter(row))

    def rows() -> Iterator[Row]:
        fallback: Optional[List[Tuple[Tuple[Any, ...], Row]]] = None

        def fallback_matches(key_values: List[Any]) -> Iterator[Row]:
            nonlocal fallback
            if fallback is None:
                fallback = [
                    (tuple(_hash_key(getter(row)) for getter in inner_keys), row)
                    for row in source.iter_rows() if passes_filter(row)
                ]
            wanted = tuple(_hash_key(value) for value in key_values)
            for key, row in fallback:
                if key == wanted:
                    yield row

        def matches(key_values: List[Any]) -> Iterator[Row]:
            if any(isinstance(value, float) and value != value
                   for value in key_values):
                yield from fallback_matches(key_values)
                return
            key = key_values[0] if len(key_values) == 1 else tuple(key_values)
            try:
                tuple_ids = list(index.search(key))
            except TypeError:
                yield from fallback_matches(key_values)
                return
            for tuple_id in tuple_ids:
                row = source.fetch(tuple_id)
                if row is not None and passes_filter(row):
                    yield row

        for left_row in left_rows:
            key_values = [getter(left_row) for getter in probe]
            matched = False
            if not any(value is None for value in key_values):
                for right_row in matches(key_values):
                    combined = left_row.concat(right_row)
                    if residual is None or predicate_is_true(residual(combined)):
                        yield combined
                        matched = True
            if join_type == "LEFT" and not matched:
                yield left_row.concat(Row(tuple([None] * right_arity)))
    return schema, rows()


# ---------------------------------------------------------------------------
# Projection (with PROMOTE)
# ---------------------------------------------------------------------------
def _annotation_sources(expr: ast.Expression, schema: OutputSchema) -> List[int]:
    """Positions whose annotations flow to the output column of ``expr``."""
    positions = []
    for ref in referenced_columns(expr):
        position = schema.try_resolve(ref.name, ref.table)
        if position is not None:
            positions.append(position)
    return positions


def _projection_spec(schema: OutputSchema, items: Sequence[ast.SelectItem],
                     ) -> Tuple[OutputSchema, List[Any],
                                List[Callable[[Tuple[Any, ...]], Any]],
                                List[List[int]]]:
    """Expand a projection list into output columns, getters, and sources.

    Returns ``(output schema, positions-or-None, value getters, annotation
    source positions)``: each projected item is either a plain input position
    (``positions[i]`` is an int — the vectorized gather path) or a compiled
    expression over the input value tuple.  Resolution errors surface
    eagerly, before any row is pulled.
    """
    evaluator = Evaluator(schema)
    output_columns: List[ColumnInfo] = []
    positions: List[Optional[int]] = []
    getters: List[Callable[[Tuple[Any, ...]], Any]] = []
    annotation_sources: List[List[int]] = []

    for item in items:
        expr = item.expr
        if isinstance(expr, ast.Star):
            star_positions = (range(len(schema))
                              if expr.table is None
                              else schema.positions_for_qualifier(expr.table))
            star_positions = list(star_positions)
            if expr.table is not None and not star_positions:
                raise PlanningError(f"unknown table alias {expr.table!r} in projection")
            for position in star_positions:
                column = schema.columns[position]
                if column.name == "__tid__":
                    continue
                output_columns.append(ColumnInfo(column.name, column.qualifier))
                positions.append(position)
                getters.append(itemgetter(position))
                annotation_sources.append([position])
            continue
        name = item.alias
        if name is None:
            name = expr.name if isinstance(expr, ast.ColumnRef) else f"expr_{len(output_columns) + 1}"
        sources = _annotation_sources(expr, schema)
        for promoted in item.promote:
            position = schema.try_resolve(promoted.name, promoted.table)
            if position is None:
                raise PlanningError(
                    f"PROMOTE references unknown column {promoted.display()!r}"
                )
            sources.append(position)
        output_columns.append(ColumnInfo(name))
        if isinstance(expr, ast.ColumnRef):
            position = schema.resolve(expr.name, expr.table)
            positions.append(position)
            getters.append(itemgetter(position))
        else:
            positions.append(None)
            getters.append(evaluator.compile_values(expr))
        annotation_sources.append(sources)
    return OutputSchema(output_columns), positions, getters, annotation_sources


def project(relation: Relation, items: Sequence[ast.SelectItem]) -> Relation:
    """Projection: only annotations of projected (or PROMOTEd) columns survive."""
    schema, rows = relation
    output_schema, positions, getters, annotation_sources = \
        _projection_spec(schema, items)

    if isinstance(rows, BatchedRows):
        return output_schema, BatchedRows(
            _project_batches(rows, positions, getters, annotation_sources))

    def output_rows() -> Iterator[Row]:
        for row in rows:
            row_values = row.values
            values = tuple(getter(row_values) for getter in getters)
            if row._annotations is None:
                yield Row(values)
                continue
            row_annotations = row.annotations
            annotations = []
            for sources in annotation_sources:
                merged: Set[Any] = set()
                for position in sources:
                    merged |= row_annotations[position]
                annotations.append(merged)
            yield Row(values, annotations)
    return output_schema, output_rows()


def _project_batches(rows: BatchedRows, positions: List[Optional[int]],
                     getters: List[Callable[[Tuple[Any, ...]], Any]],
                     annotation_sources: List[List[int]]) -> Iterator[RowBatch]:
    """Vectorized projection: a C-level gather for plain column lists.

    When the input is a :class:`FilteredBatchedRows` and the projection is a
    plain column gather, selection and projection fuse into one generated
    comprehension — ``[(r[i], r[j]) for r in rows if <predicate>]`` — so a
    scan → filter → project pipeline does a single pass per batch.
    """
    gather = None
    pure_gather = positions and all(position is not None for position in positions)
    if pure_gather:
        if len(positions) == 1:
            single = itemgetter(positions[0])
            gather = lambda values: [(v,) for v in map(single, values)]
        else:
            many = itemgetter(*positions)
            gather = lambda values: list(map(many, values))

    def project_annotated(batch: RowBatch, out_values: List[Tuple[Any, ...]]
                          ) -> RowBatch:
        out_annotations = []
        for row_annotations in batch.annotations:
            vector = []
            for sources in annotation_sources:
                merged: Set[Any] = set()
                for position in sources:
                    merged |= row_annotations[position]
                vector.append(merged)
            out_annotations.append(vector)
        return RowBatch(out_values, out_annotations)

    if pure_gather and isinstance(rows, FilteredBatchedRows):
        batch_filter = rows.batch_filter
        tail = "," if len(positions) == 1 else ""
        projection = "(" + ", ".join(f"r[{p}]" for p in positions) + tail + ")"
        fused = batch_filter.compile_keep(projection)
        for batch in rows.source.batches:
            if batch.annotations is None:
                out_values = batch_filter.run(fused, batch.values)
                if out_values:
                    yield RowBatch(out_values)
                continue
            filtered = _apply_mask(batch, batch_filter.mask(batch.values))
            if filtered is not None:
                yield project_annotated(filtered, gather(filtered.values))
        return

    for batch in rows.batches:
        if gather is not None:
            out_values = gather(batch.values)
        else:
            out_values = [tuple(getter(row) for getter in getters)
                          for row in batch.values]
        if batch.annotations is None:
            yield RowBatch(out_values)
            continue
        yield project_annotated(batch, out_values)


# ---------------------------------------------------------------------------
# Grouping and aggregation
# ---------------------------------------------------------------------------
def group_and_aggregate(relation: Relation, group_by: Sequence[ast.Expression],
                        items: Sequence[ast.SelectItem],
                        having: Optional[ast.Expression] = None,
                        ahaving: Optional[ast.Expression] = None,
                        spill: Optional[SpillManager] = None,
                        input_rows_hint: Optional[float] = None) -> Relation:
    """GROUP BY + aggregate evaluation with annotation union per group.

    A pipeline breaker: every input row must be seen before the first group
    can be emitted.  The output tuple of each group carries, on every output
    column, the union of all annotations of the group's input rows (the
    paper's rule for operators that combine multiple tuples into one).

    Memory bounding: a query with aggregates but *no* GROUP BY streams its
    single global group through incremental :class:`AggregateState`
    accumulators (O(1) memory regardless of input size).  Keyed grouping
    buffers member rows; with ``spill`` set, an input exceeding
    ``spill.budget_rows`` is hash-partitioned on the group key into temp
    files and each partition is grouped independently (rows of one group
    always share a partition, so the results are exact), recursing on
    oversized partitions.  Group keys bucket NaN values together (the
    ``compare_values`` order, matching the hash join), so partitioning and
    the in-memory dict agree.  ``input_rows_hint`` (the cost model's input
    estimate) sizes the spill fan-out, matching EXPLAIN's prediction.
    """
    schema, rows = relation
    evaluator = Evaluator(schema)
    group_keys = [evaluator.compile(expr) for expr in group_by]
    arity = len(schema)

    # Column list of the output (checked eagerly).
    output_columns: List[ColumnInfo] = []
    for index, item in enumerate(items):
        if isinstance(item.expr, ast.Star):
            raise PlanningError("'*' cannot be used together with GROUP BY / aggregates")
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, ast.ColumnRef):
            name = item.expr.name
        elif isinstance(item.expr, ast.FunctionCall):
            name = item.expr.name.lower()
        else:
            name = f"expr_{index + 1}"
        output_columns.append(ColumnInfo(name))
    output_schema = OutputSchema(output_columns)

    ahaving_predicate = AnnotationPredicate(ahaving) if ahaving is not None else None

    def normalized_key(row: Row) -> Tuple[Any, ...]:
        return tuple(_hash_key(key(row)) for key in group_keys)

    def finish_group(values: List[Any], union_all: Set[Any],
                     passed_having: bool) -> Optional[Row]:
        if not passed_having:
            return None
        if ahaving_predicate is not None:
            if not any(ahaving_predicate.matches(a) for a in union_all):
                return None
        annotations = [set(union_all) for _ in values]
        return Row(tuple(values), annotations)

    def emit_group(members: List[Row]) -> Optional[Row]:
        representative = members[0] if members else None
        values = [_evaluate_group_expression(item.expr, evaluator, members,
                                             representative)
                  for item in items]
        union_all: Set[Any] = set()
        if members:
            for anns in merge_annotation_vectors(members, arity):
                union_all |= anns
        passed = True
        if having is not None:
            passed = predicate_is_true(
                _evaluate_group_expression(having, evaluator, members,
                                           representative))
        return finish_group(values, union_all, passed)

    def stream_global_group(row_iterator: Iterable[Row]) -> Optional[Row]:
        """One pass over the input with incremental aggregate states — the
        global group never buffers its member rows."""
        aggregates: List[ast.FunctionCall] = []
        for item in items:
            aggregates.extend(find_aggregates(item.expr))
        if having is not None:
            aggregates.extend(find_aggregates(having))
        states = [(aggregate, AggregateState(aggregate, evaluator, spill))
                  for aggregate in aggregates]
        representative: Optional[Row] = None
        union_all: Set[Any] = set()
        for row in row_iterator:
            if representative is None:
                representative = row
            for _, state in states:
                state.add(row)
            if row._annotations is not None:
                for anns in row._annotations:
                    union_all |= anns
        results = {id(aggregate): state.result() for aggregate, state in states}

        def evaluate(expr: ast.Expression) -> Any:
            if not find_aggregates(expr):
                if representative is None:
                    return None
                return evaluator.compile(expr)(representative)
            return _evaluate_with_aggregates(expr, evaluator, representative,
                                             results)

        values = [evaluate(item.expr) for item in items]
        passed = True
        if having is not None:
            passed = predicate_is_true(evaluate(having))
        return finish_group(values, union_all, passed)

    def grouped_partition(entries: Iterable[_Entry],
                          total_rows: int, depth: int) -> Iterator[Row]:
        """Group one spilled partition, re-partitioning while oversized."""
        budget = spill.budget_rows
        if total_rows > budget and depth < MAX_SPILL_DEPTH:
            fanout = spill.partition_count(total_rows)
            files = [spill.new_file() for _ in range(fanout)]
            for values, anns in entries:
                row = Row(values, anns)
                bucket = hash((depth, normalized_key(row))) % fanout
                files[bucket].append(values, anns)
            split = max(f.rows_written for f in files) < \
                sum(f.rows_written for f in files)
            for handle in files:
                # A partition the rehash failed to split (one dominant key)
                # is grouped in memory — recursion cannot shrink it.
                next_depth = depth + 1 if split else MAX_SPILL_DEPTH
                yield from grouped_partition(handle.entries(),
                                             handle.rows_written, next_depth)
                handle.close()
            return
        groups: Dict[Tuple[Any, ...], List[Row]] = {}
        order: List[Tuple[Any, ...]] = []
        for values, anns in entries:
            row = Row(values, anns)
            key = normalized_key(row)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        for key in order:
            candidate = emit_group(groups[key])
            if candidate is not None:
                yield candidate

    def spilled_groups(groups: Dict[Tuple[Any, ...], List[Row]],
                       rest: Iterable[Row]) -> Iterator[Row]:
        """The budget was exceeded: partition everything seen so far plus
        the rest of the input on the group-key hash, then group partitions
        independently."""
        fanout = spill.partition_count(input_rows_hint)
        event = spill.stats.record("group_by", partitions=fanout)
        files = [spill.new_file() for _ in range(fanout)]
        for key, members in groups.items():
            handle = files[hash((0, key)) % fanout]
            for row in members:
                handle.append(row.values, row._annotations)
        for row in rest:
            bucket = hash((0, normalized_key(row))) % fanout
            files[bucket].append(row.values, row._annotations)
        event["spilled_rows"] = sum(f.rows_written for f in files)

        def run_partition(pair: Tuple[int, SpillFile]) -> List[Row]:
            index, handle = pair
            started = time.perf_counter()
            out = list(grouped_partition(handle.entries(),
                                         handle.rows_written, depth=1))
            handle.close()
            spill.stats.note_partition(
                event, partition=index, rows=len(out),
                seconds=time.perf_counter() - started, worker=worker_label())
            return out

        # Partitions are grouped independently (on the worker pool when the
        # query runs parallel) and emitted in partition order — the same
        # order the serial loop produced.
        for out in spill.parallel.map_ordered(run_partition,
                                              list(enumerate(files))):
            yield from out

    def output_rows() -> Iterator[Row]:
        if not group_keys:
            # A query with aggregates but no GROUP BY forms one global group.
            candidate = stream_global_group(rows)
            if candidate is not None:
                yield candidate
            return
        budget = spill.budget_rows if spill is not None else None
        groups: Dict[Tuple[Any, ...], List[Row]] = {}
        order: List[Tuple[Any, ...]] = []
        buffered = 0
        iterator = iter(rows)
        for row in iterator:
            key = normalized_key(row)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
            buffered += 1
            if budget is not None and buffered > budget:
                yield from spilled_groups(groups, iterator)
                return
        for key in order:
            candidate = emit_group(groups[key])
            if candidate is not None:
                yield candidate
    return output_schema, output_rows()


def _evaluate_group_expression(expr: ast.Expression, evaluator: Evaluator,
                               members: List[Row],
                               representative: Optional[Row]) -> Any:
    """Evaluate an expression that may mix aggregates and group-by columns."""
    aggregates = find_aggregates(expr)
    if not aggregates:
        if representative is None:
            return None
        return evaluator.compile(expr)(representative)
    # Evaluate each aggregate over the group, then substitute the results.
    results: Dict[int, Any] = {}
    for aggregate in aggregates:
        state = AggregateState(aggregate, evaluator)
        for row in members:
            state.add(row)
        results[id(aggregate)] = state.result()
    return _evaluate_with_aggregates(expr, evaluator, representative, results)


def _evaluate_with_aggregates(expr: ast.Expression, evaluator: Evaluator,
                              representative: Optional[Row],
                              aggregate_results: Dict[int, Any]) -> Any:
    if id(expr) in aggregate_results:
        return aggregate_results[id(expr)]
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        if representative is None:
            return None
        return evaluator.compile(expr)(representative)
    if isinstance(expr, ast.BinaryOp):
        left = _evaluate_with_aggregates(expr.left, evaluator, representative,
                                         aggregate_results)
        right = _evaluate_with_aggregates(expr.right, evaluator, representative,
                                          aggregate_results)
        return _apply_binary(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = _evaluate_with_aggregates(expr.operand, evaluator, representative,
                                            aggregate_results)
        if expr.op == "-":
            return None if operand is None else -operand
        if expr.op == "NOT":
            return None if operand is None else (not bool(operand))
        return operand
    if isinstance(expr, ast.FunctionCall):
        from repro.planner.expressions import SCALAR_FUNCTIONS
        function = SCALAR_FUNCTIONS.get(expr.name.upper())
        if function is None:
            raise PlanningError(f"unknown function {expr.name}")
        args = [
            _evaluate_with_aggregates(arg, evaluator, representative, aggregate_results)
            for arg in expr.args
        ]
        return function(*args)
    raise PlanningError(
        f"unsupported construct in aggregate expression: {type(expr).__name__}"
    )


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    from repro.types.values import compare_values
    if op in ("AND", "OR"):
        if left is None or right is None:
            return None
        return (bool(left) and bool(right)) if op == "AND" else (bool(left) or bool(right))
    if op in ("=", "<>", "<", "<=", ">", ">="):
        cmp = compare_values(left, right)
        if cmp is None:
            return None
        return {"=": cmp == 0, "<>": cmp != 0, "<": cmp < 0,
                "<=": cmp <= 0, ">": cmp > 0, ">=": cmp >= 0}[op]
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if op == "%":
        return left % right
    if op == "||":
        return str(left) + str(right)
    raise PlanningError(f"unsupported operator {op!r}")


# ---------------------------------------------------------------------------
# Duplicate elimination, ordering, limits
# ---------------------------------------------------------------------------
def _distinct_key(values: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Duplicate-detection key: NaNs collapse to one bucket (the
    ``compare_values`` order), everything else compares as the dict does."""
    return tuple(_hash_key(value) for value in values)


def distinct(relation: Relation,
             spill: Optional[SpillManager] = None,
             input_rows_hint: Optional[float] = None) -> Relation:
    """DISTINCT: equal value-tuples collapse; their annotations are unioned.

    A pipeline breaker: the annotation union over duplicates is only known
    once every input row has been seen.  With ``spill``, an input exceeding
    the budget is hash-partitioned on the value tuple; each spilled row is
    tagged with its first-seen sequence number so the merged output keeps
    the first-occurrence order the in-memory path produces (which is what
    makes ``ORDER BY`` upstream of DISTINCT survive a spill).
    """
    schema, rows = relation
    arity = len(schema)

    def spilled_distinct(seen: Dict[Tuple[Any, ...], List[Row]],
                         order: List[Tuple[Any, ...]],
                         rest: Iterable[Row]) -> Iterator[Row]:
        budget = spill.budget_rows
        fanout = spill.partition_count(input_rows_hint)
        event = spill.stats.record("distinct", partitions=fanout)
        files = [spill.new_file() for _ in range(fanout)]
        # Buffered rows: every member of a group is tagged with the group's
        # first-seen rank, which is all the order restoration needs.
        for rank, key in enumerate(order):
            handle = files[hash(key) % fanout]
            for row in seen[key]:
                handle.append((rank,) + row.values, row._annotations)
        sequence = len(order)
        for row in rest:
            key = _distinct_key(row.values)
            files[hash(key) % fanout].append((sequence,) + row.values,
                                             row._annotations)
            sequence += 1
        event["spilled_rows"] = sum(f.rows_written for f in files)

        def read_back(out: SpillFile):
            for tagged_values, anns in out.entries():
                yield tagged_values[0], tagged_values[1:], anns

        def dedup_leaf(handle: SpillFile) -> SpillFile:
            """Dedup one partition in memory; write its output back to disk,
            ordered by first-seen sequence."""
            groups: Dict[Tuple[Any, ...], List[Any]] = {}
            ordered: List[Tuple[Any, ...]] = []
            for tagged_values, anns in handle.entries():
                sequence_no, values = tagged_values[0], tagged_values[1:]
                key = _distinct_key(values)
                entry = groups.get(key)
                if entry is None:
                    # [first seq, first values, running annotation union] —
                    # the union vector stays None until some member is
                    # annotated, so unannotated data pays no per-group sets.
                    groups[key] = entry = [sequence_no, values, None]
                    ordered.append(key)
                if anns is not None:
                    merged = entry[2]
                    if merged is None:
                        entry[2] = merged = [set() for _ in range(arity)]
                    for position in range(min(arity, len(anns))):
                        merged[position] |= anns[position]
            handle.close()
            out = spill.new_file()
            for sequence_no, values, merged in sorted(
                    (groups[key] for key in ordered),
                    key=lambda entry: entry[0]):
                out.append((sequence_no,) + values, merged)
            return out

        def merge_outputs(outputs: List[SpillFile], sink: SpillFile) -> None:
            merged = heapq.merge(*(read_back(out) for out in outputs),
                                 key=lambda entry: entry[0])
            for sequence_no, values, anns in merged:
                sink.append((sequence_no,) + values, anns)
            for out in outputs:
                out.close()

        def distinct_partition(handle: SpillFile, depth: int) -> SpillFile:
            """Dedup one partition, re-partitioning while it exceeds the
            budget (so per-leaf memory stays near the budget, not
            distinct-count / fan-out), and return its seq-ordered output
            file.  Sub-outputs are merged back into one file per level,
            which bounds every merge's fan-in — and therefore its read
            buffers — by one level's fan-out."""
            if handle.rows_written > budget and depth < MAX_SPILL_DEPTH:
                fanout = spill.partition_count(handle.rows_written)
                subfiles = [spill.new_file() for _ in range(fanout)]
                for tagged_values, anns in handle.entries():
                    key = _distinct_key(tagged_values[1:])
                    subfiles[hash((depth, key)) % fanout].append(tagged_values,
                                                                 anns)
                handle.close()
                split = max(f.rows_written for f in subfiles) < \
                    sum(f.rows_written for f in subfiles)
                # A partition rehashing cannot split (one dominant value)
                # dedups in memory — its distinct set is tiny by definition.
                next_depth = depth + 1 if split else MAX_SPILL_DEPTH
                outputs = [distinct_partition(sub, next_depth)
                           for sub in subfiles]
                sink = spill.new_file()
                merge_outputs(outputs, sink)
                return sink
            return dedup_leaf(handle)

        # Dedup each partition (recursively), then k-way merge the
        # seq-ordered partition outputs to restore the exact first-seen
        # order — streaming from disk, never holding the operator's whole
        # output in memory.  Partition dedup fans out across the worker
        # pool when the query runs parallel: each worker reads and writes
        # only its own partition's files, so the outputs are identical.
        def dedup_one(pair: Tuple[int, SpillFile]) -> SpillFile:
            index, handle = pair
            started = time.perf_counter()
            out = distinct_partition(handle, depth=1)
            spill.stats.note_partition(
                event, partition=index, rows=out.rows_written,
                seconds=time.perf_counter() - started, worker=worker_label())
            return out

        output_files = list(spill.parallel.map_ordered(
            dedup_one, list(enumerate(files))))
        merged_entries = heapq.merge(*(read_back(out) for out in output_files),
                                     key=lambda entry: entry[0])
        for _, values, anns in merged_entries:
            yield Row(values, anns if anns is not None
                      else [set() for _ in range(arity)])
        for out in output_files:
            out.close()

    def output_rows() -> Iterator[Row]:
        budget = spill.budget_rows if spill is not None else None
        seen: Dict[Tuple[Any, ...], List[Row]] = {}
        order: List[Tuple[Any, ...]] = []
        buffered = 0
        iterator = iter(rows)
        for row in iterator:
            key = _distinct_key(row.values)
            if key not in seen:
                seen[key] = []
                order.append(key)
            seen[key].append(row)
            buffered += 1
            if budget is not None and buffered > budget:
                yield from spilled_distinct(seen, order, iterator)
                return
        for key in order:
            members = seen[key]
            annotations = merge_annotation_vectors(members, arity)
            yield Row(members[0].values, annotations)
    return schema, output_rows()


def order_by(relation: Relation, order_items: Sequence[ast.OrderItem],
             spill: Optional[SpillManager] = None) -> Relation:
    """ORDER BY: a pipeline breaker (compiled eagerly, sorted on first pull).

    With ``spill``, inputs beyond the budget use an *external sort*: sorted
    runs of at most ``budget_rows`` rows are spilled to temp files and a lazy
    k-way merge (``heapq.merge`` over the run readers) produces the output,
    so peak memory stays O(budget + runs) instead of O(input).  The last run
    stays in memory (hybrid), and ties preserve input order in both paths
    (stable sort in memory; the merge prefers earlier runs).
    """
    schema, rows = relation
    evaluator = Evaluator(schema)
    compiled = [(evaluator.compile(item.expr), item.ascending) for item in order_items]

    def sort_key(row: Row) -> Tuple[Any, ...]:
        return tuple(
            SortKey(evaluate(row)) if ascending else ReverseSortKey(evaluate(row))
            for evaluate, ascending in compiled)

    def external_rows(iterator: Iterator[Row], budget: int) -> Iterator[Row]:
        parallel = spill.parallel
        event: Optional[Dict[str, Any]] = None
        pending: List[Any] = []  # futures of SpillFile, in run order

        def write_run(index: int, run_buffer: List[Row]) -> SpillFile:
            started = time.perf_counter()
            run_buffer.sort(key=sort_key)
            run = spill.new_file()
            for sorted_row in run_buffer:
                run.append(sorted_row.values, sorted_row._annotations)
            spill.stats.note_partition(
                event, run=index, rows=run.rows_written,
                seconds=time.perf_counter() - started, worker=worker_label())
            return run

        buffer: List[Row] = []
        for row in iterator:
            buffer.append(row)
            if len(buffer) >= budget:
                if event is None:
                    event = spill.stats.record("sort", runs=0, spilled_rows=0)
                index, chunk, buffer = len(pending), buffer, []
                pending.append(parallel.submit(
                    lambda index=index, chunk=chunk: write_run(index, chunk)))
                # Backpressure: at most workers + 1 unsorted run buffers may
                # be in flight, so parallel run generation stays within a
                # small multiple of the row budget.
                if len(pending) > parallel.workers:
                    pending[-parallel.workers - 1].result()
        buffer.sort(key=sort_key)
        if not pending:
            yield from buffer
            return
        runs: List[SpillFile] = [future.result() for future in pending]
        event["runs"] = len(runs) + (1 if buffer else 0)
        event["spilled_rows"] = sum(run.rows_written for run in runs)

        def run_stream(run: SpillFile) -> Iterator[Row]:
            return (Row(values, anns) for values, anns in run.entries())

        if parallel.parallel and len(runs) > _SORT_PREMERGE_FANIN:
            # Parallel pre-merge: groups of runs merge into single files on
            # the pool, shrinking the final merge's fan-in.  Groups keep run
            # order and the final merge prefers earlier groups, so ties
            # still resolve to earlier runs — input order, like the serial
            # path.
            def merge_group(pair: Tuple[int, List[SpillFile]]) -> SpillFile:
                index, group = pair
                started = time.perf_counter()
                sink = spill.new_file()
                for merged_row in heapq.merge(*(run_stream(run)
                                                for run in group),
                                              key=sort_key):
                    sink.append(merged_row.values, merged_row._annotations)
                for run in group:
                    run.close()
                spill.stats.note_partition(
                    event, merge_group=index, rows=sink.rows_written,
                    seconds=time.perf_counter() - started,
                    worker=worker_label())
                return sink

            groups = [runs[i:i + _SORT_PREMERGE_FANIN]
                      for i in range(0, len(runs), _SORT_PREMERGE_FANIN)]
            event["premerge_groups"] = len(groups)
            runs = list(parallel.map_ordered(merge_group,
                                             list(enumerate(groups))))
        streams: List[Iterator[Row]] = [run_stream(run) for run in runs]
        if buffer:
            streams.append(iter(buffer))
        yield from heapq.merge(*streams, key=sort_key)
        for run in runs:
            run.close()

    def output_rows() -> Iterator[Row]:
        budget = spill.budget_rows if spill is not None else None
        if budget is not None:
            yield from external_rows(iter(rows), budget)
            return
        decorated = list(rows)
        # Sort by the last key first so earlier keys take precedence (stable sort).
        for evaluate, ascending in reversed(compiled):
            decorated.sort(key=lambda row: SortKey(evaluate(row)), reverse=not ascending)
        yield from decorated
    return schema, output_rows()


def limit_offset(relation: Relation, limit: Optional[int],
                 offset: Optional[int]) -> Relation:
    """LIMIT/OFFSET with short-circuiting: stops pulling once satisfied."""
    schema, rows = relation
    start = offset or 0

    if isinstance(rows, BatchedRows):
        def output_batches() -> Iterator[RowBatch]:
            if limit is not None and limit <= 0:
                return
            to_skip = start
            remaining = limit
            for batch in rows.batches:
                values, annotations = batch.values, batch.annotations
                if to_skip:
                    if to_skip >= len(values):
                        to_skip -= len(values)
                        continue
                    values = values[to_skip:]
                    annotations = annotations[to_skip:] if annotations else None
                    to_skip = 0
                if remaining is not None and len(values) > remaining:
                    values = values[:remaining]
                    annotations = annotations[:remaining] if annotations else None
                if values:
                    yield RowBatch(values, annotations)
                    if remaining is not None:
                        remaining -= len(values)
                        if remaining <= 0:
                            return
        return schema, BatchedRows(output_batches())

    def output_rows() -> Iterator[Row]:
        if limit is not None and limit <= 0:
            return
        iterator = iter(rows)
        stop = None if limit is None else start + limit
        yield from islice(iterator, start, stop)
    return schema, output_rows()


# ---------------------------------------------------------------------------
# Set operations
# ---------------------------------------------------------------------------
def _check_arity(left: Relation, right: Relation, op: str) -> None:
    if len(left[0]) != len(right[0]):
        raise ExecutionError(
            f"{op} requires both sides to have the same number of columns "
            f"({len(left[0])} vs {len(right[0])})"
        )


def union(left: Relation, right: Relation, keep_all: bool = False,
          spill: Optional[SpillManager] = None) -> Relation:
    """UNION [ALL]: annotations of matching tuples from both sides are unioned."""
    _check_arity(left, right, "UNION")
    schema = left[0]

    def combined() -> Iterator[Row]:
        yield from left[1]
        yield from right[1]
    if keep_all:
        return schema, combined()
    return distinct((schema, combined()), spill)


def _ann_union(target: Optional[List[Set[Any]]],
               anns: Optional[Sequence[Set[Any]]],
               arity: int) -> Optional[List[Set[Any]]]:
    """Fold one annotation vector into a running per-column union.

    ``None`` target means "nothing annotated yet" — unannotated inputs never
    allocate per-column sets."""
    if anns is None or not any(anns):
        return target
    if target is None:
        target = [set() for _ in range(arity)]
    for position in range(min(arity, len(anns))):
        target[position] |= anns[position]
    return target


def intersect(left: Relation, right: Relation,
              spill: Optional[SpillManager] = None,
              input_rows_hint: Optional[float] = None) -> Relation:
    """INTERSECT: data values must match; annotations from both sides merge.

    This is the paper's motivating example (Section 3): the genes common to
    DB1_Gene and DB2_Gene carry the annotations from *both* tables in the
    answer, something plain SQL needs three statements to achieve.

    Memory bounding: the right side keeps one running annotation union per
    distinct value (never the member rows), and the left side streams,
    keeping state only for values the right side contains — so with the
    right side under ``spill.budget_rows`` nothing else can grow.  A right
    side beyond the budget hash-partitions both inputs on the value tuple;
    partitions intersect independently (on the worker pool when the query
    runs parallel) and a k-way merge on the left side's first-seen sequence
    restores the exact in-memory output order.
    """
    _check_arity(left, right, "INTERSECT")
    schema = left[0]
    arity = len(schema)

    def emit(values: Tuple[Any, ...], left_union, right_union) -> Row:
        merged = [set() for _ in range(arity)]
        for source in (left_union, right_union):
            if source is not None:
                for position in range(arity):
                    merged[position] |= source[position]
        return Row(values, merged)

    def spilled_intersect(right_union: Dict[Tuple[Any, ...], Any],
                          right_rest: Iterator[Row],
                          left_iter: Iterator[Row]) -> Iterator[Row]:
        fanout = spill.partition_count(input_rows_hint)
        event = spill.stats.record("intersect", partitions=fanout)
        right_files = [spill.new_file() for _ in range(fanout)]
        for values, union in right_union.items():
            right_files[hash(values) % fanout].append(values, union)
        for row in right_rest:
            right_files[hash(row.values) % fanout].append(row.values,
                                                          row._annotations)
        left_files = [spill.new_file() for _ in range(fanout)]
        sequence = 0
        for row in left_iter:
            left_files[hash(row.values) % fanout].append(
                (sequence,) + row.values, row._annotations)
            sequence += 1
        event["spilled_rows"] = sum(f.rows_written for f in right_files) \
            + sum(f.rows_written for f in left_files)

        def intersect_partition(pair) -> SpillFile:
            index, (right_file, left_file) = pair
            started = time.perf_counter()
            rmap: Dict[Tuple[Any, ...], Any] = {}
            for values, anns in right_file.entries():
                if values not in rmap:
                    rmap[values] = None
                rmap[values] = _ann_union(rmap[values], anns, arity)
            right_file.close()
            groups: Dict[Tuple[Any, ...], List[Any]] = {}
            ordered: List[Tuple[Any, ...]] = []
            for tagged, anns in left_file.entries():
                sequence_no, values = tagged[0], tagged[1:]
                entry = groups.get(values)
                if entry is None:
                    if values not in rmap:
                        continue
                    groups[values] = entry = [sequence_no, None]
                    ordered.append(values)
                entry[1] = _ann_union(entry[1], anns, arity)
            left_file.close()
            out = spill.new_file()
            for values in ordered:
                sequence_no, left_union = groups[values]
                merged = emit(values, left_union, rmap[values])
                out.append((sequence_no,) + values, merged.annotations)
            spill.stats.note_partition(
                event, partition=index, rows=out.rows_written,
                seconds=time.perf_counter() - started, worker=worker_label())
            return out

        outputs = list(spill.parallel.map_ordered(
            intersect_partition,
            list(enumerate(zip(right_files, left_files)))))

        def read_back(out: SpillFile):
            for tagged, anns in out.entries():
                yield tagged[0], tagged[1:], anns

        merged_entries = heapq.merge(*(read_back(out) for out in outputs),
                                     key=itemgetter(0))
        for _, values, anns in merged_entries:
            yield Row(values, anns if anns is not None
                      else [set() for _ in range(arity)])
        for out in outputs:
            out.close()

    def output_rows() -> Iterator[Row]:
        budget = spill.budget_rows if spill is not None else None
        right_union: Dict[Tuple[Any, ...], Any] = {}
        right_count = 0
        right_iter = iter(right[1])
        for row in right_iter:
            values = row.values
            if values not in right_union:
                right_union[values] = None
            right_union[values] = _ann_union(right_union[values],
                                             row._annotations, arity)
            right_count += 1
            if budget is not None and right_count > budget:
                yield from spilled_intersect(right_union, right_iter,
                                             iter(left[1]))
                return
        left_state: Dict[Tuple[Any, ...], Any] = {}
        order: List[Tuple[Any, ...]] = []
        for row in left[1]:
            values = row.values
            if values not in right_union:
                continue
            if values not in left_state:
                left_state[values] = None
                order.append(values)
            left_state[values] = _ann_union(left_state[values],
                                            row._annotations, arity)
        for values in order:
            yield emit(values, left_state[values], right_union[values])
    return schema, output_rows()


def except_(left: Relation, right: Relation,
            spill: Optional[SpillManager] = None,
            input_rows_hint: Optional[float] = None) -> Relation:
    """EXCEPT: tuples of the left side absent from the right, annotations kept.

    A right side beyond ``spill.budget_rows`` hash-partitions both inputs on
    the value tuple; each partition filters its left rows against its right
    value set independently and a merge on the left sequence numbers
    restores input order before the (already spill-aware) DISTINCT on top.
    """
    _check_arity(left, right, "EXCEPT")
    schema = left[0]

    def spilled_except(right_values: Set[Tuple[Any, ...]],
                       right_rest: Iterator[Row],
                       left_iter: Iterator[Row]) -> Iterator[Row]:
        fanout = spill.partition_count(input_rows_hint)
        event = spill.stats.record("except", partitions=fanout)
        right_files = [spill.new_file() for _ in range(fanout)]
        for values in right_values:
            right_files[hash(values) % fanout].append(values, None)
        for row in right_rest:
            right_files[hash(row.values) % fanout].append(row.values, None)
        left_files = [spill.new_file() for _ in range(fanout)]
        sequence = 0
        for row in left_iter:
            left_files[hash(row.values) % fanout].append(
                (sequence,) + row.values, row._annotations)
            sequence += 1
        event["spilled_rows"] = sum(f.rows_written for f in right_files) \
            + sum(f.rows_written for f in left_files)

        def except_partition(pair) -> SpillFile:
            index, (right_file, left_file) = pair
            started = time.perf_counter()
            excluded = {values for values, _ in right_file.entries()}
            right_file.close()
            out = spill.new_file()
            for tagged, anns in left_file.entries():
                if tagged[1:] not in excluded:
                    out.append(tagged, anns)
            left_file.close()
            spill.stats.note_partition(
                event, partition=index, rows=out.rows_written,
                seconds=time.perf_counter() - started, worker=worker_label())
            return out

        outputs = list(spill.parallel.map_ordered(
            except_partition,
            list(enumerate(zip(right_files, left_files)))))

        def read_back(out: SpillFile):
            for tagged, anns in out.entries():
                yield tagged[0], tagged[1:], anns

        merged_entries = heapq.merge(*(read_back(out) for out in outputs),
                                     key=itemgetter(0))
        for _, values, anns in merged_entries:
            yield Row(values, anns)
        for out in outputs:
            out.close()

    def kept() -> Iterator[Row]:
        budget = spill.budget_rows if spill is not None else None
        right_values: Set[Tuple[Any, ...]] = set()
        right_count = 0
        right_iter = iter(right[1])
        for row in right_iter:
            right_values.add(row.values)
            right_count += 1
            if budget is not None and right_count > budget:
                yield from spilled_except(right_values, right_iter,
                                          iter(left[1]))
                return
        for row in left[1]:
            if row.values not in right_values:
                yield row
    return distinct((schema, kept()), spill, input_rows_hint)
