"""Physical operators with annotation-aware propagation semantics.

Every operator takes and returns ``(OutputSchema, list[Row])`` pairs.  The
propagation rules follow Section 3.4 of the paper:

* **scan** attaches to each column the annotations of that cell (from the
  propagation index of the requested annotation tables) plus any system
  status annotations for outdated cells;
* **selection** (WHERE/HAVING) passes qualifying tuples *with all their
  annotations*;
* **projection** passes only the annotations attached to the projected
  attributes; the ``PROMOTE`` clause additionally copies annotations from
  other columns onto a projected column;
* **duplicate elimination, GROUP BY, UNION, INTERSECT, EXCEPT** union the
  annotations of the tuples they combine and attach them to the output tuple;
* **AWHERE / AHAVING** pass a tuple only if some annotation satisfies the
  condition; **FILTER** keeps all tuples but drops non-matching annotations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.table import Table
from repro.core.errors import ExecutionError, PlanningError
from repro.executor.row import (
    ColumnInfo,
    OutputSchema,
    Row,
    merge_annotation_vectors,
)
from repro.planner.expressions import (
    AggregateState,
    AnnotationPredicate,
    Evaluator,
    find_aggregates,
    predicate_is_true,
)
from repro.planner.planner import referenced_columns
from repro.sql import ast
from repro.types.values import SortKey

Relation = Tuple[OutputSchema, List[Row]]


# ---------------------------------------------------------------------------
# Scan
# ---------------------------------------------------------------------------
def scan_table(table: Table, qualifier: str,
               propagation_index=None,
               status_annotations: Optional[Dict[Tuple[int, int], Any]] = None,
               include_tuple_id: bool = False) -> Relation:
    """Scan a stored table, attaching annotations per cell.

    ``propagation_index`` is a :class:`~repro.annotations.manager.PropagationIndex`
    (or ``None`` for an unannotated scan); ``status_annotations`` maps
    (tuple id, column position) to the synthetic outdated-status annotations
    from the dependency tracker.  ``include_tuple_id`` exposes the tuple id as
    a leading pseudo-column named ``__tid__`` (used internally by DML and by
    ADD ANNOTATION target resolution).
    """
    names = table.schema.column_names
    columns = [ColumnInfo(name, qualifier) for name in names]
    if include_tuple_id:
        columns = [ColumnInfo("__tid__", qualifier)] + columns
    schema = OutputSchema(columns)
    rows: List[Row] = []
    for tuple_id, values in table.scan():
        annotations: List[Set[Any]] = [set() for _ in names]
        if propagation_index is not None and not propagation_index.is_empty():
            for position in range(len(names)):
                annotations[position] |= propagation_index.lookup(tuple_id, position)
        if status_annotations:
            for position in range(len(names)):
                status = status_annotations.get((tuple_id, position))
                if status is not None:
                    annotations[position].add(status)
        if include_tuple_id:
            values = (tuple_id,) + tuple(values)
            annotations = [set()] + annotations
        rows.append(Row(tuple(values), annotations))
    return schema, rows


# ---------------------------------------------------------------------------
# Selection (data predicates)
# ---------------------------------------------------------------------------
def filter_rows(relation: Relation, predicate: ast.Expression) -> Relation:
    schema, rows = relation
    evaluate = Evaluator(schema).compile(predicate)
    kept = [row for row in rows if predicate_is_true(evaluate(row))]
    return schema, kept


# ---------------------------------------------------------------------------
# Annotation predicates (AWHERE / FILTER)
# ---------------------------------------------------------------------------
def awhere_filter(relation: Relation, condition: ast.Expression) -> Relation:
    """Pass a tuple (with all its annotations) when any annotation matches."""
    schema, rows = relation
    predicate = AnnotationPredicate(condition)
    kept = [
        row for row in rows
        if any(predicate.matches(annotation) for annotation in row.all_annotations())
    ]
    return schema, kept


def filter_annotations(relation: Relation, condition: ast.Expression) -> Relation:
    """Keep every tuple but drop annotations that do not match the condition."""
    schema, rows = relation
    predicate = AnnotationPredicate(condition)
    filtered: List[Row] = []
    for row in rows:
        new_annotations = [
            {annotation for annotation in anns if predicate.matches(annotation)}
            for anns in row.annotations
        ]
        filtered.append(Row(row.values, new_annotations))
    return schema, filtered


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------
def cross_join(left: Relation, right: Relation) -> Relation:
    left_schema, left_rows = left
    right_schema, right_rows = right
    schema = left_schema.concat(right_schema)
    rows = [l.concat(r) for l in left_rows for r in right_rows]
    return schema, rows


def nested_loop_join(left: Relation, right: Relation,
                     condition: Optional[ast.Expression],
                     join_type: str = "INNER") -> Relation:
    """Nested-loop join; supports INNER, CROSS, and LEFT outer joins."""
    left_schema, left_rows = left
    right_schema, right_rows = right
    schema = left_schema.concat(right_schema)
    evaluate = None
    if condition is not None:
        evaluate = Evaluator(schema).compile(condition)
    rows: List[Row] = []
    right_arity = len(right_schema)
    for left_row in left_rows:
        matched = False
        for right_row in right_rows:
            combined = left_row.concat(right_row)
            if evaluate is None or predicate_is_true(evaluate(combined)):
                rows.append(combined)
                matched = True
        if join_type == "LEFT" and not matched:
            padding = Row(tuple([None] * right_arity))
            rows.append(left_row.concat(padding))
    return schema, rows


def _compile_keys(schema: OutputSchema,
                  keys: Sequence[ast.ColumnRef]) -> List[Callable[[Row], Any]]:
    evaluator = Evaluator(schema)
    return [evaluator.compile(key) for key in keys]


#: Canonical stand-in for NaN hash keys.  Python's ``dict`` treats distinct
#: NaN objects as unequal, but ``compare_values`` orders NaN equal to itself,
#: so the hash join must bucket all NaNs together to match the other
#: strategies.
_NAN_KEY = object()


def _hash_key(value: Any) -> Any:
    if isinstance(value, float) and value != value:
        return _NAN_KEY
    return value


def hash_join(left: Relation, right: Relation,
              left_keys: Sequence[ast.ColumnRef],
              right_keys: Sequence[ast.ColumnRef],
              join_type: str = "INNER",
              condition: Optional[ast.Expression] = None) -> Relation:
    """Equi-join by hashing the right (build) side on its key columns.

    Annotation propagation is identical to the nested loop: the output row
    concatenates the input rows together with their per-column annotation
    sets.  NULL keys never match (SQL semantics); ``condition`` is an extra
    predicate evaluated on the combined row before a match is accepted,
    which keeps LEFT join padding correct for composite ON clauses.
    """
    left_schema, left_rows = left
    right_schema, right_rows = right
    if len(left_keys) != len(right_keys) or not left_keys:
        raise PlanningError("hash join requires matching, non-empty key lists")
    schema = left_schema.concat(right_schema)
    build = _compile_keys(right_schema, right_keys)
    probe = _compile_keys(left_schema, left_keys)
    residual = Evaluator(schema).compile(condition) if condition is not None else None

    table: Dict[Tuple[Any, ...], List[Row]] = {}
    for row in right_rows:
        key = tuple(_hash_key(getter(row)) for getter in build)
        if any(value is None for value in key):
            continue
        table.setdefault(key, []).append(row)

    rows: List[Row] = []
    right_arity = len(right_schema)
    for left_row in left_rows:
        key = tuple(_hash_key(getter(left_row)) for getter in probe)
        matched = False
        if not any(value is None for value in key):
            for right_row in table.get(key, ()):
                combined = left_row.concat(right_row)
                if residual is None or predicate_is_true(residual(combined)):
                    rows.append(combined)
                    matched = True
        if join_type == "LEFT" and not matched:
            rows.append(left_row.concat(Row(tuple([None] * right_arity))))
    return schema, rows


def merge_join(left: Relation, right: Relation,
               left_keys: Sequence[ast.ColumnRef],
               right_keys: Sequence[ast.ColumnRef],
               join_type: str = "INNER",
               condition: Optional[ast.Expression] = None) -> Relation:
    """Sort-merge equi-join: sort both sides on the keys and merge groups."""
    left_schema, left_rows = left
    right_schema, right_rows = right
    if len(left_keys) != len(right_keys) or not left_keys:
        raise PlanningError("merge join requires matching, non-empty key lists")
    schema = left_schema.concat(right_schema)
    left_getters = _compile_keys(left_schema, left_keys)
    right_getters = _compile_keys(right_schema, right_keys)
    residual = Evaluator(schema).compile(condition) if condition is not None else None
    right_arity = len(right_schema)

    def decorate(rows: List[Row], getters) -> Tuple[list, List[Row]]:
        keyed, null_keyed = [], []
        for row in rows:
            key = tuple(getter(row) for getter in getters)
            if any(value is None for value in key):
                null_keyed.append(row)
            else:
                keyed.append((tuple(SortKey(value) for value in key), row))
        keyed.sort(key=lambda pair: pair[0])
        return keyed, null_keyed

    left_sorted, left_nulls = decorate(left_rows, left_getters)
    right_sorted, _ = decorate(right_rows, right_getters)

    rows: List[Row] = []
    unmatched_left: List[Row] = list(left_nulls) if join_type == "LEFT" else []
    i = j = 0
    while i < len(left_sorted) and j < len(right_sorted):
        left_key = left_sorted[i][0]
        right_key = right_sorted[j][0]
        if left_key < right_key:
            if join_type == "LEFT":
                unmatched_left.append(left_sorted[i][1])
            i += 1
        elif right_key < left_key:
            j += 1
        else:
            i_end = i
            while i_end < len(left_sorted) and left_sorted[i_end][0] == left_key:
                i_end += 1
            j_end = j
            while j_end < len(right_sorted) and right_sorted[j_end][0] == left_key:
                j_end += 1
            for _, left_row in left_sorted[i:i_end]:
                matched = False
                for _, right_row in right_sorted[j:j_end]:
                    combined = left_row.concat(right_row)
                    if residual is None or predicate_is_true(residual(combined)):
                        rows.append(combined)
                        matched = True
                if join_type == "LEFT" and not matched:
                    unmatched_left.append(left_row)
            i, j = i_end, j_end
    if join_type == "LEFT":
        unmatched_left.extend(row for _, row in left_sorted[i:])
        for left_row in unmatched_left:
            rows.append(left_row.concat(Row(tuple([None] * right_arity))))
    return schema, rows


# ---------------------------------------------------------------------------
# Projection (with PROMOTE)
# ---------------------------------------------------------------------------
def _annotation_sources(expr: ast.Expression, schema: OutputSchema) -> List[int]:
    """Positions whose annotations flow to the output column of ``expr``."""
    positions = []
    for ref in referenced_columns(expr):
        position = schema.try_resolve(ref.name, ref.table)
        if position is not None:
            positions.append(position)
    return positions


def project(relation: Relation, items: Sequence[ast.SelectItem]) -> Relation:
    """Projection: only annotations of projected (or PROMOTEd) columns survive."""
    schema, rows = relation
    evaluator = Evaluator(schema)

    # Expand the projection list into (output column, value getter, annotation
    # source positions) triples.
    output_columns: List[ColumnInfo] = []
    getters: List[Callable[[Row], Any]] = []
    annotation_sources: List[List[int]] = []

    for item in items:
        expr = item.expr
        if isinstance(expr, ast.Star):
            positions = (range(len(schema))
                         if expr.table is None
                         else schema.positions_for_qualifier(expr.table))
            positions = list(positions)
            if expr.table is not None and not positions:
                raise PlanningError(f"unknown table alias {expr.table!r} in projection")
            for position in positions:
                column = schema.columns[position]
                if column.name == "__tid__":
                    continue
                output_columns.append(ColumnInfo(column.name, column.qualifier))
                getters.append(lambda row, p=position: row.values[p])
                annotation_sources.append([position])
            continue
        name = item.alias
        if name is None:
            name = expr.name if isinstance(expr, ast.ColumnRef) else f"expr_{len(output_columns) + 1}"
        compiled = evaluator.compile(expr)
        sources = _annotation_sources(expr, schema)
        for promoted in item.promote:
            position = schema.try_resolve(promoted.name, promoted.table)
            if position is None:
                raise PlanningError(
                    f"PROMOTE references unknown column {promoted.display()!r}"
                )
            sources.append(position)
        output_columns.append(ColumnInfo(name))
        getters.append(compiled)
        annotation_sources.append(sources)

    output_schema = OutputSchema(output_columns)
    output_rows: List[Row] = []
    for row in rows:
        values = tuple(getter(row) for getter in getters)
        annotations = []
        for sources in annotation_sources:
            merged: Set[Any] = set()
            for position in sources:
                merged |= row.annotations[position]
            annotations.append(merged)
        output_rows.append(Row(values, annotations))
    return output_schema, output_rows


# ---------------------------------------------------------------------------
# Grouping and aggregation
# ---------------------------------------------------------------------------
def group_and_aggregate(relation: Relation, group_by: Sequence[ast.Expression],
                        items: Sequence[ast.SelectItem],
                        having: Optional[ast.Expression] = None,
                        ahaving: Optional[ast.Expression] = None) -> Relation:
    """GROUP BY + aggregate evaluation with annotation union per group.

    The output tuple of each group carries, on every output column, the union
    of all annotations of the group's input rows (the paper's rule for
    operators that combine multiple tuples into one).
    """
    schema, rows = relation
    evaluator = Evaluator(schema)
    group_keys = [evaluator.compile(expr) for expr in group_by]

    groups: Dict[Tuple[Any, ...], List[Row]] = {}
    order: List[Tuple[Any, ...]] = []
    if group_keys:
        for row in rows:
            key = tuple(key(row) for key in group_keys)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
    else:
        # A query with aggregates but no GROUP BY forms one global group.
        key = ()
        groups[key] = list(rows)
        order.append(key)

    # Column list of the output.
    output_columns: List[ColumnInfo] = []
    for index, item in enumerate(items):
        if isinstance(item.expr, ast.Star):
            raise PlanningError("'*' cannot be used together with GROUP BY / aggregates")
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, ast.ColumnRef):
            name = item.expr.name
        elif isinstance(item.expr, ast.FunctionCall):
            name = item.expr.name.lower()
        else:
            name = f"expr_{index + 1}"
        output_columns.append(ColumnInfo(name))
    output_schema = OutputSchema(output_columns)

    having_predicate = None
    ahaving_predicate = AnnotationPredicate(ahaving) if ahaving is not None else None

    output_rows: List[Row] = []
    for key in order:
        members = groups[key]
        if not members and not group_keys:
            members = []
        representative = members[0] if members else None
        values: List[Any] = []
        for item in items:
            values.append(_evaluate_group_expression(item.expr, evaluator, members,
                                                     representative))
        merged = merge_annotation_vectors(members, len(schema)) if members else []
        union_all: Set[Any] = set()
        for anns in merged:
            union_all |= anns
        annotations = [set(union_all) for _ in values]
        candidate = Row(tuple(values), annotations)
        if having is not None:
            if not predicate_is_true(
                _evaluate_group_expression(having, evaluator, members, representative)
            ):
                continue
        if ahaving_predicate is not None:
            if not any(ahaving_predicate.matches(a) for a in union_all):
                continue
        output_rows.append(candidate)
    return output_schema, output_rows


def _evaluate_group_expression(expr: ast.Expression, evaluator: Evaluator,
                               members: List[Row],
                               representative: Optional[Row]) -> Any:
    """Evaluate an expression that may mix aggregates and group-by columns."""
    aggregates = find_aggregates(expr)
    if not aggregates:
        if representative is None:
            return None
        return evaluator.compile(expr)(representative)
    # Evaluate each aggregate over the group, then substitute the results.
    results: Dict[int, Any] = {}
    for aggregate in aggregates:
        state = AggregateState(aggregate, evaluator)
        for row in members:
            state.add(row)
        results[id(aggregate)] = state.result()
    return _evaluate_with_aggregates(expr, evaluator, representative, results)


def _evaluate_with_aggregates(expr: ast.Expression, evaluator: Evaluator,
                              representative: Optional[Row],
                              aggregate_results: Dict[int, Any]) -> Any:
    if id(expr) in aggregate_results:
        return aggregate_results[id(expr)]
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        if representative is None:
            return None
        return evaluator.compile(expr)(representative)
    if isinstance(expr, ast.BinaryOp):
        left = _evaluate_with_aggregates(expr.left, evaluator, representative,
                                         aggregate_results)
        right = _evaluate_with_aggregates(expr.right, evaluator, representative,
                                          aggregate_results)
        return _apply_binary(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = _evaluate_with_aggregates(expr.operand, evaluator, representative,
                                            aggregate_results)
        if expr.op == "-":
            return None if operand is None else -operand
        if expr.op == "NOT":
            return None if operand is None else (not bool(operand))
        return operand
    if isinstance(expr, ast.FunctionCall):
        from repro.planner.expressions import SCALAR_FUNCTIONS
        function = SCALAR_FUNCTIONS.get(expr.name.upper())
        if function is None:
            raise PlanningError(f"unknown function {expr.name}")
        args = [
            _evaluate_with_aggregates(arg, evaluator, representative, aggregate_results)
            for arg in expr.args
        ]
        return function(*args)
    raise PlanningError(
        f"unsupported construct in aggregate expression: {type(expr).__name__}"
    )


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    from repro.types.values import compare_values
    if op in ("AND", "OR"):
        if left is None or right is None:
            return None
        return (bool(left) and bool(right)) if op == "AND" else (bool(left) or bool(right))
    if op in ("=", "<>", "<", "<=", ">", ">="):
        cmp = compare_values(left, right)
        if cmp is None:
            return None
        return {"=": cmp == 0, "<>": cmp != 0, "<": cmp < 0,
                "<=": cmp <= 0, ">": cmp > 0, ">=": cmp >= 0}[op]
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if op == "%":
        return left % right
    if op == "||":
        return str(left) + str(right)
    raise PlanningError(f"unsupported operator {op!r}")


# ---------------------------------------------------------------------------
# Duplicate elimination, ordering, limits
# ---------------------------------------------------------------------------
def distinct(relation: Relation) -> Relation:
    """DISTINCT: equal value-tuples collapse; their annotations are unioned."""
    schema, rows = relation
    seen: Dict[Tuple[Any, ...], List[Row]] = {}
    order: List[Tuple[Any, ...]] = []
    for row in rows:
        if row.values not in seen:
            seen[row.values] = []
            order.append(row.values)
        seen[row.values].append(row)
    output = []
    for values in order:
        members = seen[values]
        annotations = merge_annotation_vectors(members, len(schema))
        output.append(Row(values, annotations))
    return schema, output


def order_by(relation: Relation, order_items: Sequence[ast.OrderItem]) -> Relation:
    schema, rows = relation
    evaluator = Evaluator(schema)
    compiled = [(evaluator.compile(item.expr), item.ascending) for item in order_items]
    decorated = list(rows)
    # Sort by the last key first so earlier keys take precedence (stable sort).
    for evaluate, ascending in reversed(compiled):
        decorated.sort(key=lambda row: SortKey(evaluate(row)), reverse=not ascending)
    return schema, decorated


def limit_offset(relation: Relation, limit: Optional[int],
                 offset: Optional[int]) -> Relation:
    schema, rows = relation
    start = offset or 0
    end = None if limit is None else start + limit
    return schema, rows[start:end]


# ---------------------------------------------------------------------------
# Set operations
# ---------------------------------------------------------------------------
def _check_arity(left: Relation, right: Relation, op: str) -> None:
    if len(left[0]) != len(right[0]):
        raise ExecutionError(
            f"{op} requires both sides to have the same number of columns "
            f"({len(left[0])} vs {len(right[0])})"
        )


def union(left: Relation, right: Relation, keep_all: bool = False) -> Relation:
    """UNION [ALL]: annotations of matching tuples from both sides are unioned."""
    _check_arity(left, right, "UNION")
    schema = left[0]
    combined = list(left[1]) + [Row(row.values, row.annotations) for row in right[1]]
    if keep_all:
        return schema, combined
    return distinct((schema, combined))


def intersect(left: Relation, right: Relation) -> Relation:
    """INTERSECT: data values must match; annotations from both sides merge.

    This is the paper's motivating example (Section 3): the genes common to
    DB1_Gene and DB2_Gene carry the annotations from *both* tables in the
    answer, something plain SQL needs three statements to achieve.
    """
    _check_arity(left, right, "INTERSECT")
    schema = left[0]
    right_groups: Dict[Tuple[Any, ...], List[Row]] = {}
    for row in right[1]:
        right_groups.setdefault(row.values, []).append(row)
    output: List[Row] = []
    seen: Set[Tuple[Any, ...]] = set()
    for row in left[1]:
        if row.values in right_groups and row.values not in seen:
            seen.add(row.values)
            matching_left = [r for r in left[1] if r.values == row.values]
            members = matching_left + right_groups[row.values]
            annotations = merge_annotation_vectors(members, len(schema))
            output.append(Row(row.values, annotations))
    return schema, output


def except_(left: Relation, right: Relation) -> Relation:
    """EXCEPT: tuples of the left side absent from the right, annotations kept."""
    _check_arity(left, right, "EXCEPT")
    schema = left[0]
    right_values = {row.values for row in right[1]}
    kept = [row for row in left[1] if row.values not in right_values]
    return distinct((schema, kept))
