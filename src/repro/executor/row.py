"""Annotated rows and output schemas used by the physical operators.

The paper's central observation (Section 3) is that users view annotations as
metadata while the DBMS views them as data.  The reproduction's executor
therefore carries annotations *next to* the data values: every row is a tuple
of values plus, for each output column, a set of :class:`~repro.annotations.model.Annotation`
objects attached to that column for this tuple.  Operators manipulate both
parts according to the propagation semantics of Section 3.4.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.errors import PlanningError


class ColumnInfo:
    """A column of an operator's output: an optional qualifier plus a name."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name: str, qualifier: Optional[str] = None):
        self.name = name
        self.qualifier = qualifier

    def matches(self, name: str, qualifier: Optional[str]) -> bool:
        if self.name.lower() != name.lower():
            return False
        if qualifier is None:
            return True
        return (self.qualifier or "").lower() == qualifier.lower()

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def __repr__(self) -> str:
        return f"ColumnInfo({self.display()})"


class OutputSchema:
    """Ordered list of output columns with qualified name resolution."""

    def __init__(self, columns: Sequence[ColumnInfo]):
        self.columns = list(columns)

    @classmethod
    def from_names(cls, names: Sequence[str], qualifier: Optional[str] = None) -> "OutputSchema":
        return cls([ColumnInfo(name, qualifier) for name in names])

    def __len__(self) -> int:
        return len(self.columns)

    @property
    def names(self) -> List[str]:
        return [column.name for column in self.columns]

    def resolve(self, name: str, qualifier: Optional[str] = None) -> int:
        """Return the position of the referenced column.

        Raises :class:`PlanningError` when the reference is unknown or
        ambiguous (same column name exposed by two unqualified tables).
        """
        matches = [
            index for index, column in enumerate(self.columns)
            if column.matches(name, qualifier)
        ]
        if not matches:
            reference = f"{qualifier}.{name}" if qualifier else name
            raise PlanningError(f"unknown column reference {reference!r}")
        if len(matches) > 1 and qualifier is None:
            # Ambiguity is tolerated when every match refers to the same
            # position-equivalent column name of a single table (may happen
            # after self-joins with aliases); otherwise report it.
            raise PlanningError(f"ambiguous column reference {name!r}")
        return matches[0]

    def try_resolve(self, name: str, qualifier: Optional[str] = None) -> Optional[int]:
        try:
            return self.resolve(name, qualifier)
        except PlanningError:
            return None

    def concat(self, other: "OutputSchema") -> "OutputSchema":
        return OutputSchema(self.columns + other.columns)

    def positions_for_qualifier(self, qualifier: str) -> List[int]:
        return [
            index for index, column in enumerate(self.columns)
            if (column.qualifier or "").lower() == qualifier.lower()
        ]


class Row:
    """A tuple of values plus per-column annotation sets.

    The annotation vector is materialized lazily: most rows of most queries
    carry no annotations, and the hot scan/filter/project pipeline never
    needs to allocate their empty sets.  ``row.annotations`` materializes
    (and caches) the vector on first access, so every operator keeps its
    familiar view.
    """

    __slots__ = ("values", "_annotations")

    def __init__(self, values: Tuple[Any, ...],
                 annotations: Optional[List[Set[Any]]] = None):
        self.values = values if type(values) is tuple else tuple(values)
        if annotations is not None and len(annotations) != len(self.values):
            raise PlanningError("annotation vector length does not match row arity")
        self._annotations = annotations

    @property
    def annotations(self) -> List[Set[Any]]:
        annotations = self._annotations
        if annotations is None:
            annotations = [set() for _ in self.values]
            self._annotations = annotations
        return annotations

    def has_annotations(self) -> bool:
        """True when some column of this row carries at least one annotation."""
        annotations = self._annotations
        return annotations is not None and any(annotations)

    # ------------------------------------------------------------------
    def all_annotations(self) -> Set[Any]:
        """Union of the annotations attached to any column of this row."""
        merged: Set[Any] = set()
        if self._annotations is not None:
            for anns in self._annotations:
                merged |= anns
        return merged

    def with_values(self, values: Tuple[Any, ...],
                    annotations: Optional[List[Set[Any]]] = None) -> "Row":
        return Row(values, annotations)

    def copy(self) -> "Row":
        if self._annotations is None:
            return Row(self.values)
        return Row(self.values, [set(anns) for anns in self._annotations])

    def concat(self, other: "Row") -> "Row":
        if self._annotations is None and other._annotations is None:
            return Row(self.values + other.values)
        return Row(self.values + other.values,
                   [set(a) for a in self.annotations] + [set(a) for a in other.annotations])

    # -- sequence protocol (PEP 249 rows are sequences) -----------------
    def __getitem__(self, index):
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __repr__(self) -> str:
        return f"Row({self.values!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Row) and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)


def merge_annotation_vectors(rows: Iterable[Row], arity: int) -> List[Set[Any]]:
    """Column-wise union of the annotation vectors of ``rows``.

    This is the propagation rule the paper assigns to operators that combine
    several tuples into one (duplicate elimination, GROUP BY, UNION,
    INTERSECT, difference): the output tuple carries the union of the
    annotations of the tuples it represents.
    """
    merged: List[Set[Any]] = [set() for _ in range(arity)]
    for row in rows:
        annotations = row._annotations
        if annotations is None:
            continue
        for index in range(min(arity, len(annotations))):
            merged[index] |= annotations[index]
    return merged


def concat_annotation_vectors(left: Optional[Sequence[Set[Any]]],
                              right: Optional[Sequence[Set[Any]]],
                              left_arity: int,
                              right_arity: int) -> Optional[List[Set[Any]]]:
    """Annotation vector of a joined row (copying sets, like ``Row.concat``).

    ``None`` inputs mean "no annotations on that side"; when both sides are
    ``None`` the combined row carries none either (the common fast path the
    batched join exploits — no per-row set allocation at all).
    """
    if left is None and right is None:
        return None
    left_part = ([set(anns) for anns in left] if left is not None
                 else [set() for _ in range(left_arity)])
    right_part = ([set(anns) for anns in right] if right is not None
                  else [set() for _ in range(right_arity)])
    return left_part + right_part


def batch_from_entries(values: List[Tuple[Any, ...]],
                       annotations: List[Optional[List[Set[Any]]]],
                       arity: int) -> "RowBatch":
    """Build a :class:`RowBatch` from per-row ``(values, vector-or-None)``
    entries, materializing empty vectors only when some row is annotated."""
    if any(vector is not None for vector in annotations):
        return RowBatch(values,
                        [vector if vector is not None
                         else [set() for _ in range(arity)]
                         for vector in annotations])
    return RowBatch(values)


class RowBatch:
    """A batch of rows flowing through the vectorized operator pipeline.

    ``values`` is row-major: one value tuple per row.  ``annotations`` is
    either ``None`` — meaning no row in the batch carries any annotation, the
    common case the batch operators exploit — or a parallel list of per-row
    annotation vectors (one ``List[Set]`` per row, as on :class:`Row`).
    """

    __slots__ = ("values", "annotations")

    def __init__(self, values: List[Tuple[Any, ...]],
                 annotations: Optional[List[List[Set[Any]]]] = None):
        self.values = values
        self.annotations = annotations

    def __len__(self) -> int:
        return len(self.values)

    def to_rows(self) -> Iterable[Row]:
        if self.annotations is None:
            return map(Row, self.values)
        return (Row(values, anns)
                for values, anns in zip(self.values, self.annotations))

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "RowBatch":
        values = [row.values for row in rows]
        if any(row._annotations is not None for row in rows):
            return cls(values, [row.annotations for row in rows])
        return cls(values)


class BatchedRows:
    """An ``Iterable[Row]`` view over a one-shot stream of row batches.

    Operators with a vectorized implementation detect this wrapper on their
    input's row part and consume ``.batches`` directly; everything else (the
    pipeline breakers, the annotation operators) just iterates rows, which is
    how batches are consumed at those operators' boundaries.
    """

    __slots__ = ("batches",)

    def __init__(self, batches: Iterable[RowBatch]):
        self.batches = batches

    def __iter__(self):
        for batch in self.batches:
            yield from batch.to_rows()


class StreamingResultSet:
    """Lazily produced result of a query: schema plus a one-shot row iterator.

    Rows are computed on demand as the consumer iterates, so a client that
    stops early (or a ``LIMIT``) never pays for the rest of the pipeline.
    Consume the stream before issuing further DML against the database — the
    underlying scan reads live table state.  ``fetchall`` drains what is left
    into a materialized :class:`ResultSet`.
    """

    def __init__(self, schema: OutputSchema, rows: Iterable[Row]):
        self.schema = schema
        self._rows = iter(rows)

    @property
    def columns(self) -> List[str]:
        return self.schema.names

    def __iter__(self):
        return self._rows

    def __next__(self) -> Row:
        return next(self._rows)

    def fetchmany(self, count: int) -> List[Row]:
        out: List[Row] = []
        if count <= 0:
            return out
        for row in self._rows:
            out.append(row)
            if len(out) >= count:
                break
        return out

    def fetchall(self) -> "ResultSet":
        return ResultSet(self.schema, list(self._rows))

    def __repr__(self) -> str:
        return f"StreamingResultSet(columns={self.columns})"


class ResultSet:
    """Materialized result of a query: schema, rows, and helper accessors."""

    def __init__(self, schema: OutputSchema, rows: List[Row]):
        self.schema = schema
        self.rows = rows

    @property
    def columns(self) -> List[str]:
        return self.schema.names

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def values(self) -> List[Tuple[Any, ...]]:
        return [row.values for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Any]]:
        names = self.columns
        return [dict(zip(names, row.values)) for row in self.rows]

    def annotations_of(self, row_index: int, column: Optional[str] = None) -> Set[Any]:
        row = self.rows[row_index]
        if column is None:
            return row.all_annotations()
        position = self.schema.resolve(column)
        return set(row.annotations[position])

    def annotation_bodies(self, row_index: int, column: Optional[str] = None) -> List[str]:
        return sorted(a.body for a in self.annotations_of(row_index, column))

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"
