"""Bounded worker pool for intra-query parallelism.

Spill partitions are independent units of work by construction: every
Grace-hash partition pair, spilled GROUP BY/DISTINCT partition, and
external-sort run can be processed without looking at its siblings.  This
module provides the one abstraction the executor uses to fan that work out —
a bounded pool of daemon threads with *ordered* result delivery, so the
serial path's emission order (partition 0, 1, ... N-1; run order for sort
ties) is preserved exactly and the differential matrix can compare
``parallel_workers`` ∈ {0, 1, 4} row for row.

Threads (not processes) are deliberate: partition work is dominated by
spill-file read-back and temp-file writes, the data flowing through contains
interned annotation objects whose *identity* must survive (a process
boundary would copy them), and the no-dependency constraint rules out
anything heavier.  On a multi-core host the file I/O overlaps; on a
single-core host the pool degrades to roughly serial cost — the knob is
validated but can't manufacture cycles.

Ordering contract: :meth:`WorkerPool.map_ordered` yields results in input
order regardless of completion order, and :meth:`WorkerPool.submit` returns
futures the caller collects in submission order.  Tasks must not share
mutable state unless that state locks internally (see
:class:`~repro.storage.spill.SpillStats` / ``SpillManager``, which do).
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Upper bound accepted for ``EngineConfig.parallel_workers``.  Past this,
#: thread-switch overhead dwarfs any I/O overlap a spill partition offers.
MAX_PARALLEL_WORKERS = 64


class WorkerPool:
    """A bounded thread pool with ordered fan-out helpers.

    One pool serves every spilling operator that shares a
    :class:`MaybeParallel` facade (the engine keeps one across queries) and
    is shut down when the facade is shut down or garbage collected; idle
    workers just block on the task queue until then.
    """

    def __init__(self, workers: int, name: str = "repro-spill"):
        if workers < 1:
            raise ValueError(f"worker pool needs at least 1 worker, got {workers}")
        self.workers = workers
        self._counter = itertools.count()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=name)

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., R], *args: Any, **kwargs: Any) -> "Future[R]":
        """Schedule one task; returns its future."""
        return self._executor.submit(fn, *args, **kwargs)

    def map_ordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        """Run ``fn`` over ``items`` on the pool, yielding results in input
        order (the serial emission order), independent of completion order.

        All tasks are submitted up front — partitions are few (bounded by
        ``MAX_SPILL_PARTITIONS``) and their inputs already live on disk, so
        eager submission costs no memory while letting every worker start
        immediately.  A task failure propagates on its turn; the remaining
        futures are cancelled or drained so no worker outlives the error.
        """
        futures = [self._executor.submit(fn, item) for item in items]
        try:
            for future in futures:
                yield future.result()
        finally:
            for future in futures:
                future.cancel()

    def run_tasks(self, tasks: Iterable[Callable[[], R]]) -> List[R]:
        """Run independent thunks; returns their results in task order."""
        futures = [self._executor.submit(task) for task in tasks]
        try:
            return [future.result() for future in futures]
        finally:
            for future in futures:
                future.cancel()

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def worker_label() -> str:
    """Short identifier of the executing worker for spill-event attribution.

    Returns ``"main"`` on the query thread and ``"w<n>"`` on pool threads,
    so ``engine.last_spill`` partition timings read naturally.
    """
    name = threading.current_thread().name
    if "repro-spill" not in name:
        return "main"
    return "w" + name.rsplit("_", 1)[-1]


def validated_worker_count(workers: Any) -> int:
    """Eager validation for ``EngineConfig.parallel_workers`` (0 = serial)."""
    if not isinstance(workers, int) or isinstance(workers, bool) \
            or workers < 0 or workers > MAX_PARALLEL_WORKERS:
        raise ValueError(
            f"parallel_workers must be an integer in [0, {MAX_PARALLEL_WORKERS}], "
            f"got {workers!r}")
    return workers


class MaybeParallel:
    """Serial/parallel dispatch facade the spilling operators call.

    With ``workers == 0`` (or 1-item inputs) everything runs inline on the
    calling thread — no pool is ever created, the serial path stays
    allocation-identical to before this layer existed.  Otherwise a shared
    :class:`WorkerPool` is created lazily on first use.
    """

    __slots__ = ("workers", "_pool", "_lock")

    def __init__(self, workers: int = 0):
        self.workers = validated_worker_count(workers)
        self._pool: Optional[WorkerPool] = None
        self._lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        return self.workers > 0

    def pool(self) -> WorkerPool:
        with self._lock:
            if self._pool is None:
                self._pool = WorkerPool(self.workers)
            return self._pool

    def map_ordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        if not self.parallel or len(items) <= 1:
            return map(fn, items)
        return self.pool().map_ordered(fn, items)

    def submit(self, fn: Callable[[], R]) -> "Future[R]":
        """Schedule a thunk; inline (already-resolved future) when serial."""
        if not self.parallel:
            future: "Future[R]" = Future()
            try:
                future.set_result(fn())
            except BaseException as exc:  # noqa: BLE001 - mirrored to future
                future.set_exception(exc)
            return future
        return self.pool().submit(fn)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.shutdown(wait=False)
        except Exception:
            pass
