"""Execution layer: annotated rows, physical operators, and the engine."""

from repro.executor.engine import Engine, EngineConfig, ExecutionSummary
from repro.executor.row import ColumnInfo, OutputSchema, ResultSet, Row

__all__ = [
    "Engine",
    "EngineConfig",
    "ExecutionSummary",
    "ColumnInfo",
    "OutputSchema",
    "ResultSet",
    "Row",
]
